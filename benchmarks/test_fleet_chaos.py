"""Fleet throughput and chaos soak: shard kill + lossy wire, real processes.

Serves a four-title catalog two ways — one in-process chunked
:class:`AnnotationStreamServer` (the single-process baseline) and a
two-shard :class:`~repro.fleet.FleetCoordinator` (worker processes
behind the consistent-hash router) — and times the same concurrent
session fleet against both.  The titles are chosen to split 2/2 across
the hash ring so both shards carry load.

The chaos soak then pushes the session fleet through a
:class:`~repro.net.fault.LossyTransport` hop in front of the router
(deterministic connection kills every N records) while one shard is
SIGKILLed mid-soak.  Clients carry portable resume tokens, so every
interrupted session re-enters through the router and finishes on the
replica shard; the soak asserts the recovered-session rate and checks
every delivered stream byte-identical against the single-process
reference.

Artifacts: ``results/BENCH_fleet.json`` (gated by ``trend_check.py``:
recovery floor always, the fleet >= 1.5x single-process speedup only on
multi-core hosts — the pinned ``cpus`` field records which) and
``results/fleet_flight_tail.jsonl`` (the router's flight-recorder tail,
uploaded from CI for post-mortems).
"""

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.api import fetch_stream
from repro.core import ProfileCache, SchemeParameters
from repro.fleet import FleetCoordinator, HashRing
from repro.net import (
    AnnotationStreamServer,
    FaultSpec,
    FetchOptions,
    LossyTransport,
    ServeConfig,
)
from repro.streaming import MediaServer, PacketType
from repro.telemetry import flight_events, registry
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: 2/2 split across a two-shard ring (see HashRing placement).
CLIPS = ("themovie", "shrek2", "catwoman", "ice_age")
SHARDS = 2
SESSIONS_PER_CLIP = 2
SESSIONS = len(CLIPS) * SESSIONS_PER_CLIP
QUALITY = 0.05
CLIP_RESOLUTION = (48, 36)
DURATION_SCALE = 0.25
RECOVERY_FLOOR = 0.99


def _fleet_catalog():
    """Picklable catalog factory: every shard builds this same catalog.

    Module-level by necessity — the coordinator pickles it into each
    :class:`~repro.fleet.WorkerSpec`, and byte-identical failover relies
    on every process call producing the same deterministic catalog.
    """
    server = MediaServer(
        params=SchemeParameters(quality=QUALITY),
        engine="chunked",
        profile_cache=ProfileCache(max_entries=8),
    )
    for name in CLIPS:
        server.add_clip(ArrayClip.from_clip(make_clip(
            name, resolution=CLIP_RESOLUTION, duration_scale=DURATION_SCALE
        )))
    return server


def _options(max_retries=2):
    return FetchOptions(max_retries=max_retries, backoff_base_s=0.02,
                        backoff_max_s=0.25, jitter_s=0.0)


async def _session_fleet(host, port, device, options):
    """SESSIONS concurrent fetches (SESSIONS_PER_CLIP per title)."""
    jobs = [
        fetch_stream(host, port, name, QUALITY, device, options=options)
        for name in CLIPS
        for _ in range(SESSIONS_PER_CLIP)
    ]
    start = time.perf_counter()
    results = await asyncio.gather(*jobs, return_exceptions=True)
    return results, time.perf_counter() - start


async def _warm(host, port, device):
    """One fetch per title so annotation passes land outside the timing."""
    for name in CLIPS:
        await fetch_stream(host, port, name, QUALITY, device,
                           options=_options())


def _assert_identical(packets, reference):
    assert len(packets) == len(reference)
    for mine, ref in zip(packets, reference):
        assert mine.ptype is ref.ptype and mine.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert mine.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert np.array_equal(mine.frame.pixels, ref.frame.pixels)


def _identical(packets, reference):
    if len(packets) != len(reference):
        return False
    for mine, ref in zip(packets, reference):
        if mine.ptype is not ref.ptype or mine.seq != ref.seq:
            return False
        if ref.ptype is PacketType.ANNOTATION and mine.payload != ref.payload:
            return False
        if ref.ptype is PacketType.FRAME and not np.array_equal(
            mine.frame.pixels, ref.frame.pixels
        ):
            return False
    return True


def test_fleet_chaos(report, device):
    cpus = os.cpu_count() or 1

    # ---- single-process chunked baseline --------------------------------
    media = _fleet_catalog()

    async def run_single():
        async with AnnotationStreamServer(
            media, config=ServeConfig(queue_depth=32)
        ) as server:
            await _warm(*server.address, device)
            return await _session_fleet(*server.address, device, _options())

    single_results, single_elapsed = asyncio.run(run_single())
    assert not any(isinstance(r, Exception) for r in single_results)
    references = {}  # clip -> reference packet list (first session wins)
    for result in single_results:
        references.setdefault(result.session.clip_name, result.packets)
    single_frames = sum(r.frame_count for r in single_results)

    # ---- fleet (N shards), then the chaos soak on the same fleet --------
    ring = HashRing(tuple(f"shard-{i}" for i in range(SHARDS)))
    placement = {name: ring.lookup(name) for name in CLIPS}
    assert len(set(placement.values())) == SHARDS  # both shards loaded
    victim = placement[CLIPS[0]]

    async def run_fleet():
        async with FleetCoordinator(
            _fleet_catalog, shards=SHARDS, health_interval_s=0.5
        ) as fleet:
            await _warm(*fleet.address, device)
            timed = await _session_fleet(*fleet.address, device, _options())

            # Chaos soak: a lossy hop kills connections every 64 records,
            # and the CLIPS[0] owner dies mid-soak.  Portable tokens let
            # every interrupted session resume through the router.
            spec = FaultSpec(kill_after_records=64, max_faults=SESSIONS,
                             seed=7)
            async with LossyTransport(*fleet.address, spec) as lossy:
                soak_task = asyncio.ensure_future(_session_fleet(
                    *lossy.address, device, _options(max_retries=8)
                ))
                await asyncio.sleep(0.05)
                fleet.kill_shard(victim)
                soak_results, soak_elapsed = await soak_task
            await fleet.router.probe_shards()
            snapshot = fleet.router.fleet_snapshot()
            return timed, (soak_results, soak_elapsed), snapshot

    (fleet_results, fleet_elapsed), soak, snapshot = asyncio.run(run_fleet())
    soak_results, soak_elapsed = soak
    assert not any(isinstance(r, Exception) for r in fleet_results)
    for result in fleet_results:
        _assert_identical(result.packets, references[result.session.clip_name])
    fleet_frames = sum(r.frame_count for r in fleet_results)
    assert fleet_frames == single_frames

    # ---- recovery accounting --------------------------------------------
    recovered = sum(
        1 for r in soak_results
        if not isinstance(r, Exception)
        and _identical(r.packets, references[r.session.clip_name])
    )
    recovery_rate = recovered / SESSIONS
    resumes = sum(r.resumes for r in soak_results
                  if not isinstance(r, Exception))
    faults_metric = registry().get("repro_net_faults_injected_total")
    faults = int(faults_metric.value) if faults_metric is not None else 0
    dead_shards = [s["shard"] for s in snapshot["shards"] if not s["alive"]]

    single_rate = SESSIONS / single_elapsed
    fleet_rate = SESSIONS / fleet_elapsed
    speedup = fleet_rate / single_rate

    payload = {
        "benchmark": "fleet_chaos",
        "clips": list(CLIPS),
        "placement": placement,
        "sessions": SESSIONS,
        "quality": QUALITY,
        "shards": SHARDS,
        "cpus": cpus,
        "single": {
            "seconds": single_elapsed,
            "sessions_per_sec": single_rate,
            "frames_per_sec": single_frames / single_elapsed,
        },
        "fleet": {
            "seconds": fleet_elapsed,
            "sessions_per_sec": fleet_rate,
            "frames_per_sec": fleet_frames / fleet_elapsed,
            "speedup_vs_single_process": speedup,
        },
        "chaos": {
            "sessions": SESSIONS,
            "recovered_sessions": recovered,
            "recovered_session_rate": recovery_rate,
            "resumes": resumes,
            "faults_injected": faults,
            "shard_killed": victim,
            "seconds": soak_elapsed,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_fleet.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    # Flight-recorder tail: the router-side event log (shard up/down,
    # failover, spillover, kills) as a JSON-lines CI artifact.
    tail = flight_events(limit=200)
    tail_path = os.path.join(RESULTS_DIR, "fleet_flight_tail.jsonl")
    with open(tail_path, "w") as fh:
        for event in tail:
            fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")

    lines = [
        f"fleet chaos on {len(CLIPS)} titles x {SESSIONS_PER_CLIP} sessions "
        f"({SHARDS} shards, {cpus} cpu(s), quality {QUALITY})",
        f"{'topology':<10}{'seconds':>10}{'sessions/s':>12}{'frames/s':>11}",
        f"{'single':<10}{single_elapsed:>10.3f}{single_rate:>12.2f}"
        f"{single_frames / single_elapsed:>11.0f}",
        f"{'fleet':<10}{fleet_elapsed:>10.3f}{fleet_rate:>12.2f}"
        f"{fleet_frames / fleet_elapsed:>11.0f}  "
        f"({speedup:.2f}x single-process)",
        f"chaos soak: killed {victim}, {faults} wire faults, "
        f"{resumes} resumes, {recovered}/{SESSIONS} sessions recovered "
        f"byte-identically ({recovery_rate:.1%}) in {soak_elapsed:.3f}s",
        f"flight tail ({len(tail)} events) -> {tail_path}",
        f"json -> {json_path}",
    ]
    report("fleet_chaos", lines)

    # The dead shard must be visible to the router by soak end.
    assert victim in dead_shards, snapshot
    # Every stream that survived the soak replayed byte-identically, and
    # at least one of them actually exercised the resume path.
    assert resumes >= 1, payload["chaos"]
    assert recovery_rate >= RECOVERY_FLOOR, payload["chaos"]
    # The comparative speedup claim only holds with real parallelism;
    # on a single-core host the fleet pays relay overhead for nothing,
    # so the gate (here and in trend_check.py) is multi-core only.
    if cpus >= 2:
        assert speedup >= 1.5, payload["fleet"]
