"""Ablation: the annotated scheme vs the related-work baselines.

One scorecard per representative clip (a dark title and a bright title):
backlight savings, switch count, worst-frame clipped fraction.  The
paper's qualitative claims to reproduce:

* history prediction (the no-annotation alternative of Section 3)
  violates the quality budget on scene cuts;
* per-frame scaling (DLS-style adaptation) saves the most but flickers;
* the annotated scheme is within a few points of per-frame savings with
  an order of magnitude fewer switches and zero budget violations.
"""

import pytest

from repro.baselines import (
    AnnotatedScaling,
    DLSScaling,
    DTMScaling,
    FullBacklight,
    HistoryPrediction,
    PerFrameScaling,
    QABSScaling,
    StaticDim,
    evaluate_plan,
)
from repro.core import SchemeParameters
from repro.video import make_clip

QUALITY = 0.10


@pytest.fixture(scope="module")
def scorecards(device):
    strategies = [
        FullBacklight(),
        StaticDim(128),
        HistoryPrediction(QUALITY, window=8),
        PerFrameScaling(QUALITY),
        QABSScaling(psnr_floor_db=35.0),
        DLSScaling(QUALITY),
        DTMScaling(brightness_tolerance=QUALITY),
        AnnotatedScaling(SchemeParameters(quality=QUALITY)),
    ]
    cards = {}
    for title in ("spiderman2", "ice_age"):
        clip = make_clip(title, resolution=(96, 72), duration_scale=0.25)
        cards[title] = [
            evaluate_plan(s.plan(clip, device), clip, device, sample_every=3)
            for s in strategies
        ]
    return cards


@pytest.fixture(scope="module")
def history_mispredictions(device):
    predictor = HistoryPrediction(QUALITY, window=8)
    return {
        title: predictor.misprediction_stats(
            make_clip(title, resolution=(96, 72), duration_scale=0.25), device
        )
        for title in ("spiderman2", "ice_age")
    }


def test_ablation_baselines(benchmark, report, scorecards, history_mispredictions, device):
    lines = []
    for title, evals in scorecards.items():
        lines.append(f"--- {title} (quality budget {QUALITY:.0%}) ---")
        lines.append(f"{'strategy':<18}{'savings':>9}{'switches':>10}"
                     f"{'mean_clip':>11}{'max_clip':>10}")
        for ev in evals:
            lines.append(
                f"{ev.strategy:<18}{ev.backlight_savings:>9.1%}"
                f"{ev.switch_count:>10}{ev.mean_clipped_fraction:>11.2%}"
                f"{ev.max_clipped_fraction:>10.2%}"
            )
        lines.append("")
    lines.append("history-prediction quality violations (shortfall vs budgeted luminance):")
    for title, stats in history_mispredictions.items():
        lines.append(
            f"  {title}: {stats['violation_fraction']:.1%} of frames, "
            f"worst luminance shortfall {stats['worst_shortfall']:.2f}"
        )
    report("ablation_baselines", lines)

    # history prediction mispredicts on scene cuts ('serious consequences
    # on quality degradation if prediction proves wrong')
    for title, stats in history_mispredictions.items():
        assert stats["violation_fraction"] > 0.0, title

    for title, evals in scorecards.items():
        by_name = {ev.strategy: ev for ev in evals}
        annotated = by_name["annotated-q10"]
        per_frame = by_name["per-frame-q10"]
        history = by_name["history-w8"]

        # annotated never violates its budget
        assert annotated.max_clipped_fraction <= QUALITY + 0.01, title

        # per-frame is the savings upper bound but flickers
        assert per_frame.backlight_savings >= annotated.backlight_savings - 1e-9
        assert annotated.switch_count < per_frame.switch_count or (
            per_frame.switch_count == 0
        )

    clip = make_clip("spiderman2", resolution=(96, 72), duration_scale=0.25)
    strategy = AnnotatedScaling(SchemeParameters(quality=QUALITY))
    benchmark.pedantic(strategy.plan, args=(clip, device), rounds=3, iterations=1)
