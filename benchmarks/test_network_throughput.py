"""Wire-transport throughput: concurrent sessions over real sockets.

Hosts one library title on an :class:`AnnotationStreamServer` and pulls
``SESSIONS`` (>= 8) concurrent streams through loopback TCP with
:class:`AsyncMobileClient`, once per execution engine.  The annotation
pass is warmed first (one in-process session) so the timed region is the
transport itself: codec encode, bounded send queues, socket writes,
decode + CRC verification on the client side.

Acceptance: every session is served completely (bit-counted frames) and
every engine sustains at least real-time delivery for the whole fleet.
A second timed run pushes the same fleet through a **capped** server
(admission control with a wide accept queue) to price the resilience
layer's slot bookkeeping; it must clear the same real-time floor.

Each fetch also reports its latency SLO profile (time-to-first-frame,
inter-frame gaps, deadline misses against the clip's delivery schedule),
aggregated per engine into the JSON payload, and one session's full
distributed trace (client + server spans, one linked tree) is exported
to ``results/trace_sample.jsonl`` as a CI artifact.  Results go to
``results/BENCH_network.json`` and ``results/network_throughput.txt``.
"""

import asyncio
import json
import os
import time

import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import AnnotationStreamServer, AsyncMobileClient
from repro.streaming import ClientCapabilities, MediaServer, SessionRequest
from repro.telemetry import registry, span_events, spans_to_jsonl
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CLIP_NAME = "themovie"
SESSIONS = 8
QUALITY = 0.05
ENGINES = ("perframe", "chunked")


@pytest.fixture(scope="module")
def workload():
    clip = ArrayClip.from_clip(make_clip(CLIP_NAME, resolution=(96, 72)))
    assert clip.frame_count >= 300
    return clip


def _make_server(clip, engine):
    server = MediaServer(
        params=SchemeParameters(quality=QUALITY),
        engine=engine,
        profile_cache=ProfileCache(max_entries=4),
    )
    server.add_clip(clip)
    # Warm the annotation caches: the measured region is wire serving,
    # not the (engine-specific, separately benchmarked) profiling pass.
    request = SessionRequest(clip.name, QUALITY, ClientCapabilities("ipaq5555"))
    for _ in server.stream(server.open_session(request)):
        pass
    return server


async def _fetch_fleet(media, device, sessions, **server_kwargs):
    server_kwargs.setdefault("queue_depth", 32)
    async with AnnotationStreamServer(media, **server_kwargs) as server:
        clients = [AsyncMobileClient(device) for _ in range(sessions)]
        start = time.perf_counter()
        results = await asyncio.gather(*[
            client.fetch(*server.address, CLIP_NAME, QUALITY)
            for client in clients
        ])
        elapsed = time.perf_counter() - start
    return results, elapsed


def _latency_summary(results):
    """Aggregate the fleet's per-session latency SLO stats."""
    stats = [r.latency for r in results if r.latency is not None]
    if not stats:
        return None
    frames = sum(s.frame_count for s in stats)
    return {
        "sessions": len(stats),
        "frames": frames,
        "ttff_mean_s": sum(s.ttff_s for s in stats) / len(stats),
        "ttff_max_s": max(s.ttff_s for s in stats),
        "frame_gap_mean_s": sum(s.mean_gap_s for s in stats) / len(stats),
        "frame_gap_max_s": max(s.max_gap_s for s in stats),
        "deadline_misses": sum(s.deadline_misses for s in stats),
        "deadline_miss_fraction": (
            sum(s.deadline_misses for s in stats) / frames if frames else 0.0
        ),
    }


def test_network_throughput(report, workload, device):
    clip = workload
    n = clip.frame_count

    seconds = {}
    frames_served = {}
    wire_bytes = {}
    latency = {}
    sample_trace_id = None
    for kind in ENGINES:
        media = _make_server(clip, kind)
        bytes_before = registry().get("repro_net_bytes_sent_total")
        bytes_before = bytes_before.value if bytes_before is not None else 0
        results, elapsed = asyncio.run(_fetch_fleet(media, device, SESSIONS))
        seconds[kind] = elapsed
        frames_served[kind] = sum(r.frame_count for r in results)
        wire_bytes[kind] = registry().get(
            "repro_net_bytes_sent_total"
        ).value - bytes_before
        latency[kind] = _latency_summary(results)
        if kind == "chunked":
            sample_trace_id = results[0].trace_id
        # Completeness gate: every session delivered the whole clip on
        # the first attempt (loopback, no injected faults).
        assert frames_served[kind] == SESSIONS * n, kind
        assert all(r.attempts == 1 for r in results), kind

    sessions_per_sec = {k: SESSIONS / s for k, s in seconds.items()}
    frames_per_sec = {k: frames_served[k] / s for k, s in seconds.items()}
    mbytes_per_sec = {k: wire_bytes[k] / seconds[k] / 1e6 for k in ENGINES}

    # Admission-control path: the same fleet through a capped server.
    # With an accept queue wide enough for everyone, over-cap sessions
    # park for a slot instead of being shed, so completeness still holds
    # on first attempts — this measures what the slot bookkeeping and
    # bounded concurrency cost relative to the uncapped run above.
    media = _make_server(clip, "chunked")
    capped_results, capped_elapsed = asyncio.run(_fetch_fleet(
        media, device, SESSIONS,
        max_sessions=max(2, SESSIONS // 4),
        accept_queue=SESSIONS,
        accept_timeout_s=120.0,
    ))
    assert sum(r.frame_count for r in capped_results) == SESSIONS * n
    assert all(r.attempts == 1 for r in capped_results)
    admission = {
        "max_sessions": max(2, SESSIONS // 4),
        "accept_queue": SESSIONS,
        "seconds": capped_elapsed,
        "sessions_per_sec": SESSIONS / capped_elapsed,
        "frames_per_sec": SESSIONS * n / capped_elapsed,
        "slowdown_vs_uncapped": capped_elapsed / seconds["chunked"],
    }

    payload = {
        "benchmark": "network_throughput",
        "clip": clip.name,
        "frames": n,
        "resolution": list(clip.resolution),
        "sessions": SESSIONS,
        "quality": QUALITY,
        "engines": {
            kind: {
                "seconds": seconds[kind],
                "sessions_per_sec": sessions_per_sec[kind],
                "frames_per_sec": frames_per_sec[kind],
                "wire_bytes": int(wire_bytes[kind]),
                "wire_mbytes_per_sec": mbytes_per_sec[kind],
                "latency": latency[kind],
            }
            for kind in ENGINES
        },
        "admission": admission,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_network.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    # Export one session's full distributed trace (client + server spans
    # share the in-process collector here) as a JSON-lines CI artifact.
    trace_path = os.path.join(RESULTS_DIR, "trace_sample.jsonl")
    assert sample_trace_id is not None
    trace_spans = span_events(trace_id=sample_trace_id)
    assert len(trace_spans) >= 5, trace_spans
    roots = [e for e in trace_spans
             if e["parent_id"] not in {s["span_id"] for s in trace_spans}]
    assert len(roots) == 1, roots  # one fetch -> one linked tree
    with open(trace_path, "w") as fh:
        fh.write(spans_to_jsonl(trace_spans))

    lines = [
        f"wire throughput on {clip.name!r} "
        f"({SESSIONS} concurrent TCP sessions x {n} frames @ "
        f"{clip.resolution[0]}x{clip.resolution[1]})",
        f"{'engine':<12}{'seconds':>10}{'sessions/s':>12}{'frames/s':>11}{'MB/s':>9}",
    ]
    for kind in ENGINES:
        lines.append(
            f"{kind:<12}{seconds[kind]:>10.3f}{sessions_per_sec[kind]:>12.2f}"
            f"{frames_per_sec[kind]:>11.0f}{mbytes_per_sec[kind]:>9.1f}"
        )
    lines.append(
        f"{'admission':<12}{capped_elapsed:>10.3f}"
        f"{admission['sessions_per_sec']:>12.2f}"
        f"{admission['frames_per_sec']:>11.0f}{'':>9} "
        f"(cap {admission['max_sessions']}, "
        f"{admission['slowdown_vs_uncapped']:.2f}x uncapped chunked)"
    )
    for kind in ENGINES:
        slo = latency[kind]
        lines.append(
            f"{kind:<12} SLO: ttff {slo['ttff_mean_s'] * 1e3:.1f} ms mean "
            f"/ {slo['ttff_max_s'] * 1e3:.1f} ms max, "
            f"gap {slo['frame_gap_mean_s'] * 1e3:.2f} ms mean, "
            f"{slo['deadline_misses']} deadline misses "
            f"({slo['deadline_miss_fraction']:.2%} of {slo['frames']} frames)"
        )
    lines.append(f"trace sample ({len(trace_spans)} spans) -> {trace_path}")
    lines.append(f"json -> {json_path}")
    report("network_throughput", lines)

    # SLO gate: on loopback the server streams far faster than playback,
    # so virtually no frame may arrive after its schedule slot.  A small
    # allowance absorbs scheduler jitter under 8-way concurrency.
    for kind in ENGINES:
        assert latency[kind] is not None, kind
        assert latency[kind]["sessions"] == SESSIONS, kind
        assert latency[kind]["deadline_miss_fraction"] <= 0.05, latency[kind]

    # The capped run serves at most max_sessions streams at once, so it
    # is necessarily slower end to end — but it must still beat the
    # fleet-wide real-time floor, or admission control would be trading
    # overload protection for missed deadlines.
    assert admission["frames_per_sec"] >= SESSIONS * clip.fps, admission

    # Acceptance: the whole fleet streams faster than the clips play.
    # 8 sessions x 24 fps = 192 aggregate frames/sec is the real-time
    # floor; loopback should clear it by a wide margin on any engine.
    for kind in ENGINES:
        assert frames_per_sec[kind] >= SESSIONS * clip.fps, (
            kind, frames_per_sec[kind]
        )

    # Comparative acceptance: the chunked engine must now *win* over the
    # wire, not just in-process — the fused LUT compensate, coalesced
    # producer handoffs and vectored writes exist to close exactly this
    # gap.  Rates get a small noise band; TTFF must be within 2x of the
    # per-frame emission (the lead chunk keeps the first compensate
    # small, so in practice chunked starts *faster*).
    assert sessions_per_sec["chunked"] >= 0.95 * sessions_per_sec["perframe"], (
        sessions_per_sec
    )
    assert frames_per_sec["chunked"] >= 0.95 * frames_per_sec["perframe"], (
        frames_per_sec
    )
    assert latency["chunked"]["ttff_mean_s"] <= 2.0 * latency["perframe"]["ttff_mean_s"], (
        latency
    )


def test_wire_profile_artifact(workload, device):
    """Profile one chunked fetch end to end and save the table as a CI
    artifact (``results/wire_profile.txt``) — the send/receive path's
    sorted-by-cumtime breakdown, refreshed with every benchmark run."""
    import cProfile
    import pstats

    media = _make_server(workload, "chunked")
    profiler = cProfile.Profile()
    profiler.enable()
    results, _ = asyncio.run(_fetch_fleet(media, device, 1))
    profiler.disable()
    assert results[0].frame_count == workload.frame_count

    os.makedirs(RESULTS_DIR, exist_ok=True)
    profile_path = os.path.join(RESULTS_DIR, "wire_profile.txt")
    with open(profile_path, "w") as fh:
        fh.write("wire-path profile: one chunked fetch over loopback TCP\n")
        fh.write("(cProfile, event-loop thread, sorted by cumulative time)\n")
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("cumulative").print_stats(40)
