"""Ablation: max-luminance scene detection vs histogram-change detection.

The paper segments by the one statistic the backlight consumes (frame max
luminance).  A general shot-boundary detector (histogram change) finds
*content* cuts instead.  This bench shows why the simpler detector is the
right tool here: the histogram detector produces more scenes and more
backlight switches without saving more power.
"""

import numpy as np

from repro.core import (
    AnnotationPipeline,
    AnnotationTrack,
    HistogramSceneDetector,
    SceneAnnotation,
    SceneDetector,
    SchemeParameters,
    StreamAnalyzer,
    policy_for_quality,
)
from repro.power import simulated_backlight_savings
from repro.video import make_clip

QUALITY = 0.10


def _evaluate(scenes, stats, device):
    clipping = policy_for_quality(QUALITY)
    annotations = [
        SceneAnnotation(s.start, s.end, clipping.effective_max(s, stats))
        for s in scenes
    ]
    track = AnnotationTrack("c", len(stats), 30.0, QUALITY, annotations).bind(device)
    levels = track.per_frame_levels()
    return (
        simulated_backlight_savings(levels, device),
        int(np.count_nonzero(np.diff(levels))),
        len(scenes),
    )


def test_ablation_scene_detector(benchmark, report, device):
    params = SchemeParameters(quality=QUALITY, min_scene_interval_frames=8)
    lines = [f"{'clip':<16}{'detector':<12}{'savings':>9}{'switches':>10}{'scenes':>8}"]
    rows = {}
    for title in ("themovie", "spiderman2"):
        clip = make_clip(title, resolution=(96, 72), duration_scale=0.25)
        stats = StreamAnalyzer().analyze(clip)
        for name, detector in (
            ("max-lum", SceneDetector(params)),
            ("histogram", HistogramSceneDetector(params, distance_threshold=0.35)),
        ):
            scenes = detector.detect(stats)
            SceneDetector.validate_partition(scenes, len(stats))
            savings, switches, n_scenes = _evaluate(scenes, stats, device)
            rows[(title, name)] = (savings, switches, n_scenes)
            lines.append(f"{title:<16}{name:<12}{savings:>9.1%}{switches:>10}{n_scenes:>8}")
    report("ablation_scene_detector", lines)

    for title in ("themovie", "spiderman2"):
        maxlum = rows[(title, "max-lum")]
        hist = rows[(title, "histogram")]
        # the max-luminance detector matches the histogram detector's
        # savings (within a couple of points) with no more switches
        assert maxlum[0] >= hist[0] - 0.04, title
        assert maxlum[1] <= hist[1] + 1, title

    clip = make_clip("themovie", resolution=(96, 72), duration_scale=0.25)
    stats = StreamAnalyzer().analyze(clip)
    detector = HistogramSceneDetector(params, distance_threshold=0.35)
    benchmark.pedantic(detector.detect, args=(stats,), rounds=5, iterations=1)
