"""Extension: battery-aware quality adaptation (middleware layer).

Reference [13] coordinates adaptation through a middleware layer; this
bench sweeps the battery capacity and shows the adaptation staircase: big
packs play everything at full quality, shrinking packs degrade title by
title, and the chosen qualities are monotone in the battery size.
"""

from repro.core import SchemeParameters
from repro.power import Battery
from repro.streaming import BatteryAwareMiddleware, MediaServer
from repro.video import make_clip

PLAYLIST = {"returnoftheking": 3.5 * 3600, "catwoman": 1.7 * 3600,
            "ice_age": 1.4 * 3600}


def test_ablation_middleware(benchmark, report, device):
    server = MediaServer(params=SchemeParameters())
    for name in PLAYLIST:
        server.add_clip(make_clip(name, resolution=(96, 72), duration_scale=0.25))

    capacities = (30.0, 22.0, 18.0, 14.0)
    lines = [f"{'battery_Wh':>10}" + "".join(f"{name:>18}" for name in PLAYLIST)
             + f"{'completed':>11}"]
    plans = {}
    for wh in capacities:
        mw = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=wh))
        plan = mw.plan_session(list(PLAYLIST), durations_s=PLAYLIST)
        plans[wh] = plan
        lines.append(
            f"{wh:>10.1f}"
            + "".join(f"{e.quality:>17.0%} " for e in plan.events)
            + f"{str(plan.completed):>11}"
        )
    report("ablation_middleware", lines)

    # Monotone: a smaller battery never chooses a lower quality number.
    for name_idx in range(len(plans[capacities[0]].events)):
        qualities = [
            plans[wh].events[name_idx].quality
            for wh in capacities
            if len(plans[wh].events) > name_idx
        ]
        assert all(b >= a - 1e-9 for a, b in zip(qualities, qualities[1:]))

    # The generous pack runs lossless and completes.
    assert plans[30.0].completed
    assert all(q == 0.0 for q in plans[30.0].qualities())
    # The tight pack degrades at least one title.
    assert any(q > 0.0 for q in plans[18.0].qualities())

    mw = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=18.0))
    benchmark.pedantic(
        mw.plan_session, args=(list(PLAYLIST),), kwargs={"durations_s": PLAYLIST},
        rounds=3, iterations=1,
    )
