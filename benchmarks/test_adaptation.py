"""Mid-stream adaptation soak: battery-driven requality vs a static session.

The closing claim of the adaptation control plane: a client that steps
down the quality ladder as its modeled battery drains (and re-binds when
its light sensor reports a brighter room) spends measurably less modeled
backlight energy than the same session left static — without ever
tearing down the connection.

The soak runs several battery-driven sessions against a paced wire
server, plays each stream back (applying the mid-stream re-bind
overlay), and prices the applied backlight schedule with the device's
affine backlight power model.  Results land in
``results/BENCH_adaptation.json`` (gated by ``trend_check.py``: the
savings must stay within tolerance of the committed baseline AND above
the absolute 10% floor) and the requality flight-recorder tail in
``results/adaptation_flight_tail.jsonl`` (a CI artifact).
"""

import asyncio
import json
import os
import random
import time

import numpy as np

from repro.net import AnnotationStreamServer, AsyncMobileClient, BatteryClient, ServeConfig
from repro.power import Battery
from repro.streaming import MediaServer, MobileClient
from repro.core import SchemeParameters
from repro.telemetry import flight_events, registry
from repro.video import LazyClip, SceneSpec, ScriptedClipFactory

from conftest import RESULTS_DIR

CLIP = "benchclip"
FPS = 24.0
SESSIONS = 5
SAVINGS_FLOOR = 0.10

#: Live switches only land while production is still in flight, so the
#: producer is paced record-by-record against the client's reads.
PACED = ServeConfig(
    portable_tokens=True, queue_depth=1, batch_records=1, batch_bytes=1
)


def _bench_clip():
    """16 scenes x 15 frames: dark/action/bright mix at 24 fps."""
    scenes = []
    for i in range(16):
        kind = i % 4
        if kind in (0, 2):
            scenes.append(SceneSpec("dark", 15, {
                "background": 0.12 + 0.01 * i, "highlight": 0.7,
                "glow_level": 0.25,
            }))
        elif kind == 1:
            scenes.append(SceneSpec("action", 15, {}))
        else:
            scenes.append(SceneSpec("bright", 15, {
                "background": 0.8, "variation": 0.1,
            }))
    factory = ScriptedClipFactory(scenes, resolution=(64, 48), seed=7)
    return LazyClip(factory, frame_count=factory.frame_count, fps=FPS,
                    name=CLIP, resolution=(64, 48))


def _media():
    server = MediaServer(params=SchemeParameters(min_scene_interval_frames=8))
    server.add_clip(_bench_clip())
    return server


def _battery_client(device):
    """Drains a 4 mWh pack at 20 W: every SOC threshold is crossed
    within the first modeled second, and the simulated light sensor
    reports office light half a second in."""
    return BatteryClient(
        device,
        battery_trace="0:20",
        battery=Battery(capacity_wh=0.004, rated_power_w=1.5),
        ambient_trace="0:dark-room,0.5:office",
        max_retries=0,
        jitter_s=0.0,
        rng=random.Random(0),
    )


def _mean_backlight_w(fetched, device):
    """Price the played-back backlight schedule with the affine model."""
    result = MobileClient(device).play_stream(fetched.session, fetched.packets)
    return float(np.mean(device.backlight.power(result.applied_levels)))


async def _soak(device):
    media = _media()
    async with AnnotationStreamServer(media, config=PACED) as server:
        host, port = server.address
        static = await AsyncMobileClient(
            device, max_retries=0, jitter_s=0.0, rng=random.Random(0)
        ).fetch(host, port, CLIP, 0.0)
        adaptive = []
        started = time.perf_counter()
        for _ in range(SESSIONS):
            adaptive.append(
                await _battery_client(device).fetch(host, port, CLIP, 0.0)
            )
        elapsed = time.perf_counter() - started
    return static, adaptive, elapsed


def test_adaptation_savings_vs_static(benchmark, report, device):
    static, adaptive, elapsed = asyncio.run(_soak(device))

    frames = static.frame_count
    static_w = _mean_backlight_w(static, device)
    full_w = float(device.backlight.power(255))

    session_w = []
    switch_frames = []
    applied_total = 0
    for result in adaptive:
        assert result.attempts == 1  # adapted live, never reconnected
        assert result.frame_count == frames
        applied = [r for r in result.requalities if r.applied]
        assert applied, "a soak session never adapted — pacing broke?"
        applied_total += len(applied)
        switch_frames.append(applied[-1].frame)
        session_w.append(_mean_backlight_w(result, device))

    adaptive_w = float(np.mean(session_w))
    savings_vs_static = 1.0 - adaptive_w / static_w
    requality_metric = registry().get("repro_requality_total")
    requality_total = 0 if requality_metric is None else requality_metric.value

    assert savings_vs_static >= SAVINGS_FLOOR, (
        f"battery-driven client saved only {savings_vs_static:.1%} "
        f"modeled backlight energy vs static (floor {SAVINGS_FLOOR:.0%})"
    )

    payload = {
        "benchmark": "adaptation",
        "clip": CLIP,
        "frames": frames,
        "fps": FPS,
        "sessions": SESSIONS,
        "static": {
            "mean_backlight_w": static_w,
            "savings": 1.0 - static_w / full_w,
        },
        "adaptive": {
            "mean_backlight_w": adaptive_w,
            "savings": 1.0 - adaptive_w / full_w,
            "savings_vs_static": savings_vs_static,
            "applied_switches": applied_total,
            "last_switch_frame_mean": float(np.mean(switch_frames)),
        },
        "soak": {
            "seconds": elapsed,
            "sessions_per_sec": SESSIONS / elapsed,
            "requality_requests": requality_total,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_adaptation.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    # Flight-recorder tail: the requality request/apply event log as a
    # JSON-lines CI artifact.
    tail = flight_events(limit=200)
    tail_path = os.path.join(RESULTS_DIR, "adaptation_flight_tail.jsonl")
    with open(tail_path, "w") as fh:
        for event in tail:
            fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")

    lines = [
        f"adaptation soak: {SESSIONS} battery-driven sessions x {frames} "
        f"frames (paced wire, quality 0.0 opening)",
        f"{'session':<10}{'backlight W':>12}{'savings/full':>14}",
        f"{'static':<10}{static_w:>12.4f}{1.0 - static_w / full_w:>14.1%}",
        f"{'adaptive':<10}{adaptive_w:>12.4f}{1.0 - adaptive_w / full_w:>14.1%}",
        f"savings vs static: {savings_vs_static:.1%} "
        f"(floor {SAVINGS_FLOOR:.0%}); {applied_total} applied switches, "
        f"last at frame {np.mean(switch_frames):.0f} of {frames}",
        f"{requality_total:.0f} requality requests in {elapsed:.3f}s "
        f"({SESSIONS / elapsed:.2f} sessions/s)",
        f"flight tail ({len(tail)} events) -> {tail_path}",
        f"json -> {json_path}",
    ]
    report("adaptation", lines)

    def one_session():
        async def run():
            media = _media()
            async with AnnotationStreamServer(media, config=PACED) as server:
                return await _battery_client(device).fetch(
                    *server.address, CLIP, 0.0
                )
        return asyncio.run(run())

    benchmark.pedantic(one_session, rounds=3, iterations=1)
