"""Execution-engine throughput: per-frame vs chunked vs chunked+threads.

Times the full profile -> clip -> compensate hot path on a >= 300-frame
synthetic clip, in frames/sec per engine.  The per-frame leg reproduces
the seed behaviour exactly: profile one Frame at a time, compensate each
frame for playback, then compensate every frame *again* for the quality
metric (the double pass the chunked engine eliminates).  The chunked legs
produce bit-identical pixels and metrics, which the test asserts before
trusting the speedup.

Acceptance: chunked >= 3x the per-frame path.  Results go to
``results/BENCH_engine.json`` (machine-readable) and
``results/engine_throughput.txt`` (human-readable).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import (
    AnnotationPipeline,
    EngineConfig,
    SchemeParameters,
    StreamAnalyzer,
)
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark workload: a full-length library title at benchmark resolution,
#: rehosted on an ArrayClip so chunk extraction is zero-copy (and so the
#: per-frame leg cannot accidentally reuse per-Frame plane caches between
#: timing rounds — ArrayClip materializes a fresh Frame per access).
CLIP_NAME = "themovie"
MIN_FRAMES = 300
ROUNDS = 3


@pytest.fixture(scope="module")
def workload():
    clip = ArrayClip.from_clip(make_clip(CLIP_NAME, resolution=(96, 72)))
    assert clip.frame_count >= MIN_FRAMES
    return clip


def perframe_leg(clip, device, params):
    """Seed-equivalent per-frame hot path (profile, play, re-measure)."""
    pipeline = AnnotationPipeline(params, engine="perframe")
    stream = pipeline.build_stream(clip, device)
    playback = [
        stream.compensated_frame(i).frame for i in range(stream.frame_count)
    ]
    quality = float(
        np.mean(
            [
                stream.compensated_frame(i).clipped_fraction
                for i in range(stream.frame_count)
            ]
        )
    )
    return playback, quality


def chunked_leg(clip, device, params, engine=None):
    """Batched hot path: one compensation pass yields frames and metrics."""
    pipeline = AnnotationPipeline(params, engine=engine)
    stream = pipeline.build_stream(clip, device)
    batches, fractions = [], []
    for chunk in stream.iter_chunks():
        batches.append(chunk.pixels)
        fractions.append(chunk.clipped_fractions)
    quality = float(np.mean(np.concatenate(fractions)))
    return batches, quality


def best_time(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def best_times_interleaved(legs, rounds=ROUNDS):
    """Best-of-N per leg, with rounds interleaved across legs.

    Timing each leg's rounds back-to-back lets slow drift (thermal
    throttling, noisy neighbours) systematically penalize whichever leg
    runs last; round-robin spreads the drift evenly.
    """
    times = {name: [] for name in legs}
    for _ in range(rounds):
        for name, fn in legs.items():
            start = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - start)
    return {name: min(ts) for name, ts in times.items()}


def test_engine_throughput(report, device, workload):
    params = SchemeParameters(quality=0.05)
    clip = workload
    n = clip.frame_count

    # Correctness first: every engine must produce identical output.
    ref_frames, ref_quality = perframe_leg(clip, device, params)
    for engine in (None, EngineConfig(kind="threads", chunk_size=64)):
        batches, quality = chunked_leg(clip, device, params, engine=engine)
        assert quality == ref_quality
        stacked = np.concatenate(batches)
        for i in range(0, n, 37):
            assert np.array_equal(stacked[i], ref_frames[i].pixels)

    legs = {
        "perframe": lambda: perframe_leg(clip, device, params),
        "chunked": lambda: chunked_leg(clip, device, params),
        "chunked_threads": lambda: chunked_leg(
            clip, device, params, engine=EngineConfig(kind="threads")
        ),
    }
    seconds = best_times_interleaved(legs)
    fps = {name: n / s for name, s in seconds.items()}
    speedup = {name: seconds["perframe"] / s for name, s in seconds.items()}

    analyze_only = {
        "perframe": best_time(lambda: StreamAnalyzer("perframe").analyze(clip)),
        "chunked": best_time(lambda: StreamAnalyzer().analyze(clip)),
    }

    # Compensate-only microbenchmark: the fused 256-entry LUT kernel
    # against the float64 reference it replaced, on one autotuned chunk
    # with per-scene gains.  Bit-identity is asserted before the timing
    # is trusted; the speedup is the "additional compensate speedup"
    # the wire path banks on.
    from repro.core import (
        contrast_enhancement_batch,
        contrast_enhancement_batch_reference,
    )

    chunk = next(iter(clip.iter_chunks(128)))
    gains = np.repeat([1.4, 2.1, 1.0, 1.7], 32)[: len(chunk)]
    lut_px, lut_fr = contrast_enhancement_batch(chunk.pixels, gains)
    ref_px, ref_fr = contrast_enhancement_batch_reference(chunk.pixels, gains)
    assert np.array_equal(lut_px, ref_px)
    assert np.array_equal(lut_fr, ref_fr)
    compensate_seconds = best_times_interleaved(
        {
            "lut": lambda: contrast_enhancement_batch(chunk.pixels, gains),
            "float": lambda: contrast_enhancement_batch_reference(
                chunk.pixels, gains
            ),
        },
        rounds=5,
    )
    lut_speedup = compensate_seconds["float"] / compensate_seconds["lut"]

    payload = {
        "benchmark": "engine_throughput",
        "clip": clip.name,
        "frames": n,
        "resolution": list(clip.resolution),
        "rounds": ROUNDS,
        "engines": {
            name: {
                "seconds": seconds[name],
                "frames_per_sec": fps[name],
                "speedup_vs_perframe": speedup[name],
            }
            for name in legs
        },
        "analyze_only": {
            "perframe_seconds": analyze_only["perframe"],
            "chunked_seconds": analyze_only["chunked"],
            "speedup": analyze_only["perframe"] / analyze_only["chunked"],
        },
        "compensate_only": {
            "chunk_frames": len(chunk),
            "float_seconds": compensate_seconds["float"],
            "lut_seconds": compensate_seconds["lut"],
            "lut_speedup_vs_float": lut_speedup,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_engine.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"engine throughput on {clip.name!r} "
        f"({n} frames @ {clip.resolution[0]}x{clip.resolution[1]}, best of {ROUNDS})",
        f"{'engine':<18}{'seconds':>10}{'frames/s':>12}{'speedup':>10}",
    ]
    for name in legs:
        lines.append(
            f"{name:<18}{seconds[name]:>10.3f}{fps[name]:>12.0f}{speedup[name]:>9.2f}x"
        )
    lines.append(
        "analyze only: "
        f"perframe {analyze_only['perframe']:.3f}s, "
        f"chunked {analyze_only['chunked']:.3f}s "
        f"({payload['analyze_only']['speedup']:.2f}x)"
    )
    lines.append(
        "compensate only: "
        f"float {compensate_seconds['float'] * 1e3:.2f} ms, "
        f"LUT {compensate_seconds['lut'] * 1e3:.2f} ms "
        f"({lut_speedup:.2f}x) on {len(chunk)} frames"
    )
    lines.append(f"json -> {json_path}")
    report("engine_throughput", lines)

    # Acceptance: batched engine at least 3x the per-frame hot path.
    assert speedup["chunked"] >= 3.0, speedup
    # The fused LUT compensate must beat the float64 kernel it replaced
    # by a wide margin — it's the wire path's compute headroom.
    assert lut_speedup >= 1.5, compensate_seconds
    # The persistent shared pool means threads never pays executor setup
    # per pass; with one effective worker it runs the chunks inline, so it
    # must match chunked to within timing noise instead of trailing it.
    assert speedup["chunked_threads"] >= 0.95 * speedup["chunked"], speedup
