"""Section 5's verbal quality claims, quantified perceptually.

"Even at the 5 % quality loss we already start seeing a huge improvement
in the backlight power consumption, and visual degradation is virtually
unnoticeable.  The degradation in quality varies from not noticeable to
minor color and luminance distortion."

The Weber-law visibility model turns those words into numbers: the
fraction of pixels whose rendered luminance changes by more than one
just-noticeable difference between the full-backlight original and the
compensated dimmed playback.
"""

from repro.core import QUALITY_LEVELS, SchemeParameters, quality_label, sweep_quality_levels
from repro.quality import PerceptualModel, perceptual_playback_report
from repro.video import make_clip

CLIPS = ("returnoftheking", "shrek2", "ice_age")


def test_perceptual_quality(benchmark, report, device):
    model = PerceptualModel()
    lines = [f"{'clip':<18}" + "".join(f"{quality_label(q):>9}" for q in QUALITY_LEVELS)]
    results = {}
    for name in CLIPS:
        clip = make_clip(name, resolution=(96, 72), duration_scale=0.25)
        streams = sweep_quality_levels(clip, device, QUALITY_LEVELS,
                                       params=SchemeParameters())
        row = [
            perceptual_playback_report(stream, model=model, sample_every=4)[
                "mean_visible_fraction"
            ]
            for stream in streams
        ]
        results[name] = row
        lines.append(f"{name:<18}" + "".join(f"{v:>9.2%}" for v in row))
    lines.append("")
    lines.append("values = mean fraction of pixels changed by > 1 JND vs the")
    lines.append("full-backlight original (Weber fraction 2%)")
    report("perceptual_quality", lines)

    for name, row in results.items():
        # lossless playback is perceptually lossless
        assert row[0] < 0.02, name
        # 'virtually unnoticeable' at 5 %
        assert row[1] < 0.05, name
        # visibility grows with the budget but stays 'minor' at 20 %
        assert all(b >= a - 0.01 for a, b in zip(row, row[1:])), name
        assert row[-1] < 0.30, name

    clip = make_clip("shrek2", resolution=(96, 72), duration_scale=0.25)
    stream = sweep_quality_levels(clip, device, [0.10], params=SchemeParameters())[0]
    benchmark.pedantic(
        perceptual_playback_report, args=(stream,),
        kwargs={"sample_every": 8}, rounds=3, iterations=1,
    )
