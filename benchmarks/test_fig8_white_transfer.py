"""Figure 8: measured brightness vs white level at backlight 255 and 128.

The paper's observation for the iPAQ 5555: screen brightness is almost
linear in the displayed white level, and halving the backlight scales the
whole curve down.  Benchmarks the white-level sweep.
"""

import numpy as np

from repro.camera import DigitalCamera, SRGBLikeResponse
from repro.display import fit_white_gamma, ipaq_5555, measure_white_transfer


def test_fig8_white_transfer(benchmark, report):
    device = ipaq_5555()
    camera = DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.002, seed=8)

    sweeps = {
        bl: measure_white_transfer(
            device, camera, backlight_level=bl, gray_levels=range(0, 256, 32)
        )
        for bl in (255, 128)
    }

    lines = ["white  brightness@bl255  brightness@bl128"]
    for s255, s128 in zip(sweeps[255], sweeps[128]):
        lines.append(
            f"{s255.level:>5} {s255.measured_brightness:>17.3f} "
            f"{s128.measured_brightness:>17.3f}"
        )
    gamma = fit_white_gamma(sweeps[255])
    lines.append("")
    lines.append(f"fitted white gamma (bl=255): {gamma:.3f}  (1.0 = linear)")
    report("fig8_white_transfer", lines)

    # Almost linear in white level on this panel.
    assert abs(gamma - 1.0) < 0.1

    # Lower backlight scales the curve down by the transfer ratio.
    ratio = sweeps[128][-1].measured_brightness / sweeps[255][-1].measured_brightness
    expected = float(device.transfer.backlight.luminance(128))
    assert np.isfinite(ratio)
    assert abs(ratio - expected) < 0.05

    benchmark.pedantic(
        measure_white_transfer, args=(device, camera), rounds=3, iterations=1
    )
