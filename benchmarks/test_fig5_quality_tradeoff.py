"""Figure 5: the quality trade-off in a histogram — clipped (lost)
high-luminance values as the allowed percentage grows.

Regenerates the clip point and actually-lost pixel mass at the paper's
quality levels for a dark frame, and benchmarks the clip-point lookup
(the per-scene cost of the clipping heuristic).
"""

from repro.core import QUALITY_LEVELS, quality_label
from repro.quality import LuminanceHistogram
from repro.video import DarkScene


def test_fig5_quality_tradeoff(benchmark, report):
    frame = DarkScene(duration=1, resolution=(96, 72), seed=5).render(0)
    hist = LuminanceHistogram.of(frame)

    lines = ["quality  clip_code  kept_range  actually_lost"]
    prev_code = 256
    for q in QUALITY_LEVELS:
        code = hist.clip_point(q)
        lost = hist.tail_mass_above(code)
        lines.append(
            f"{quality_label(q):>7} {code:>10} {f'0-{code}':>11} {lost:>13.2%}"
        )
        # Clip point descends as the budget grows, and the lost mass never
        # exceeds the budget.
        assert code <= prev_code
        assert lost <= q + 1e-12
        prev_code = code
    report("fig5_quality_tradeoff", lines)

    benchmark(hist.clip_point, 0.10)
