"""Ablation: color-safe (peak-channel) vs paper-literal (luminance)
analysis.

The paper computes everything on the BT.601 luminance and accepts that
"pixels become saturated and clipping occurs or colors change".  The
color-safe mode budgets clipping on the per-pixel peak channel instead.
This bench quantifies what the literal mode trades: a little more power
for budget violations on saturated-color content.
"""

from repro.core import AnnotationPipeline, SchemeParameters
from repro.video import make_clip

QUALITY = 0.05


def test_ablation_color_safety(benchmark, report, device):
    lines = [f"{'clip':<18}{'mode':>9}{'savings':>9}{'mean_clip':>11}{'max_clip':>10}"]
    results = {}
    for title in ("catwoman", "spiderman2"):  # strongly tinted titles
        clip = make_clip(title, resolution=(96, 72), duration_scale=0.25)
        for color_safe in (True, False):
            params = SchemeParameters(quality=QUALITY, color_safe=color_safe)
            stream = AnnotationPipeline(params).build_stream(clip, device)
            clip_fracs = [
                stream.compensated_frame(i).clipped_fraction
                for i in range(0, clip.frame_count, 3)
            ]
            mode = "safe" if color_safe else "literal"
            results[(title, mode)] = (
                stream.predicted_backlight_savings(),
                sum(clip_fracs) / len(clip_fracs),
                max(clip_fracs),
            )
            savings, mean_c, max_c = results[(title, mode)]
            lines.append(f"{title:<18}{mode:>9}{savings:>9.1%}"
                         f"{mean_c:>11.2%}{max_c:>10.2%}")
    report("ablation_color_safety", lines)

    for title in ("catwoman", "spiderman2"):
        safe = results[(title, "safe")]
        literal = results[(title, "literal")]
        # literal saves at least as much power...
        assert literal[0] >= safe[0] - 1e-9
        # ...but blows the channel-clipping budget, while safe holds it.
        assert safe[2] <= QUALITY + 0.01
        assert literal[2] > QUALITY + 0.01

    clip = make_clip("catwoman", resolution=(96, 72), duration_scale=0.25)
    pipeline = AnnotationPipeline(SchemeParameters(quality=QUALITY, color_safe=False))
    benchmark.pedantic(
        pipeline.annotate_for_device, args=(clip, device), rounds=3, iterations=1
    )
