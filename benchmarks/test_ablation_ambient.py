"""Extension: ambient-aware binding on the transflective panel.

Section 4.1 motivates transflective panels by their indoor/outdoor
behaviour; this bench quantifies what the reflective path buys the
annotation scheme: the same device-independent track, bound per viewing
environment, saves progressively more backlight power as ambient light
takes over part of the luminance target.
"""

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import AMBIENT_PRESETS, bind_with_ambient
from repro.power import simulated_backlight_savings
from repro.video import make_clip

QUALITY = 0.05


def test_ablation_ambient(benchmark, report, device):
    clip = make_clip("spiderman2", resolution=(96, 72), duration_scale=0.25)
    track = AnnotationPipeline(SchemeParameters(quality=QUALITY)).annotate(clip)

    lines = [f"{'ambient':<16}{'illuminance':>12}{'savings':>9}{'mean_level':>11}"]
    savings = []
    for amb in AMBIENT_PRESETS:
        bound = bind_with_ambient(track, device, amb)
        levels = bound.per_frame_levels()
        s = simulated_backlight_savings(levels, device)
        savings.append(s)
        lines.append(
            f"{amb.name:<16}{amb.illuminance:>12.2f}{s:>9.1%}{levels.mean():>11.1f}"
        )
    report("ablation_ambient", lines)

    # Brighter surroundings can only help.
    assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))
    # Sunlight on a transflective panel is a large extra win.
    assert savings[-1] > savings[0] + 0.10

    benchmark.pedantic(
        bind_with_ambient, args=(track, device, AMBIENT_PRESETS[2]),
        rounds=5, iterations=1,
    )
