"""Ablation: contrast enhancement vs brightness compensation (Section 4.1).

The paper describes both operators and picks contrast enhancement.  This
bench justifies the choice with the paper's own camera methodology: both
variants use the *same* scenes and backlight levels; only the image
adjustment differs.  Contrast enhancement restores perceived intensity
exactly for unclipped pixels, so its snapshots sit closer (smaller EMD,
smaller average shift) to the full-backlight reference than the additive
variant, which can only match one luminance at a time.

Also reports the transition-smoothing extension: ramped level changes cut
the worst single-frame backlight jump while leaving savings unchanged.
"""

import numpy as np

from repro.baselines import AnnotatedBrightnessScaling, AnnotatedScaling
from repro.camera import CompensationValidator, DigitalCamera
from repro.core import SchemeParameters, max_level_step, smooth_track
from repro.core.pipeline import AnnotationPipeline
from repro.power import simulated_backlight_savings
from repro.video import make_clip

QUALITY = 0.10


def test_ablation_compensation(benchmark, report, device):
    clip = make_clip("returnoftheking", resolution=(96, 72), duration_scale=0.25)
    validator = CompensationValidator(device, DigitalCamera(noise_sigma=0.0))
    params = SchemeParameters(quality=QUALITY)

    plans = {
        "contrast": AnnotatedScaling(params).plan(clip, device),
        "brightness": AnnotatedBrightnessScaling(params).plan(clip, device),
    }
    emds = {}
    shifts = {}
    lines = [f"{'compensation':<14}{'savings':>9}{'mean_EMD':>10}{'mean_shift':>12}"]
    for name, plan in plans.items():
        frame_emds = []
        frame_shifts = []
        for i in range(0, clip.frame_count, 6):
            frame = clip.frame(i)
            comp = plan.compensate(frame, i).frame
            rep = validator.validate(frame, comp, int(plan.levels[i]))
            frame_emds.append(rep.emd)
            frame_shifts.append(rep.average_shift)
        emds[name] = float(np.mean(frame_emds))
        shifts[name] = float(np.mean(frame_shifts))
        lines.append(
            f"{name:<14}{plan.backlight_savings(device):>9.1%}"
            f"{emds[name]:>10.2f}{shifts[name]:>12.2f}"
        )

    # transition smoothing extension
    track = AnnotationPipeline(params).annotate_for_device(clip, device)
    smoothed = smooth_track(track, device, ramp_frames=8)
    raw_step = max_level_step(track.per_frame_levels())
    new_step = max_level_step(smoothed.per_frame_levels())
    raw_savings = simulated_backlight_savings(track.per_frame_levels(), device)
    new_savings = simulated_backlight_savings(smoothed.per_frame_levels(), device)
    lines.append("")
    lines.append(f"transition smoothing: max level step {raw_step} -> {new_step}, "
                 f"savings {raw_savings:.1%} -> {new_savings:.1%}")
    report("ablation_compensation", lines)

    # Same power (identical levels), better fidelity for contrast.
    assert np.array_equal(plans["contrast"].levels, plans["brightness"].levels)
    assert emds["contrast"] < emds["brightness"]

    # Smoothing cuts the visible jump without moving the savings.
    assert new_step < raw_step
    assert abs(new_savings - raw_savings) < 0.05

    validator_frame = clip.frame(0)
    plan = plans["contrast"]
    benchmark.pedantic(
        lambda: validator.validate(
            validator_frame, plan.compensate(validator_frame, 0).frame,
            int(plan.levels[0])
        ),
        rounds=3, iterations=1,
    )
