"""Multi-session serving throughput per execution engine.

Drives K concurrent sessions of one library title through a
:class:`MediaServer` per engine kind and times the full serving loop:
session negotiation, the (first-session) profile + annotate pass, and
chunked compensation + packet emission for every session.  This is the
ROADMAP's north-star shape — many clients pulling annotated streams from
one server — so the number that matters is sessions/sec, with frames/sec
alongside.

Each server gets a *dedicated* profile cache: the process-wide shared
cache would let one engine serve another engine's profiling results and
flatten the comparison.  Within a server, sessions 2..K hitting the
name-keyed profile cache is the measured scenario (annotate once, serve
many), identical for every engine.

Acceptance: chunked serving >= 2x per-frame serving.  Results go to
``results/BENCH_serving.json`` and ``results/serving_throughput.txt``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import ENGINE_KINDS, ProfileCache, SchemeParameters
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CLIP_NAME = "themovie"
SESSIONS = 4
ROUNDS = 2
QUALITY = 0.05


@pytest.fixture(scope="module")
def workload():
    clip = ArrayClip.from_clip(make_clip(CLIP_NAME, resolution=(96, 72)))
    assert clip.frame_count >= 300
    return clip


def _make_server(clip, engine):
    server = MediaServer(
        params=SchemeParameters(quality=QUALITY),
        engine=engine,
        profile_cache=ProfileCache(max_entries=4),
    )
    server.add_clip(clip)
    return server


def _serve_sessions(server, clip, sessions=SESSIONS):
    """Open and fully drain ``sessions`` streams; returns frames served."""
    frames = 0
    for _ in range(sessions):
        request = SessionRequest(
            clip.name, QUALITY, ClientCapabilities("ipaq5555")
        )
        session = server.open_session(request)
        for packet in server.stream(session):
            if packet.ptype is PacketType.FRAME:
                frames += 1
    return frames


def test_serving_throughput(report, workload):
    clip = workload
    n = clip.frame_count

    # Correctness gate before timing: every engine's first session must
    # emit the per-frame reference packets byte-for-byte.
    reference = None
    for kind in ENGINE_KINDS:
        server = _make_server(clip, kind)
        request = SessionRequest(clip.name, QUALITY, ClientCapabilities("ipaq5555"))
        packets = list(server.stream(server.open_session(request)))
        sample = [
            (p.seq, p.frame_index, p.frame.pixels[::7, ::5].copy())
            for p in packets
            if p.ptype is PacketType.FRAME
        ][::31]
        payloads = [p.payload for p in packets if p.ptype is PacketType.ANNOTATION]
        if reference is None:
            reference = (sample, payloads)
        else:
            assert payloads == reference[1], kind
            for (seq, idx, pix), (rseq, ridx, rpix) in zip(sample, reference[0]):
                assert (seq, idx) == (rseq, ridx), kind
                assert np.array_equal(pix, rpix), kind

    seconds = {}
    frames_served = {}
    for kind in ENGINE_KINDS:
        times = []
        for _ in range(ROUNDS):
            server = _make_server(clip, kind)  # cold caches every round
            start = time.perf_counter()
            frames_served[kind] = _serve_sessions(server, clip)
            times.append(time.perf_counter() - start)
        seconds[kind] = min(times)
        assert frames_served[kind] == SESSIONS * n

    sessions_per_sec = {k: SESSIONS / s for k, s in seconds.items()}
    frames_per_sec = {k: frames_served[k] / s for k, s in seconds.items()}
    speedup = {k: seconds["perframe"] / s for k, s in seconds.items()}

    payload = {
        "benchmark": "serving_throughput",
        "clip": clip.name,
        "frames": n,
        "resolution": list(clip.resolution),
        "sessions": SESSIONS,
        "rounds": ROUNDS,
        "engines": {
            kind: {
                "seconds": seconds[kind],
                "sessions_per_sec": sessions_per_sec[kind],
                "frames_per_sec": frames_per_sec[kind],
                "speedup_vs_perframe": speedup[kind],
            }
            for kind in ENGINE_KINDS
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_serving.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"serving throughput on {clip.name!r} "
        f"({SESSIONS} sessions x {n} frames @ "
        f"{clip.resolution[0]}x{clip.resolution[1]}, best of {ROUNDS})",
        f"{'engine':<12}{'seconds':>10}{'sessions/s':>12}{'frames/s':>11}{'speedup':>10}",
    ]
    for kind in ENGINE_KINDS:
        lines.append(
            f"{kind:<12}{seconds[kind]:>10.3f}{sessions_per_sec[kind]:>12.2f}"
            f"{frames_per_sec[kind]:>11.0f}{speedup[kind]:>9.2f}x"
        )
    lines.append(f"json -> {json_path}")
    report("serving_throughput", lines)

    # Acceptance: chunked packet emission serves sessions at least twice
    # as fast as the per-frame reference path.
    assert speedup["chunked"] >= 2.0, speedup
