"""Section 4.3 claim: "The annotations are RLE compressed, so the
overhead is minimal, in the order of hundreds of bytes for our video
clips which are on the order of a few megabytes."

Regenerates the annotation-bytes vs clip-bytes table at QVGA resolution
(the iPAQ's native 240x320, where clip payloads really are megabytes).
"""

from repro.core import AnnotationPipeline, SchemeParameters
from repro.core.rle import compression_ratio
from repro.video import clip_nbytes, make_clip


def test_annotation_overhead(benchmark, report, device):
    params = SchemeParameters(quality=0.10)
    pipeline = AnnotationPipeline(params)

    lines = [f"{'clip':<22}{'frames':>7}{'clip_MiB':>10}{'track_B':>9}"
             f"{'overhead':>10}{'rle_ratio':>10}"]
    worst_overhead = 0.0
    for name in ("themovie", "returnoftheking", "ice_age"):
        clip = make_clip(name, resolution=(240, 320), duration_scale=0.25)
        track = pipeline.annotate_for_device(clip, device)
        payload = clip_nbytes(clip)
        overhead = track.nbytes / payload
        worst_overhead = max(worst_overhead, overhead)
        ratio = compression_ratio(track.per_frame_levels())
        lines.append(
            f"{name:<22}{clip.frame_count:>7}{payload / 2**20:>10.1f}"
            f"{track.nbytes:>9}{overhead:>10.2e}{ratio:>10.1f}"
        )
    report("annotation_overhead", lines)

    # Hundreds of bytes against megabytes: overhead under 0.01 %.
    assert worst_overhead < 1e-4

    clip = make_clip("themovie", resolution=(96, 72), duration_scale=0.25)
    track = pipeline.annotate_for_device(clip, device)
    benchmark(track.to_bytes)
