"""Ablation: device dependence of the savings.

"Our scheme allows us to tailor the technique to each PDA for better
power savings, by including the display properties in the loop."  The
same device-independent annotation track is bound to each of the three
PDAs; their transfer curves and backlight electronics yield different
schedules and different savings.
"""

from repro.core import AnnotationPipeline, SchemeParameters
from repro.core.pipeline import AnnotatedStream
from repro.display import all_devices
from repro.video import make_clip

QUALITY = 0.10


def test_ablation_devices(benchmark, report):
    clip = make_clip("returnoftheking", resolution=(96, 72), duration_scale=0.25)
    pipeline = AnnotationPipeline(SchemeParameters(quality=QUALITY))
    track = pipeline.annotate(clip)  # one track, all devices

    lines = [f"{'device':<16}{'backlight':>10}{'floor_W':>9}{'savings':>9}"
             f"{'mean_level':>11}"]
    savings = {}
    for dev in all_devices():
        stream = AnnotatedStream(clip, track.bind(dev), dev)
        s = stream.predicted_backlight_savings()
        savings[dev.name] = s
        levels = stream.backlight_levels()
        lines.append(
            f"{dev.name:<16}{dev.backlight.kind:>10}"
            f"{dev.backlight.power_floor_w:>9.2f}{s:>9.1%}"
            f"{levels.mean():>11.1f}"
        )
    report("ablation_devices", lines)

    # All devices save meaningfully on a dark clip.
    assert all(s > 0.15 for s in savings.values())
    # Savings differ across devices (transfer + electronics matter).
    assert len({round(s, 2) for s in savings.values()}) >= 2
    # CCFL inverter floors cap savings below the LED device's at equal
    # dimming depth; with different transfers the LED device wins here.
    assert savings["ipaq5555"] == max(savings.values())

    benchmark.pedantic(track.bind, args=(all_devices()[0],), rounds=5, iterations=1)
