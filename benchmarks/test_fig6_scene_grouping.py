"""Figure 6: scene grouping during playback.

Regenerates the three curves of the figure for a short clip at the 10 %
quality level: per-frame max luminance, the scene max luminance step
function, and the instantaneous backlight power savings.  Benchmarks the
profiling pass (analysis + scene detection), the dominant server cost.
"""

import numpy as np

from repro.core import AnnotationPipeline, SchemeParameters
from repro.video import make_clip


def test_fig6_scene_grouping(benchmark, report, device):
    clip = make_clip("themovie", resolution=(96, 72), duration_scale=0.25)
    params = SchemeParameters(quality=0.10, min_scene_interval_frames=8)
    pipeline = AnnotationPipeline(params)

    profile = benchmark.pedantic(pipeline.profile, args=(clip,), rounds=3, iterations=1)
    stream = AnnotationPipeline(params).build_stream(clip, device)

    frame_max = profile.max_luminance_series()
    scene_max = profile.scene_max_series()
    inst_savings = stream.instantaneous_savings()
    t = np.arange(clip.frame_count) / clip.fps

    lines = ["time_s  frame_max_lum  scene_max_lum  backlight_power_saved"]
    step = max(1, clip.frame_count // 24)
    for i in range(0, clip.frame_count, step):
        lines.append(
            f"{t[i]:>6.2f} {frame_max[i]:>14.3f} {scene_max[i]:>14.3f} "
            f"{inst_savings[i]:>22.1%}"
        )
    lines.append("")
    lines.append(f"scenes: {len(profile.scenes)}  "
                 f"switches: {stream.track.switch_count()}  "
                 f"mean savings: {inst_savings.mean():.1%}")
    report("fig6_scene_grouping", lines)

    # Shape checks: the scene curve is a step function dominating the
    # frame curve, and savings move inversely with scene luminance.
    assert np.all(scene_max >= frame_max - 1e-9)
    assert len(np.unique(scene_max)) < len(np.unique(frame_max))
    dark_mask = scene_max < np.median(scene_max)
    assert inst_savings[dark_mask].mean() > inst_savings[~dark_mask].mean()
