"""Benchmark trend check: fail CI when a committed metric regresses.

Compares the freshly generated ``benchmarks/results/BENCH_*.json`` files
against the baselines committed in git (``git show <ref>:<path>``) and
exits non-zero when a gated metric regresses beyond tolerance.

Two metric classes, because the files mix deterministic quantities with
machine-speed-dependent rates:

* **quality keys** (deterministic: savings fractions, Pareto frontier
  size, speedup ratios, telemetry overhead) — tight default tolerance,
  ``--tolerance`` (0.10);
* **rate keys** (sessions/s, frames/s, MB/s — vary with the host) —
  loose default tolerance, ``--rate-tolerance`` (0.5).

Files without a committed baseline are skipped with a note, so a brand
new benchmark passes its first CI run and becomes a baseline once its
results are committed.

Usage::

    python benchmarks/trend_check.py [--ref HEAD] [files...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Deterministic metrics; higher is better unless listed in LOWER_IS_BETTER.
QUALITY_KEYS = {
    "speedup_vs_perframe",
    "lut_speedup_vs_float",
    "savings",
    "savings_vs_static",
    "frontier_size",
    "overhead_fraction",
    "recovered_session_rate",
}
#: Host-speed-dependent throughput metrics; higher is better.
RATE_KEYS = {"sessions_per_sec", "frames_per_sec", "wire_mbytes_per_sec"}
#: Keys where a *rise* is the regression.
LOWER_IS_BETTER = {"overhead_fraction"}
#: Comparative gates: within one fresh results file, the metric at the
#: first path must be >= ``ratio`` times the metric at the second path.
#: Unlike the regression bands (which compare against a committed
#: baseline and so drift with it), these encode *structural* claims —
#: the chunked engine beating per-frame emission over the wire is the
#: repo's headline result, and both sides of the ratio are measured in
#: the same run on the same host, so a tight band is fair.
#: A gate may carry an optional fourth element ``(condition_path, min)``:
#: it only applies when the fresh file's value at ``condition_path`` is
#: >= ``min``.  The fleet speedup claim needs real parallelism, so its
#: gate is conditioned on the pinned ``cpus`` field — a single-core host
#: records the ratio but is not held to it.
COMPARATIVE_GATES = {
    "BENCH_network.json": [
        ("engines/chunked/sessions_per_sec",
         "engines/perframe/sessions_per_sec", 0.95),
        ("engines/chunked/frames_per_sec",
         "engines/perframe/frames_per_sec", 0.95),
    ],
    "BENCH_fleet.json": [
        ("fleet/sessions_per_sec",
         "single/sessions_per_sec", 1.5, ("cpus", 2)),
    ],
}
#: Absolute floors: within one fresh results file, the metric at the
#: path must meet the floor outright — no baseline involved.  Encodes
#: hard acceptance claims (a fleet that loses sessions on failover is
#: broken no matter what the committed baseline says).
ABSOLUTE_FLOORS = {
    "BENCH_fleet.json": [
        ("chaos/recovered_session_rate", 0.99),
    ],
    "BENCH_adaptation.json": [
        # The battery-driven client must save at least 10% modeled
        # backlight energy over the static session — the adaptation
        # control plane's acceptance floor.
        ("adaptive/savings_vs_static", 0.10),
    ],
}
#: Absolute band for LOWER_IS_BETTER fractions.  These hover around
#: zero, where a relative band degenerates: a lucky -2% baseline sample
#: would fail any honest re-measurement.  A rise only regresses when it
#: exceeds max(baseline, 0) by this many absolute points; the hard
#: ceiling stays in the benchmark's own threshold assert.
LOWER_ABS_BAND = 0.02


def flatten(node, path="") -> Dict[str, float]:
    """Numeric leaves of a JSON tree, keyed by slash-joined path."""
    leaves: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            leaves.update(flatten(value, f"{path}/{key}" if path else str(key)))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            leaves.update(flatten(value, f"{path}[{i}]"))
    elif isinstance(node, bool):
        pass  # bools are ints in Python; never a gated metric
    elif isinstance(node, (int, float)):
        leaves[path] = float(node)
    return leaves


def metric_key(path: str) -> str:
    """The final key component of a flattened path (list indices stripped)."""
    tail = path.rsplit("/", 1)[-1]
    return tail.split("[", 1)[0]


def compare(fresh: dict, baseline: dict, tolerance: float,
            rate_tolerance: float) -> Tuple[List[str], List[str]]:
    """Gated-metric comparison: (regressions, notes)."""
    fresh_leaves = flatten(fresh)
    base_leaves = flatten(baseline)
    regressions, notes = [], []
    for path, base in sorted(base_leaves.items()):
        key = metric_key(path)
        if key in RATE_KEYS:
            tol = rate_tolerance
        elif key in QUALITY_KEYS:
            tol = tolerance
        else:
            continue
        if path not in fresh_leaves:
            notes.append(f"  gone: {path} (baseline {base:g})")
            continue
        now = fresh_leaves[path]
        if key in LOWER_IS_BETTER:
            regressed = now > max(base, 0.0) + LOWER_ABS_BAND + 1e-12
        else:
            regressed = now < base - tol * abs(base) - 1e-12
        if regressed:
            regressions.append(
                f"  REGRESSED {path}: {base:g} -> {now:g} "
                f"(tolerance {tol:.0%})"
            )
    return regressions, notes


def comparative(fresh: dict, name: str) -> Tuple[List[str], List[str]]:
    """Within-file comparative and absolute gates: (failures, notes)."""
    failures: List[str] = []
    notes: List[str] = []
    leaves = flatten(fresh)
    for gate in COMPARATIVE_GATES.get(name, ()):
        winner, loser, ratio = gate[:3]
        if len(gate) == 4:
            condition_path, minimum = gate[3]
            if leaves.get(condition_path, 0.0) < minimum:
                notes.append(f"  skipped gate {winner}: "
                             f"{condition_path} < {minimum:g}")
                continue
        if winner not in leaves or loser not in leaves:
            failures.append(f"  MISSING comparative metric: {winner} vs {loser}")
            continue
        if leaves[winner] < ratio * leaves[loser] - 1e-12:
            failures.append(
                f"  COMPARATIVE {winner} ({leaves[winner]:g}) < "
                f"{ratio:g} x {loser} ({leaves[loser]:g})"
            )
    for path, floor in ABSOLUTE_FLOORS.get(name, ()):
        if path not in leaves:
            failures.append(f"  MISSING floor metric: {path}")
        elif leaves[path] < floor - 1e-12:
            failures.append(
                f"  FLOOR {path} ({leaves[path]:g}) < {floor:g}"
            )
    return failures, notes


def baseline_from_git(relpath: str, ref: str) -> dict:
    """The committed version of a results file, or None when absent."""
    proc = subprocess.run(
        ["git", "-C", REPO_ROOT, "show", f"{ref}:{relpath}"],
        capture_output=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout.decode())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: all in results/)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines (default HEAD)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for deterministic metrics")
    parser.add_argument("--rate-tolerance", type=float, default=0.5,
                        help="relative tolerance for throughput metrics")
    args = parser.parse_args(argv)

    files = args.files or sorted(
        os.path.join(RESULTS_DIR, name)
        for name in os.listdir(RESULTS_DIR)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not files:
        print("trend-check: no BENCH_*.json files found")
        return 1

    failed = False
    for path in files:
        relpath = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        name = os.path.basename(path)
        with open(path) as fh:
            fresh = json.load(fh)
        # Within-file comparative gates run even without a baseline:
        # both sides come from the fresh measurement.
        comparative_failures, gate_notes = comparative(fresh, name)
        baseline = baseline_from_git(relpath, args.ref)
        if baseline is None:
            status = "FAIL" if comparative_failures else "no baseline, skipped"
            print(f"{name}: {status}")
            for line in comparative_failures + gate_notes:
                print(line)
            failed = failed or bool(comparative_failures)
            continue
        regressions, notes = compare(
            fresh, baseline, args.tolerance, args.rate_tolerance
        )
        regressions = comparative_failures + regressions
        notes = gate_notes + notes
        status = "FAIL" if regressions else "ok"
        print(f"{name}: {status}")
        for line in regressions + notes:
            print(line)
        failed = failed or bool(regressions)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
