"""Substrate ablation: raw-pixel vs encoded-bitstream transport.

The paper streams MPEG; what hits the client radio is the compressed
bitstream.  The default simulation ships raw pixels (overstating radio
duty); this bench adds the codec size model and shows how transport
efficiency changes the whole-device picture: the radio quiets down, total
power falls, and the *relative* weight of the backlight — the paper's
target — grows.
"""

import pytest

from repro.core import SchemeParameters
from repro.display import ipaq_5555
from repro.streaming import MediaServer, MobileClient, NetworkPath
from repro.video import CodecModel, make_clip

QUALITY = 0.10


def _run(clip, codec, device):
    server = MediaServer(params=SchemeParameters(), codec=codec)
    server.add_clip(clip)
    client = MobileClient(device)
    session = server.open_session(client.request(clip.name, QUALITY))
    packets = list(server.stream(session))
    delivery = NetworkPath().deliver(packets)
    result = client.play_stream(session, packets, delivery=delivery)
    duty = delivery.radio_duty(result.duration_s)
    return result, duty, delivery.total_bytes


def test_ablation_codec_transport(benchmark, report, device):
    clip = make_clip("i_robot", resolution=(96, 72), duration_scale=0.25)
    codec = CodecModel()
    enc = codec.encode(clip)

    raw_result, raw_duty, raw_bytes = _run(clip, None, device)
    enc_result, enc_duty, enc_bytes = _run(clip, codec, device)

    lines = [
        f"stream bitrate (encoded): {enc.bitrate_bps / 1e3:.0f} kbps "
        f"({enc.compression_ratio(clip.frame(0).pixels.nbytes):.0f}x compression)",
        f"mean frame bytes by type: "
        + ", ".join(f"{k}={v:.0f}" for k, v in enc.mean_bytes_by_type().items()),
        "",
        f"{'transport':<10}{'KiB':>8}{'radio_duty':>12}{'power_W':>9}{'bl_savings':>12}",
        f"{'raw':<10}{raw_bytes / 1024:>8.0f}{raw_duty:>12.1%}"
        f"{raw_result.mean_power_w:>9.3f}{raw_result.total_savings:>12.1%}",
        f"{'encoded':<10}{enc_bytes / 1024:>8.0f}{enc_duty:>12.1%}"
        f"{enc_result.mean_power_w:>9.3f}{enc_result.total_savings:>12.1%}",
    ]
    report("ablation_codec_transport", lines)

    # encoded transport quiets the radio and lowers total power
    assert enc_duty < raw_duty / 5
    assert enc_result.mean_power_w < raw_result.mean_power_w
    # frame-size ordering holds
    by_type = enc.mean_bytes_by_type()
    assert by_type["I"] > by_type["P"] > by_type["B"]
    # the backlight's *relative* share grows when the radio quiets down,
    # so the same schedule yields a larger fractional saving
    assert enc_result.total_savings > raw_result.total_savings

    benchmark.pedantic(codec.encode, args=(clip,), rounds=3, iterations=1)
