"""Figure 10: measured total-device power savings.

Ten clips x five quality levels, played back on the simulated iPAQ 5555
with the DAQ measurement chain, against a full-backlight reference run —
"The measured results are in line with the simulation, showing up to
15-20 % power reduction for the entire device, with the exception of
ice_age, which shows almost no improvement."
"""

import numpy as np
import pytest

from repro.core import QUALITY_LEVELS, SchemeParameters, quality_label, sweep_quality_levels
from repro.player import PlaybackEngine
from repro.video import PAPER_CLIP_NAMES


@pytest.fixture(scope="module")
def measured_table(library, device):
    # Frames are shrunk for simulation speed; charge decode cost at the
    # iPAQ's native QVGA resolution so the CPU share stays realistic.
    from repro.player import DecoderModel
    engine = PlaybackEngine(device, decoder=DecoderModel(reference_pixels=320 * 240))
    params = SchemeParameters()
    table = {}
    for clip in library:
        streams = sweep_quality_levels(clip, device, QUALITY_LEVELS, params=params)
        row = []
        for run_id, stream in enumerate(streams):
            result = engine.play(stream)
            measured = result.measure(run_id=2 * run_id).savings_vs(
                result.measure_baseline(run_id=2 * run_id + 1)
            )
            row.append(measured)
        table[clip.name] = row
    return table


def test_fig10_total_savings(benchmark, report, measured_table, library, device):
    lines = [
        f"{'clip':<22}" + "".join(f"{quality_label(q):>8}" for q in QUALITY_LEVELS)
    ]
    for name in PAPER_CLIP_NAMES:
        lines.append(f"{name:<22}" + "".join(f"{v:>8.1%}" for v in measured_table[name]))
    peak = max(v[-1] for v in measured_table.values())
    lines.append("")
    lines.append(f"peak total-device savings at 20% quality: {peak:.1%}")
    lines.append(f"ice_age at 20% quality: {measured_table['ice_age'][-1]:.1%}")
    report("fig10_total_savings", lines)

    # Monotone-ish in quality (DAQ noise allows ~1 % wiggle).
    for name, row in measured_table.items():
        assert all(b >= a - 0.015 for a, b in zip(row, row[1:])), name

    # Peak lands in (or near) the paper's 15-20 % band.
    assert 0.12 <= peak <= 0.25

    # ice_age shows almost no improvement.
    assert measured_table["ice_age"][-1] < 0.06

    # Measured tracks simulation: total ~= backlight savings x share.
    from repro.power import simulated_backlight_savings
    from repro.player import DecoderModel
    engine = PlaybackEngine(device, decoder=DecoderModel(reference_pixels=320 * 240))
    clip = library[0]
    stream = sweep_quality_levels(clip, device, [0.10])[0]
    result = engine.play(stream)
    bl = simulated_backlight_savings(result.applied_levels, device)
    share = float(device.backlight.power(255)) / result.baseline_mean_power_w
    assert result.total_savings == pytest.approx(bl * share, abs=0.02)

    # benchmark one playback run (the client-side cost)
    benchmark.pedantic(engine.play, args=(stream,), rounds=3, iterations=1)
