"""Figure 7: measured brightness vs backlight level (white pattern).

Regenerates the calibration sweep for the three PDAs via the camera
methodology.  The paper's observations to reproduce: the response is NOT
linear in the backlight register, and each display technology has its own
curve.  Benchmarks one full camera sweep.
"""

import numpy as np

from repro.camera import DigitalCamera, SRGBLikeResponse
from repro.display import all_devices, measure_backlight_transfer


def test_fig7_backlight_transfer(benchmark, report):
    camera = DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.002, seed=7)
    devices = all_devices()
    curves = {d.name: measure_backlight_transfer(d, camera) for d in devices}

    levels = list(range(0, 256, 32)) + [255]
    header = "level  " + "  ".join(f"{d.name:>14}" for d in devices)
    lines = [header]
    for lv in levels:
        lines.append(
            f"{lv:>5}  "
            + "  ".join(f"{float(curves[d.name].luminance(lv)):>14.3f}" for d in devices)
        )
    report("fig7_backlight_transfer", lines)

    # Nonlinearity: mid-level luminance is far from level/255 on every
    # device (the paper: "not linear with the backlight level").
    for d in devices:
        mid = float(curves[d.name].luminance(128))
        assert abs(mid - 128 / 255) > 0.05, d.name

    # Device diversity: the three curves differ pairwise.
    mids = [round(float(curves[d.name].luminance(96)), 2) for d in devices]
    assert len(set(mids)) == 3

    benchmark.pedantic(
        measure_backlight_transfer, args=(devices[0], camera), rounds=3, iterations=1
    )
