"""Extension: user-supervised (region-of-interest) annotation (Section 3).

"The user may specify which parts or objects of the video stream are more
important in a power-quality trade-off scenario."  This bench measures
what ROI weighting buys at the *lossless* quality level, where the effect
is purest: without ROI the corner flare pins the backlight high (no pixel
may clip); with ROI the flare is don't-care and the backlight drops to the
subject's level.
"""

import numpy as np

from repro.core import AnnotationPipeline, ImportanceMap, SchemeParameters, roi_clipped_mass
from repro.video import DarkScene, Frame, VideoClip

QUALITY = 0.0
H, W = 72, 96


def _clip_with_flare(n=40, seed=4):
    """Dark scene whose brightest pixels sit in the top-left corner."""
    gen = DarkScene(duration=n, resolution=(W, H), seed=seed,
                    background=0.18, highlight=0.5)
    frames = []
    for i in range(n):
        frame = gen.render(i)
        pixels = frame.pixels.copy()
        # A corner flare covering ~2.8 % of the frame: too big for the
        # 2 % uniform clip budget to shed, entirely outside the ROI.
        pixels[0:12, 0:16, :] = 245
        frames.append(Frame(pixels))
    return VideoClip(frames, name="flare")


def test_ablation_roi(benchmark, report, device):
    clip = _clip_with_flare()
    center_roi = ImportanceMap.rectangle(H, W, 12, 16, 60, 80, inside=1.0, outside=0.0)
    soft_roi = ImportanceMap.center_weighted(H, W, sigma=0.3, floor=0.05)

    lossless = SchemeParameters(quality=0.0, min_scene_interval_frames=8)
    lossy = SchemeParameters(quality=0.02, min_scene_interval_frames=8)
    # A hard ROI frees don't-care pixels even at the lossless level; a
    # soft (center-weighted) ROI keeps every pixel slightly protected, so
    # its gain appears once a small clip budget exists.
    variants = {
        "uniform@0%": AnnotationPipeline(lossless),
        "rect-roi@0%": AnnotationPipeline(lossless, importance=center_roi),
        "uniform@2%": AnnotationPipeline(lossy),
        "soft-roi@2%": AnnotationPipeline(lossy, importance=soft_roi),
    }

    lines = [f"{'variant':<13}{'savings':>9}{'roi_clip_mass':>15}"]
    savings = {}
    for name, pipeline in variants.items():
        stream = pipeline.build_stream(clip, device)
        savings[name] = stream.predicted_backlight_savings()
        gains = stream.track.per_frame_gains()
        worst_mass = max(
            roi_clipped_mass(clip.frame(i), center_roi, float(gains[i]))
            for i in range(0, clip.frame_count, 4)
        )
        lines.append(f"{name:<13}{savings[name]:>9.1%}{worst_mass:>15.2%}")
    report("ablation_roi", lines)

    # A hard ROI frees the backlight from the don't-care flare outright.
    assert savings["rect-roi@0%"] > savings["uniform@0%"] + 0.3
    # A soft ROI needs only a tiny budget to shed the flare.
    assert savings["soft-roi@2%"] > savings["uniform@2%"] + 0.05

    pipeline = variants["rect-roi@0%"]
    benchmark.pedantic(
        pipeline.build_stream, args=(clip, device), rounds=3, iterations=1
    )
