"""Figure 9 (headline): simulated LCD backlight power savings.

Ten clips x five quality levels on the iPAQ 5555.  Shapes that must hold
(the paper's absolute numbers depend on its exact MPEG content):

* savings grow monotonically with the quality level for every clip;
* dark-scene clips reach ~50-75 % at 20 % quality ("up to 65 % ... or
  even more");
* the bright-background clips (hunter_subres, ice_age) are the two worst
  performers, with ice_age near zero.
"""

import numpy as np
import pytest

from repro.core import QUALITY_LEVELS, SchemeParameters, quality_label, sweep_quality_levels
from repro.video import PAPER_CLIP_NAMES


@pytest.fixture(scope="module")
def savings_table(library, device):
    params = SchemeParameters()
    table = {}
    for clip in library:
        streams = sweep_quality_levels(clip, device, QUALITY_LEVELS, params=params)
        table[clip.name] = [s.predicted_backlight_savings() for s in streams]
    return table


def test_fig9_backlight_savings(benchmark, report, savings_table, library, device):
    lines = [
        f"{'clip':<22}" + "".join(f"{quality_label(q):>8}" for q in QUALITY_LEVELS)
    ]
    for name in PAPER_CLIP_NAMES:
        row = savings_table[name]
        lines.append(f"{name:<22}" + "".join(f"{v:>8.1%}" for v in row))
    best = max(savings_table.items(), key=lambda kv: kv[1][-1])
    lines.append("")
    lines.append(f"best clip at 20% quality: {best[0]} ({best[1][-1]:.1%})")
    report("fig9_backlight_savings", lines)

    for name, row in savings_table.items():
        # monotone in quality
        assert all(b >= a - 1e-9 for a, b in zip(row, row[1:])), name
        assert all(0.0 <= v < 1.0 for v in row), name

    # headline magnitude: the best clip saves >= 60 % at 20 % quality
    assert best[1][-1] >= 0.60

    # the two bright clips are the two worst at every lossy level
    for qi in range(1, len(QUALITY_LEVELS)):
        ranked = sorted(PAPER_CLIP_NAMES, key=lambda n: savings_table[n][qi])
        assert set(ranked[:2]) == {"hunter_subres", "ice_age"}, ranked[:2]

    # ice_age saves almost nothing even at 20 %
    assert savings_table["ice_age"][-1] < 0.15

    # benchmark one full annotate-and-bind of a mid-size clip
    from repro.core import AnnotationPipeline
    clip = library[1]
    pipeline = AnnotationPipeline(SchemeParameters(quality=0.10))
    benchmark.pedantic(
        pipeline.annotate_for_device, args=(clip, device), rounds=3, iterations=1
    )
