"""Figure 4: original (full backlight) vs compensated (~50 % backlight)
camera snapshots of a dark news-style frame.

The paper's example shows nearly identical snapshots whose histograms
reveal a small average-brightness change (190 vs 170 in the text).  Here
the same comparison is regenerated through the display + camera models.
"""

import pytest

from repro.camera import CompensationValidator, DigitalCamera
from repro.core import contrast_enhancement
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.video import DarkScene


def test_fig4_camera_validation(benchmark, report):
    device = ipaq_5555()
    camera = DigitalCamera(noise_sigma=0.002, seed=11)
    validator = CompensationValidator(device, camera)

    # A dark frame with a bright anchor region (news studio lighting).
    frame = DarkScene(duration=1, resolution=(96, 72), seed=9,
                      background=0.2, highlight=0.8).render(0)

    # Aim for roughly half backlight, as in the paper's example.
    target_level = device.transfer.backlight.level_for_luminance(0.5)
    gain = device.transfer.compensation_gain_for_level(target_level)
    compensated = contrast_enhancement(frame, gain).frame

    result = benchmark(
        validator.validate, frame, compensated, target_level, MAX_BACKLIGHT_LEVEL
    )

    lines = [
        f"backlight: reference={MAX_BACKLIGHT_LEVEL} compensated={target_level} "
        f"({result.backlight_saved_fraction:.0%} lower)",
        f"avg brightness: reference={result.reference_average:.1f} "
        f"compensated={result.compensated_average:.1f} "
        f"(shift {result.average_shift:+.1f})",
        f"dynamic range shift: {result.dynamic_range_shift:+d} codes",
        f"histogram EMD: {result.emd:.2f} codes",
        f"acceptable: {result.acceptable()}",
    ]
    report("fig4_camera_validation", lines)

    # The paper's qualitative claim: the two snapshots are close (small
    # average shift), despite the halved backlight.
    assert result.backlight_saved_fraction > 0.3
    assert abs(result.average_shift) < 25
    assert result.acceptable()
