"""Telemetry overhead: the instrumented hot path with telemetry on vs off.

The subsystem is designed to be default-on: counters are plain attribute
adds, spans pay two ``perf_counter`` calls, and the chunked engine only
touches the registry once per chunk.  This benchmark runs the full
profile -> clip -> compensate hot path with telemetry enabled and
disabled and asserts the enabled run costs at most
``OVERHEAD_THRESHOLD`` extra wall time.

A second gate prices the **wire path** the same way: one warmed TCP
fetch (codec encode, send queues, socket writes, client decode — now
span-tagged end to end with distributed-trace ids) timed with telemetry
+ tracing enabled vs disabled.  The tracing design keeps hot loops
span-free (per-stage costs accumulate into one ``emit_span`` per
session), so the wire path must clear the same threshold.

Results go to ``results/BENCH_telemetry.json`` (machine-readable; CI
gates regressions on it) and ``results/telemetry_overhead.txt``.
"""

import asyncio
import json
import os
import time

from repro import telemetry
from repro.core import AnnotationPipeline, ProfileCache, SchemeParameters
from repro.net import AnnotationStreamServer, AsyncMobileClient
from repro.streaming import ClientCapabilities, MediaServer, SessionRequest
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CLIP_NAME = "themovie"
MIN_FRAMES = 300
ROUNDS = 5

#: Maximum tolerated fractional slowdown with telemetry enabled.
OVERHEAD_THRESHOLD = 0.05


def hot_path(clip, device, params):
    """One full annotation pass: profile, clip, compensate every chunk."""
    # a fresh pipeline per run so the profile cache never hides the work
    pipeline = AnnotationPipeline(params, profile_cache=None)
    stream = pipeline.build_stream(clip, device)
    for chunk in stream.iter_chunks():
        chunk.clipped_fractions
    return stream


def best_time(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


async def _wire_round_times(media, device, rounds):
    """Per-round wall times of one warmed loopback fetch, on vs off.

    Rounds interleave enabled and disabled fetches against the same
    served catalog, so clock drift and allocator state hit both sides
    alike; the caller takes the per-side minimum.
    """
    on_times, off_times = [], []
    async with AnnotationStreamServer(media, queue_depth=64) as server:
        host, port = server.address
        client = AsyncMobileClient(device)
        await client.fetch(host, port, CLIP_NAME, 0.05)  # warm both sides
        for _ in range(rounds):
            telemetry.enable()
            start = time.perf_counter()
            await client.fetch(host, port, CLIP_NAME, 0.05)
            on_times.append(time.perf_counter() - start)
            telemetry.disable()
            start = time.perf_counter()
            await client.fetch(host, port, CLIP_NAME, 0.05)
            off_times.append(time.perf_counter() - start)
        telemetry.enable()
    return on_times, off_times


def wire_media(clip):
    """A media server with the benchmark clip annotated and cached."""
    media = MediaServer(
        params=SchemeParameters(quality=0.05),
        engine="chunked",
        profile_cache=ProfileCache(max_entries=4),
    )
    media.add_clip(clip)
    request = SessionRequest(clip.name, 0.05, ClientCapabilities("ipaq5555"))
    for _ in media.stream(media.open_session(request)):
        pass
    return media


def test_telemetry_overhead(report, device):
    clip = ArrayClip.from_clip(make_clip(CLIP_NAME, resolution=(96, 72)))
    assert clip.frame_count >= MIN_FRAMES
    params = SchemeParameters(quality=0.05)

    telemetry.enable()
    telemetry.reset_registry()
    run = lambda: hot_path(clip, device, params)
    try:
        on_seconds = best_time(run)
        telemetry.disable()
        off_seconds = best_time(run)
    finally:
        telemetry.enable()

    overhead = on_seconds / off_seconds - 1.0

    # Wire-path gate: the traced TCP fetch (encode/queue/write spans on
    # the server, connect/decode spans + latency SLO stats on the
    # client) against the same fetch with everything disabled.
    telemetry.reset_registry()
    telemetry.clear_spans()
    wire_on, wire_off = asyncio.run(
        _wire_round_times(wire_media(clip), device, ROUNDS)
    )
    wire_on_seconds, wire_off_seconds = min(wire_on), min(wire_off)
    wire_overhead = wire_on_seconds / wire_off_seconds - 1.0

    payload = {
        "benchmark": "telemetry_overhead",
        "clip": clip.name,
        "frames": clip.frame_count,
        "resolution": list(clip.resolution),
        "rounds": ROUNDS,
        "enabled_seconds": on_seconds,
        "disabled_seconds": off_seconds,
        "overhead_fraction": overhead,
        "threshold": OVERHEAD_THRESHOLD,
        # wire_* leaves stay outside the trend gate's key set: loopback
        # TCP timings are too jittery for a 10% band around a near-zero
        # baseline; the in-test threshold below is the real gate.
        "wire_enabled_seconds": wire_on_seconds,
        "wire_disabled_seconds": wire_off_seconds,
        "wire_overhead_fraction": wire_overhead,
        "wire_threshold": OVERHEAD_THRESHOLD,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_telemetry.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"telemetry overhead on {clip.name!r} "
        f"({clip.frame_count} frames @ {clip.resolution[0]}x{clip.resolution[1]}, "
        f"best of {ROUNDS})",
        f"enabled  : {on_seconds:.4f}s",
        f"disabled : {off_seconds:.4f}s",
        f"overhead : {overhead:+.2%} (threshold {OVERHEAD_THRESHOLD:.0%})",
        f"wire enabled  : {wire_on_seconds:.4f}s",
        f"wire disabled : {wire_off_seconds:.4f}s",
        f"wire overhead : {wire_overhead:+.2%} "
        f"(threshold {OVERHEAD_THRESHOLD:.0%})",
        f"json -> {json_path}",
    ]
    report("telemetry_overhead", lines)

    assert overhead < OVERHEAD_THRESHOLD, payload
    assert wire_overhead < OVERHEAD_THRESHOLD, payload
