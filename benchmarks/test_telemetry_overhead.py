"""Telemetry overhead: the instrumented hot path with telemetry on vs off.

The subsystem is designed to be default-on: counters are plain attribute
adds, spans pay two ``perf_counter`` calls, and the chunked engine only
touches the registry once per chunk.  This benchmark runs the full
profile -> clip -> compensate hot path with telemetry enabled and
disabled and asserts the enabled run costs at most
``OVERHEAD_THRESHOLD`` extra wall time.

Results go to ``results/BENCH_telemetry.json`` (machine-readable; CI
gates regressions on it) and ``results/telemetry_overhead.txt``.
"""

import json
import os
import time

from repro import telemetry
from repro.core import AnnotationPipeline, SchemeParameters
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CLIP_NAME = "themovie"
MIN_FRAMES = 300
ROUNDS = 5

#: Maximum tolerated fractional slowdown with telemetry enabled.
OVERHEAD_THRESHOLD = 0.05


def hot_path(clip, device, params):
    """One full annotation pass: profile, clip, compensate every chunk."""
    # a fresh pipeline per run so the profile cache never hides the work
    pipeline = AnnotationPipeline(params, profile_cache=None)
    stream = pipeline.build_stream(clip, device)
    for chunk in stream.iter_chunks():
        chunk.clipped_fractions
    return stream


def best_time(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_telemetry_overhead(report, device):
    clip = ArrayClip.from_clip(make_clip(CLIP_NAME, resolution=(96, 72)))
    assert clip.frame_count >= MIN_FRAMES
    params = SchemeParameters(quality=0.05)

    telemetry.enable()
    telemetry.reset_registry()
    run = lambda: hot_path(clip, device, params)
    try:
        on_seconds = best_time(run)
        telemetry.disable()
        off_seconds = best_time(run)
    finally:
        telemetry.enable()

    overhead = on_seconds / off_seconds - 1.0

    payload = {
        "benchmark": "telemetry_overhead",
        "clip": clip.name,
        "frames": clip.frame_count,
        "resolution": list(clip.resolution),
        "rounds": ROUNDS,
        "enabled_seconds": on_seconds,
        "disabled_seconds": off_seconds,
        "overhead_fraction": overhead,
        "threshold": OVERHEAD_THRESHOLD,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_telemetry.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"telemetry overhead on {clip.name!r} "
        f"({clip.frame_count} frames @ {clip.resolution[0]}x{clip.resolution[1]}, "
        f"best of {ROUNDS})",
        f"enabled  : {on_seconds:.4f}s",
        f"disabled : {off_seconds:.4f}s",
        f"overhead : {overhead:+.2%} (threshold {OVERHEAD_THRESHOLD:.0%})",
        f"json -> {json_path}",
    ]
    report("telemetry_overhead", lines)

    assert overhead < OVERHEAD_THRESHOLD, payload
