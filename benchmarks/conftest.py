"""Shared benchmark fixtures and the results reporter.

Every benchmark regenerates one table/figure of the paper.  Besides the
pytest-benchmark timing, each writes the reproduced rows/series to
``benchmarks/results/<name>.txt`` (and echoes to stdout when run with
``-s``), so EXPERIMENTS.md can be assembled from the artifacts.
"""

from __future__ import annotations

import os
from typing import Iterable, List

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Shrink factors shared by all benchmarks: the algorithms are length- and
#: resolution-agnostic, so reproduced *shapes* are unaffected.
DURATION_SCALE = 0.25
RESOLUTION = (96, 72)


@pytest.fixture(scope="session")
def report():
    """Writer: report(name, lines) persists one experiment's output."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name: str, lines: Iterable[str]) -> None:
        lines = list(lines)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"\n[{name}] -> {path}")
        for line in lines:
            print(f"  {line}")

    return write


@pytest.fixture(scope="session")
def library():
    """The ten-title clip library at benchmark scale (built once)."""
    from repro.video import paper_library

    return paper_library(resolution=RESOLUTION, duration_scale=DURATION_SCALE)


@pytest.fixture(scope="session")
def device():
    from repro.display import ipaq_5555

    return ipaq_5555()


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Fresh, enabled global metrics registry around every benchmark."""
    from repro import telemetry

    telemetry.enable()
    telemetry.reset_registry()
    telemetry.clear_spans()
    telemetry.clear_flight_events()
    yield
    telemetry.enable()
    telemetry.reset_registry()
    telemetry.clear_spans()
    telemetry.clear_flight_events()
