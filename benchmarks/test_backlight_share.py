"""Section 4 claim: "On a typical PDA the backlight dominates other
components, with about 25-30 % of total power consumption."

Regenerates the per-device component power breakdown during playback.
"""

from repro.display import all_devices
from repro.power import PLAYBACK_ACTIVITY, DevicePowerModel


def test_backlight_share(benchmark, report):
    lines = [f"{'device':<16}{'base':>7}{'cpu':>7}{'net':>7}{'panel':>7}"
             f"{'backlight':>10}{'total':>8}{'share':>7}"]
    shares = {}
    for dev in all_devices():
        model = DevicePowerModel(dev)
        parts = model.component_power(PLAYBACK_ACTIVITY, 255)
        total = float(model.total_power(PLAYBACK_ACTIVITY, 255))
        share = model.backlight_share()
        shares[dev.name] = share
        lines.append(
            f"{dev.name:<16}"
            f"{parts['base']:>7.2f}{parts['cpu']:>7.2f}{parts['network']:>7.2f}"
            f"{parts['panel']:>7.2f}{float(parts['backlight']):>10.2f}"
            f"{total:>8.2f}{share:>7.1%}"
        )
    report("backlight_share", lines)

    for name, share in shares.items():
        assert 0.22 <= share <= 0.40, f"{name}: {share:.1%}"

    model = DevicePowerModel(all_devices()[0])
    benchmark(model.total_power, PLAYBACK_ACTIVITY, 128)
