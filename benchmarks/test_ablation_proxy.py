"""Ablation: server-side (whole clip) vs proxy-side (chunked, on-the-fly)
annotation.

"Note that for our scheme either the proxy or the server node suffices."
The proxy pays for its real-time operation with chunk-bounded scenes;
this bench sweeps the chunk length and reports the savings gap and the
buffering latency it buys.
"""

import numpy as np

from repro.core import AnnotationPipeline, SchemeParameters
from repro.power import simulated_backlight_savings
from repro.streaming import TranscodingProxy
from repro.video import make_clip

QUALITY = 0.10


def test_ablation_proxy(benchmark, report, device):
    clip = make_clip("themovie", resolution=(96, 72), duration_scale=0.25)
    params = SchemeParameters(quality=QUALITY, min_scene_interval_frames=8)

    offline = AnnotationPipeline(params).build_stream(clip, device)
    offline_savings = offline.predicted_backlight_savings()

    lines = [f"{'variant':<20}{'savings':>9}{'latency_s':>11}"]
    lines.append(f"{'server (offline)':<20}{offline_savings:>9.1%}{0.0:>11.2f}")
    gaps = {}
    for chunk in (15, 30, 60):
        proxy = TranscodingProxy(device, params, chunk_frames=chunk)
        levels = np.array([
            level for _f, level, _g in proxy.annotate_live(iter(clip), fps=clip.fps)
        ])
        savings = simulated_backlight_savings(levels, device)
        gaps[chunk] = offline_savings - savings
        lines.append(
            f"{f'proxy (chunk={chunk})':<20}{savings:>9.1%}"
            f"{proxy.chunk_latency_s(clip.fps):>11.2f}"
        )
    report("ablation_proxy", lines)

    # The proxy stays within a modest gap of the offline optimum.
    assert all(abs(gap) < 0.15 for gap in gaps.values()), gaps

    proxy = TranscodingProxy(device, params, chunk_frames=30)
    benchmark.pedantic(
        lambda: list(proxy.annotate_live(iter(clip), fps=clip.fps)),
        rounds=3, iterations=1,
    )
