"""Cross-policy power/quality Pareto frontier.

Sweeps every shipped backlight policy (and useful configurations of the
parametric ones) across the quality levels on two library titles, then
measures each point on two axes:

* **savings** — mean simulated backlight power saved
  (:meth:`AnnotatedStream.predicted_backlight_savings`), and
* **distortion** — mean camera-validated histogram EMD between the
  original frame at full backlight and the compensated frame at the
  annotated level (a noiseless linear camera, so the number is exact).

A point is Pareto-optimal when no other point saves at least as much
power at no more distortion (one strictly better).  The refactor's
payoff claim — the policy space is richer than any single scheme — is
gated here: at least three *distinct policies* must each contribute a
frontier point.

Results go to ``results/BENCH_policy_pareto.json`` (machine-readable,
trend-checked in CI) and ``results/policy_pareto.txt``.
"""

import json
import os

import numpy as np

from repro.camera import CompensationValidator, DigitalCamera, LinearResponse
from repro.core import (
    AnnotationPipeline,
    HebsPolicy,
    QUALITY_LEVELS,
    SchemeParameters,
    SpatialScalingPolicy,
)
from repro.video import ArrayClip, make_clip

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CLIP_NAMES = ("spiderman2", "i_robot")
RESOLUTION = (96, 72)
DURATION_SCALE = 0.1
SAMPLE_EVERY = 10  # validate every 10th frame

#: The contenders: the paper's scheme plus the two alternative policies,
#: parametric ones at two configurations each.
CANDIDATES = [
    ("clip-quality", None),
    ("hebs d=3", HebsPolicy(dim_factor=3.0)),
    ("hebs d=8", HebsPolicy(dim_factor=8.0)),
    ("spatial s=2", SpatialScalingPolicy(2)),
    ("spatial s=3", SpatialScalingPolicy(3)),
]


def measure_point(clips, device, validator, policy, quality):
    """One (policy, quality) point: mean savings and mean EMD over clips."""
    params = SchemeParameters(quality=quality)
    savings, emds = [], []
    for clip in clips:
        pipeline = AnnotationPipeline(params, policy=policy)
        stream = pipeline.build_stream(clip, device)
        savings.append(stream.predicted_backlight_savings())
        levels = stream.backlight_levels()
        for index in range(0, clip.frame_count, SAMPLE_EVERY):
            report = validator.validate(
                original=clip.frame(index),
                compensated=stream.compensated_frame(index).frame,
                compensated_backlight=int(levels[index]),
            )
            emds.append(report.emd)
    return float(np.mean(savings)), float(np.mean(emds))


def pareto_flags(points):
    """True for points not dominated by any other (savings up, emd down)."""
    flags = []
    for i, a in enumerate(points):
        dominated = any(
            j != i
            and b["savings"] >= a["savings"]
            and b["distortion_emd"] <= a["distortion_emd"]
            and (b["savings"] > a["savings"]
                 or b["distortion_emd"] < a["distortion_emd"])
            for j, b in enumerate(points)
        )
        flags.append(not dominated)
    return flags


def test_policy_pareto(report, device):
    clips = [
        ArrayClip.from_clip(
            make_clip(name, resolution=RESOLUTION, duration_scale=DURATION_SCALE)
        )
        for name in CLIP_NAMES
    ]
    validator = CompensationValidator(
        device, DigitalCamera(response=LinearResponse(), noise_sigma=0.0)
    )

    points = []
    for label, policy in CANDIDATES:
        policy_name = "clip-quality" if policy is None else policy.name
        for quality in QUALITY_LEVELS:
            savings, emd = measure_point(clips, device, validator, policy, quality)
            points.append({
                "label": label,
                "policy": policy_name,
                "quality": quality,
                "savings": savings,
                "distortion_emd": emd,
            })

    flags = pareto_flags(points)
    for point, flag in zip(points, flags):
        point["pareto"] = flag
    frontier_policies = sorted({p["policy"] for p in points if p["pareto"]})

    payload = {
        "clips": list(CLIP_NAMES),
        "resolution": list(RESOLUTION),
        "duration_scale": DURATION_SCALE,
        "sample_every": SAMPLE_EVERY,
        "qualities": list(QUALITY_LEVELS),
        "points": points,
        "frontier_size": int(sum(flags)),
        "frontier_policies": frontier_policies,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_policy_pareto.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    lines = [
        f"{'policy':<14} {'q':>5} {'savings':>9} {'emd':>8}  frontier",
        "-" * 46,
    ]
    for point in sorted(points, key=lambda p: (-p["savings"], p["distortion_emd"])):
        lines.append(
            f"{point['label']:<14} {point['quality']:5.2f} "
            f"{point['savings']:8.1%} {point['distortion_emd']:8.2f}  "
            f"{'*' if point['pareto'] else ''}"
        )
    lines.append(f"frontier policies: {', '.join(frontier_policies)}")
    lines.append(f"json -> {json_path}")
    report("policy_pareto", lines)

    # The refactor's payoff claim, gated.
    assert len(frontier_policies) >= 3, (
        f"expected >= 3 policies on the Pareto frontier, got {frontier_policies}"
    )
    # Sanity on the axes: dimming happens and the default scheme is intact.
    assert all(0.0 <= p["savings"] <= 1.0 for p in points)
    assert max(p["savings"] for p in points) > 0.1
