"""Extension: annotation-driven CPU frequency scaling (Section 3).

The paper names frequency/voltage scaling as a second use of annotations
("applied before decoding is finished, because the annotated information
is available early").  This bench quantifies it on sub-resolution
streaming (160x120 — where the 400 MHz XScale has slack; at full QVGA the
decoder pins the fastest point and DVFS adds nothing, which the bench
also verifies).
"""

import pytest

from repro.core import AnnotationPipeline, DvfsAnnotator, SchemeParameters
from repro.player import DecoderModel, DvfsPlaybackEngine
from repro.video import make_clip

QUALITY = 0.10
SUBRES = 160 * 120


def test_ablation_dvfs(benchmark, report, device):
    decoder = DecoderModel(reference_pixels=SUBRES)
    annotator = DvfsAnnotator(decoder=decoder)
    engine = DvfsPlaybackEngine(device, decoder=decoder)
    pipeline = AnnotationPipeline(SchemeParameters(quality=QUALITY))

    lines = [f"{'clip':<16}{'backlight':>10}{'+dvfs':>8}{'combined':>10}"
             f"{'meanMHz':>9}{'late':>6}{'bytes':>7}"]
    results = {}
    for title in ("i_robot", "ice_age", "catwoman"):
        clip = make_clip(title, resolution=(96, 72), duration_scale=0.25)
        profile = pipeline.profile(clip)
        stream = pipeline.build_stream(clip, device)
        track = annotator.annotate_with_profile(clip, profile)
        result = engine.play(stream, track)
        results[title] = result
        lines.append(
            f"{title:<16}{result.backlight_only_savings:>10.1%}"
            f"{result.dvfs_extra_savings:>8.1%}{result.combined_savings:>10.1%}"
            f"{result.mean_frequency_hz / 1e6:>9.0f}{result.late_frames:>6}"
            f"{track.nbytes:>7}"
        )
    report("ablation_dvfs", lines)

    for title, result in results.items():
        # the frequency schedule keeps every deadline
        assert result.late_frames == 0, title
        # and buys measurable extra savings on top of the backlight
        assert result.dvfs_extra_savings > 0.02, title

    # DVFS helps where the backlight cannot (bright content).
    assert results["ice_age"].dvfs_extra_savings > results["ice_age"].backlight_only_savings

    # At full QVGA the decoder has no slack: DVFS pins the fastest point.
    qvga_decoder = DecoderModel(reference_pixels=320 * 240)
    clip = make_clip("i_robot", resolution=(96, 72), duration_scale=0.25)
    profile = pipeline.profile(clip)
    stream = pipeline.build_stream(clip, device)
    track = DvfsAnnotator(decoder=qvga_decoder).annotate_with_profile(clip, profile)
    qvga = DvfsPlaybackEngine(device, decoder=qvga_decoder).play(stream, track)
    assert qvga.dvfs_extra_savings == pytest.approx(0.0, abs=1e-9)

    benchmark.pedantic(
        engine.play, args=(stream, annotator.annotate_with_profile(clip, profile)),
        rounds=3, iterations=1,
    )
