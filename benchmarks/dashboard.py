"""Benchmark trend dashboard: metric trajectories from git history.

Every CI run regenerates ``benchmarks/results/BENCH_*.json`` and
``trend_check.py`` gates one-step regressions against the committed
baseline — but neither shows the *trajectory*.  This tool walks the git
history of each committed baseline file (``git log`` + ``git show``),
extracts the gated metrics (plus a few observability extras such as
time-to-first-frame and deadline-miss fraction), and renders:

* ``docs/benchmarks.md`` — a static markdown dashboard (sparkline per
  metric, first/min/max/last columns) meant to be committed alongside
  code changes;
* ``benchmarks/results/dashboard.html`` — the same data as a standalone
  HTML artifact with inline SVG trend lines, uploaded by CI.

Only the standard library and git are used.  Usage::

    python benchmarks/dashboard.py [--ref HEAD] [--max-commits 40]
        [--markdown docs/benchmarks.md] [--html results/dashboard.html]
"""

from __future__ import annotations

import argparse
import html as html_mod
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from trend_check import QUALITY_KEYS, RATE_KEYS, flatten, metric_key  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Ungated metrics worth charting alongside the gated ones.
EXTRA_KEYS = {
    "ttff_mean_s",
    "deadline_miss_fraction",
    "wire_overhead_fraction",
    "slowdown_vs_uncapped",
}

CHARTED_KEYS = QUALITY_KEYS | RATE_KEYS | EXTRA_KEYS

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", "-C", REPO_ROOT, *args], capture_output=True
    )


def baseline_commits(relpath: str, ref: str, limit: Optional[int]) -> List[str]:
    """Commits that touched ``relpath``, oldest first."""
    proc = _git("log", "--format=%H", "--reverse", ref, "--", relpath)
    if proc.returncode != 0:
        return []
    shas = [line for line in proc.stdout.decode().splitlines() if line]
    if limit is not None and limit > 0:
        shas = shas[-limit:]
    return shas


def commit_meta(sha: str) -> Tuple[str, str]:
    """``(short_sha, iso_date)`` for one commit."""
    proc = _git("show", "-s", "--format=%h %cs", sha)
    if proc.returncode != 0:
        return sha[:7], ""
    parts = proc.stdout.decode().strip().split(None, 1)
    return parts[0], parts[1] if len(parts) > 1 else ""


def file_at(relpath: str, sha: str) -> Optional[dict]:
    """The parsed JSON baseline at one commit, or None when unreadable."""
    proc = _git("show", f"{sha}:{relpath}")
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout.decode())
    except (ValueError, UnicodeDecodeError):
        return None


def charted_leaves(data: dict) -> Dict[str, float]:
    """The flattened numeric leaves whose final key is charted."""
    return {
        path: value
        for path, value in flatten(data).items()
        if metric_key(path) in CHARTED_KEYS
    }


def collect_history(relpath: str, ref: str, limit: Optional[int]):
    """Per-metric value series across the file's baseline commits.

    Returns ``(labels, series)`` where ``labels`` is one ``(short_sha,
    date)`` pair per commit and ``series`` maps each metric path to a
    list of ``Optional[float]`` aligned with ``labels`` (``None`` where
    the metric did not exist yet).
    """
    labels: List[Tuple[str, str]] = []
    snapshots: List[Dict[str, float]] = []
    for sha in baseline_commits(relpath, ref, limit):
        data = file_at(relpath, sha)
        if data is None:
            continue
        labels.append(commit_meta(sha))
        snapshots.append(charted_leaves(data))
    paths = sorted({path for snap in snapshots for path in snap})
    series = {
        path: [snap.get(path) for snap in snapshots] for path in paths
    }
    return labels, series


def sparkline(values: List[Optional[float]]) -> str:
    """A unicode block sparkline; gaps render as spaces."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(SPARK_BLOCKS[3])
        else:
            idx = int((value - lo) / span * (len(SPARK_BLOCKS) - 1))
            chars.append(SPARK_BLOCKS[idx])
    return "".join(chars)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.4g}"


def render_markdown(histories) -> str:
    """The ``docs/benchmarks.md`` dashboard text."""
    lines = [
        "# Benchmark trends",
        "",
        "Metric trajectories across the committed `BENCH_*.json` baselines",
        "(one column step per commit that touched the file, oldest to",
        "newest).  Regenerate with `python benchmarks/dashboard.py` after",
        "committing fresh baselines; CI uploads the HTML twin",
        "(`dashboard.html`) as an artifact.  The one-step regression gate",
        "lives in [trend_check.py](../benchmarks/trend_check.py).",
        "",
    ]
    for name, (labels, series) in histories:
        lines.append(f"## {name}")
        lines.append("")
        if not labels:
            lines.append("_No committed baselines yet._")
            lines.append("")
            continue
        first_sha, first_date = labels[0]
        last_sha, last_date = labels[-1]
        lines.append(
            f"{len(labels)} baseline commit(s), "
            f"`{first_sha}` ({first_date}) → `{last_sha}` ({last_date})."
        )
        lines.append("")
        lines.append("| metric | trend | first | min | max | last |")
        lines.append("|---|---|---:|---:|---:|---:|")
        for path, values in series.items():
            present = [v for v in values if v is not None]
            if not present:
                continue
            lines.append(
                f"| `{path}` | `{sparkline(values)}` "
                f"| {_fmt(present[0])} | {_fmt(min(present))} "
                f"| {_fmt(max(present))} | {_fmt(present[-1])} |"
            )
        lines.append("")
    return "\n".join(lines) + "\n"


def _svg_polyline(values: List[Optional[float]],
                  width: int = 260, height: int = 40) -> str:
    """One metric's inline SVG trend line."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if len(points) < 2:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    lo, hi = min(ys), max(ys)
    span = hi - lo
    x_span = max(xs) - min(xs)
    coords = []
    for x, y in points:
        px = 4 + (x - min(xs)) / x_span * (width - 8)
        py = (height - 6) - (
            ((y - lo) / span) if span > 0 else 0.5
        ) * (height - 12) + 3
        coords.append(f"{px:.1f},{py:.1f}")
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="#2266bb" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/></svg>'
    )


def render_html(histories) -> str:
    """The standalone HTML artifact with inline SVG trends."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Benchmark trends</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em;max-width:70em}",
        "table{border-collapse:collapse;margin-bottom:2em}",
        "td,th{border:1px solid #ccc;padding:0.3em 0.7em;"
        "font-size:0.9em;text-align:right}",
        "td:first-child,th:first-child{text-align:left;"
        "font-family:monospace}",
        "h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}",
        "</style></head><body>",
        "<h1>Benchmark trends</h1>",
        "<p>Gated metrics across the committed <code>BENCH_*.json</code> "
        "baselines, oldest commit to newest.</p>",
    ]
    for name, (labels, series) in histories:
        parts.append(f"<h2>{html_mod.escape(name)}</h2>")
        if not labels:
            parts.append("<p><em>No committed baselines yet.</em></p>")
            continue
        parts.append(
            f"<p>{len(labels)} baseline commit(s): "
            + " → ".join(
                f"<code>{html_mod.escape(sha)}</code>"
                for sha, _date in labels
            )
            + "</p>"
        )
        parts.append(
            "<table><tr><th>metric</th><th>trend</th>"
            "<th>first</th><th>min</th><th>max</th><th>last</th></tr>"
        )
        for path, values in series.items():
            present = [v for v in values if v is not None]
            if not present:
                continue
            parts.append(
                f"<tr><td>{html_mod.escape(path)}</td>"
                f"<td>{_svg_polyline(values)}</td>"
                f"<td>{_fmt(present[0])}</td><td>{_fmt(min(present))}</td>"
                f"<td>{_fmt(max(present))}</td><td>{_fmt(present[-1])}</td>"
                "</tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ref", default="HEAD",
                        help="git ref whose history is walked (default HEAD)")
    parser.add_argument("--max-commits", type=int, default=40,
                        help="newest N baseline commits per file (default 40)")
    parser.add_argument("--markdown",
                        default=os.path.join(REPO_ROOT, "docs", "benchmarks.md"),
                        help="markdown output path ('' skips)")
    parser.add_argument("--html",
                        default=os.path.join(RESULTS_DIR, "dashboard.html"),
                        help="HTML output path ('' skips)")
    args = parser.parse_args(argv)

    names = sorted(
        name for name in os.listdir(RESULTS_DIR)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not names:
        print("dashboard: no BENCH_*.json files found", file=sys.stderr)
        return 1
    histories = []
    for name in names:
        relpath = os.path.join("benchmarks", "results", name).replace(os.sep, "/")
        histories.append((name, collect_history(relpath, args.ref,
                                                args.max_commits)))

    if args.markdown:
        os.makedirs(os.path.dirname(args.markdown), exist_ok=True)
        with open(args.markdown, "w") as fh:
            fh.write(render_markdown(histories))
        print(f"dashboard markdown -> {args.markdown}")
    if args.html:
        os.makedirs(os.path.dirname(args.html), exist_ok=True)
        with open(args.html, "w") as fh:
            fh.write(render_html(histories))
        print(f"dashboard html -> {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
