"""Ablation: scene grouping vs per-frame adaptation, and the scene
threshold sweep.

Section 4.3: per-frame changes can save more "but may introduce some
flicker"; the 10 % threshold and the minimum interval "were experimentally
set for minimizing visible spikes".  This bench quantifies the trade:
power saved vs backlight switches per second.
"""

import numpy as np

from repro.core import AnnotationPipeline, SchemeParameters
from repro.video import make_clip

QUALITY = 0.10


def _run(clip, device, **kwargs):
    params = SchemeParameters(quality=QUALITY, **kwargs)
    stream = AnnotationPipeline(params).build_stream(clip, device)
    track = stream.track
    return (
        stream.predicted_backlight_savings(),
        track.switch_count() / clip.duration,
        len(track.scenes),
    )


def test_ablation_scene_grouping(benchmark, report, device):
    clip = make_clip("spiderman2", resolution=(96, 72), duration_scale=0.25)

    rows = []
    per_frame = _run(clip, device, per_frame=True)
    rows.append(("per-frame", *per_frame))
    for interval in (5, 15, 30):
        grouped = _run(clip, device, min_scene_interval_frames=interval)
        rows.append((f"scene(min={interval}f)", *grouped))
    for threshold in (0.05, 0.10, 0.25):
        grouped = _run(clip, device, scene_change_threshold=threshold,
                       min_scene_interval_frames=15)
        rows.append((f"scene(thr={threshold:.0%})", *grouped))

    lines = [f"{'variant':<18}{'savings':>9}{'switch/s':>10}{'scenes':>8}"]
    for name, savings, sps, scenes in rows:
        lines.append(f"{name:<18}{savings:>9.1%}{sps:>10.2f}{scenes:>8}")
    report("ablation_scene_grouping", lines)

    # Per-frame saves at least as much as any grouping but switches far
    # more often than the default grouping.
    default = dict((r[0], r) for r in rows)["scene(min=15f)"]
    assert per_frame[0] >= default[1] - 1e-9
    assert per_frame[1] > 4 * default[2] if default[2] > 0 else per_frame[1] > 0

    # Longer intervals can only reduce (or keep) the switch rate.
    sps = [r[2] for r in rows[1:4]]
    assert sps[0] >= sps[1] >= sps[2]

    benchmark.pedantic(
        _run, args=(clip, device), kwargs={"min_scene_interval_frames": 15},
        rounds=3, iterations=1,
    )
