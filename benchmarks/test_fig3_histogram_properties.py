"""Figure 3: image histogram properties (average point, dynamic range).

Regenerates the two summary statistics the paper's quality evaluation is
built on, for a dark and a bright frame, and benchmarks histogram
construction (the per-frame cost of the profiling pass).
"""

from repro.quality import LuminanceHistogram
from repro.video import BrightScene, DarkScene


def _frames():
    dark = DarkScene(duration=1, resolution=(96, 72), seed=3).render(0)
    bright = BrightScene(duration=1, resolution=(96, 72), seed=3).render(0)
    return dark, bright


def test_fig3_histogram_properties(benchmark, report):
    dark, bright = _frames()

    hist_dark = LuminanceHistogram.of(dark)
    hist_bright = LuminanceHistogram.of(bright)

    lines = ["frame    avg_point  dyn_range_low  dyn_range_high  width"]
    for name, hist in (("dark", hist_dark), ("bright", hist_bright)):
        low, high = hist.dynamic_range()
        lines.append(
            f"{name:<8} {hist.average_point:>9.1f} {low:>14} {high:>15} "
            f"{hist.dynamic_range_width:>6}"
        )
    report("fig3_histogram_properties", lines)

    # Shape checks: dark frames sit low with a wide highlight tail; bright
    # frames sit high with a narrow occupied band.
    assert hist_dark.average_point < 100
    assert hist_bright.average_point > 170
    assert hist_bright.dynamic_range()[0] > 100

    benchmark(LuminanceHistogram.of, dark)
