"""The evaluation clip library.

The paper evaluates on ten movie previews and short clips downloaded from
the Internet (Section 5): ``themovie``, ``catwoman``, ``hunter_subres``,
``i_robot``, ``ice_age``, ``officexp``, ``returnoftheking``, ``shrek2``,
``spiderman2`` and ``theincredibles-tlr2``.  The files themselves are not
redistributable; this module replaces them with deterministic synthetic
clips whose scene scripts reproduce the luminance structure the paper
reports:

* most titles are dominated by dark scenes with sparse highlights, where
  the technique saves up to ~65 % of backlight power;
* ``hunter_subres`` and ``ice_age`` have bright backgrounds ("pixels are
  concentrated in the high luminance range"), so savings are limited —
  ``ice_age`` shows almost no total-device improvement in Figure 10.

Scene durations below are in frames at 30 fps and can be scaled down with
``duration_scale`` for fast test runs; scaling preserves the scene mix, so
relative savings are stable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .clip import LazyClip
from .synthesis import DEFAULT_RESOLUTION, SceneSpec, ScriptedClipFactory

#: Titles in the order of the Figure 9 / Figure 10 x-axis.
PAPER_CLIP_NAMES: Tuple[str, ...] = (
    "themovie",
    "catwoman",
    "hunter_subres",
    "i_robot",
    "ice_age",
    "officexp",
    "returnoftheking",
    "shrek2",
    "spiderman2",
    "theincredibles-tlr2",
)

# Per-title scene scripts.  Tints are mild channel gains that color the
# luminance maps without changing the luminance script.
_SCRIPTS: Dict[str, List[SceneSpec]] = {
    # Generic short film: alternating dark interiors and mid-bright action.
    "themovie": [
        SceneSpec("dark", 90, {"background": 0.10, "highlight": 0.9, "n_spots": 3}),
        SceneSpec("action", 60, {"base": 0.2, "peak": 0.55}),
        SceneSpec("dark", 90, {"background": 0.08, "highlight": 0.85, "n_spots": 2}),
        SceneSpec("fade", 30, {"start_level": 0.08, "end_level": 0.4}),
        SceneSpec("dark", 90, {"background": 0.12, "highlight": 0.95, "n_spots": 4}),
    ],
    # Night-time action: very dark, occasional flashes.
    "catwoman": [
        SceneSpec("dark", 120, {"background": 0.06, "highlight": 0.85, "n_spots": 2},
                  tint=(0.8, 0.8, 1.2)),
        SceneSpec("flash", 80, {"background": 0.1, "flash_every": 40, "flash_len": 2}),
        SceneSpec("dark", 100, {"background": 0.07, "highlight": 0.8, "n_spots": 3},
                  tint=(0.8, 0.8, 1.2)),
        SceneSpec("credits", 60, {"background": 0.02, "text_luminance": 0.85}),
    ],
    # Bright outdoor hunting footage: limited headroom.
    "hunter_subres": [
        SceneSpec("bright", 100, {"background": 0.78, "variation": 0.12},
                  tint=(1.1, 1.05, 0.8)),
        SceneSpec("action", 80, {"base": 0.5, "peak": 0.95, "jitter": 0.02},
                  tint=(1.1, 1.05, 0.8)),
        SceneSpec("bright", 120, {"background": 0.82, "variation": 0.1},
                  tint=(1.1, 1.05, 0.8)),
    ],
    # Sci-fi: dark labs and corridors with specular highlights.
    "i_robot": [
        SceneSpec("dark", 100, {"background": 0.12, "highlight": 0.95, "n_spots": 5},
                  tint=(0.9, 0.95, 1.15)),
        SceneSpec("gradient", 50, {"low": 0.05, "high": 0.6}),
        SceneSpec("dark", 110, {"background": 0.1, "highlight": 0.9, "n_spots": 3},
                  tint=(0.9, 0.95, 1.15)),
        SceneSpec("action", 60, {"base": 0.25, "peak": 0.7}),
    ],
    # Snowscapes: almost everything near white — the paper's worst case.
    "ice_age": [
        SceneSpec("bright", 140, {"background": 0.88, "variation": 0.08},
                  tint=(0.95, 1.0, 1.1)),
        SceneSpec("bright", 100, {"background": 0.85, "variation": 0.1},
                  tint=(0.95, 1.0, 1.1)),
        SceneSpec("action", 60, {"base": 0.6, "peak": 0.97, "jitter": 0.01}),
        SceneSpec("bright", 60, {"background": 0.9, "variation": 0.06},
                  tint=(0.95, 1.0, 1.1)),
    ],
    # Product ad: dark studio shots cut with mid-bright UI screens.
    "officexp": [
        SceneSpec("dark", 70, {"background": 0.12, "highlight": 0.8, "n_spots": 2}),
        SceneSpec("gradient", 50, {"low": 0.2, "high": 0.75}),
        SceneSpec("dark", 70, {"background": 0.15, "highlight": 0.85, "n_spots": 3}),
        SceneSpec("action", 50, {"base": 0.3, "peak": 0.65}),
        SceneSpec("dark", 60, {"background": 0.1, "highlight": 0.75, "n_spots": 2}),
    ],
    # Epic fantasy: long dark battle scenes, torch-lit highlights.
    "returnoftheking": [
        SceneSpec("dark", 130, {"background": 0.08, "highlight": 0.9, "n_spots": 4},
                  tint=(1.15, 0.95, 0.8)),
        SceneSpec("flash", 60, {"background": 0.12, "flash_every": 30, "flash_len": 2}),
        SceneSpec("dark", 110, {"background": 0.1, "highlight": 0.85, "n_spots": 3},
                  tint=(1.15, 0.95, 0.8)),
        SceneSpec("fade", 40, {"start_level": 0.3, "end_level": 0.05}),
    ],
    # Animated comedy: mid-bright with dark swamp interiors.
    "shrek2": [
        SceneSpec("action", 80, {"base": 0.35, "peak": 0.8, "jitter": 0.03},
                  tint=(0.9, 1.15, 0.85)),
        SceneSpec("dark", 90, {"background": 0.15, "highlight": 0.85, "n_spots": 3},
                  tint=(0.9, 1.15, 0.85)),
        SceneSpec("action", 70, {"base": 0.3, "peak": 0.7},
                  tint=(0.9, 1.15, 0.85)),
        SceneSpec("dark", 60, {"background": 0.12, "highlight": 0.8, "n_spots": 2}),
    ],
    # Night-time superhero action.
    "spiderman2": [
        SceneSpec("dark", 110, {"background": 0.09, "highlight": 0.92, "n_spots": 4},
                  tint=(1.2, 0.85, 0.9)),
        SceneSpec("action", 60, {"base": 0.2, "peak": 0.6}),
        SceneSpec("dark", 100, {"background": 0.07, "highlight": 0.88, "n_spots": 3},
                  tint=(1.2, 0.85, 0.9)),
        SceneSpec("flash", 50, {"background": 0.1, "flash_every": 25, "flash_len": 2}),
    ],
    # Animated trailer: alternating dark and mid scenes, end credits.
    "theincredibles-tlr2": [
        SceneSpec("dark", 90, {"background": 0.11, "highlight": 0.9, "n_spots": 3},
                  tint=(1.15, 0.9, 0.85)),
        SceneSpec("action", 70, {"base": 0.28, "peak": 0.72},
                  tint=(1.15, 0.9, 0.85)),
        SceneSpec("dark", 80, {"background": 0.09, "highlight": 0.85, "n_spots": 2},
                  tint=(1.15, 0.9, 0.85)),
        SceneSpec("credits", 60, {"background": 0.02, "text_luminance": 0.9}),
    ],
}

#: Extended titles beyond the paper's ten: workloads that stress the
#: generators the trailers under-use (strobes, credits-heavy cuts, long
#: fades) plus a letterboxed widescreen title (the natural ROI workload).
EXTENDED_CLIP_NAMES: Tuple[str, ...] = (
    "sports_highlights",
    "concert_strobe",
    "noir_documentary",
    "widescreen_letterbox",
)

_EXTENDED_SCRIPTS: Dict[str, List[SceneSpec]] = {
    # Daylight stadium cuts with replays: bright, fast, low headroom.
    "sports_highlights": [
        SceneSpec("bright", 80, {"background": 0.75, "variation": 0.15},
                  tint=(0.95, 1.1, 0.9)),
        SceneSpec("action", 70, {"base": 0.45, "peak": 0.9, "jitter": 0.03}),
        SceneSpec("bright", 60, {"background": 0.7, "variation": 0.18},
                  tint=(0.95, 1.1, 0.9)),
        SceneSpec("action", 60, {"base": 0.5, "peak": 0.95, "jitter": 0.02}),
    ],
    # Dark stage with strobe lighting: the flicker-guard stress test.
    "concert_strobe": [
        SceneSpec("flash", 100, {"background": 0.08, "flash_every": 20,
                                 "flash_len": 2}, tint=(1.1, 0.85, 1.1)),
        SceneSpec("dark", 80, {"background": 0.1, "highlight": 0.8, "n_spots": 6},
                  tint=(1.1, 0.85, 1.1)),
        SceneSpec("flash", 80, {"background": 0.12, "flash_every": 15,
                                "flash_len": 1}, tint=(1.1, 0.85, 1.1)),
    ],
    # Slow, moody interviews: long fades and near-static dark scenes.
    "noir_documentary": [
        SceneSpec("dark", 120, {"background": 0.14, "highlight": 0.65,
                                "n_spots": 2, "drift": 0.02}),
        SceneSpec("fade", 50, {"start_level": 0.14, "end_level": 0.5}),
        SceneSpec("dark", 100, {"background": 0.16, "highlight": 0.6,
                                "n_spots": 2, "drift": 0.02}),
        SceneSpec("fade", 40, {"start_level": 0.5, "end_level": 0.1}),
        SceneSpec("credits", 70, {"background": 0.02, "text_luminance": 0.8}),
    ],
    # 2.35:1 feature on a 4:3 panel: black bars frame every scene.
    "widescreen_letterbox": [
        SceneSpec("dark", 90, {"background": 0.15, "highlight": 0.85, "n_spots": 3}),
        SceneSpec("action", 70, {"base": 0.3, "peak": 0.75}),
        SceneSpec("dark", 90, {"background": 0.12, "highlight": 0.8, "n_spots": 2}),
    ],
}

#: Letterbox bar fraction per extended title (0 = none).
_LETTERBOX: Dict[str, float] = {"widescreen_letterbox": 0.15}

#: Stable per-title seeds so two processes build identical libraries.
_SEEDS: Dict[str, int] = {
    name: 101 + i
    for i, name in enumerate(PAPER_CLIP_NAMES + EXTENDED_CLIP_NAMES)
}


def clip_script(name: str) -> List[SceneSpec]:
    """Return (a copy of) the scene script for a library title."""
    script = _SCRIPTS.get(name) or _EXTENDED_SCRIPTS.get(name)
    if script is None:
        known = ", ".join(PAPER_CLIP_NAMES + EXTENDED_CLIP_NAMES)
        raise KeyError(f"unknown clip {name!r}; known titles: {known}")
    return list(script)


def make_clip(
    name: str,
    resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
    fps: float = 30.0,
    duration_scale: float = 1.0,
) -> LazyClip:
    """Build one library title as a lazy clip.

    Parameters
    ----------
    name:
        One of :data:`PAPER_CLIP_NAMES`.
    resolution:
        Frame size ``(width, height)``.
    fps:
        Playback rate.
    duration_scale:
        Multiplier on every scene duration (use < 1 for fast tests).  Scene
        durations are floored at 4 frames so the scene mix survives scaling.
    """
    if duration_scale <= 0:
        raise ValueError(f"duration_scale must be positive, got {duration_scale}")
    script = clip_script(name)
    if duration_scale != 1.0:
        script = [
            SceneSpec(
                spec.kind,
                max(4, int(math.ceil(spec.duration * duration_scale))),
                dict(spec.params),
                spec.tint,
            )
            for spec in script
        ]
    factory = ScriptedClipFactory(
        script, resolution=resolution, seed=_SEEDS[name],
        letterbox_fraction=_LETTERBOX.get(name, 0.0),
    )
    return LazyClip(
        factory,
        frame_count=factory.frame_count,
        fps=fps,
        name=name,
        resolution=resolution,
    )


def paper_library(
    resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
    fps: float = 30.0,
    duration_scale: float = 1.0,
    names: Sequence[str] = PAPER_CLIP_NAMES,
) -> List[LazyClip]:
    """Build the full ten-title library (Figure 9 / Figure 10 workload)."""
    return [
        make_clip(name, resolution=resolution, fps=fps, duration_scale=duration_scale)
        for name in names
    ]
