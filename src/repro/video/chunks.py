"""Frame-plane chunks: the batched substrate of the execution engine.

The per-frame API (:class:`~repro.video.frame.Frame`) is convenient but
slow at scale: every consumer that walks a clip frame by frame pays numpy
dispatch overhead per frame and materializes a fresh float64 luminance
plane per frame.  A :class:`FrameChunk` instead carries ``(N, H, W, 3)``
uint8 batches through the pipeline, so the luminance and peak-channel
math runs once per *chunk* with vectorized operations.

Bit-exactness contract
----------------------
Every derived quantity on a chunk is computed with the *same elementwise
floating-point operations, in the same order*, as the per-frame path in
:mod:`repro.video.frame` — numpy ufuncs are elementwise, so reshaping the
work from ``(H, W)`` to ``(N, H, W)`` cannot change a single bit.  The
luminance tables below encode ``coeff * (code / MAX_CHANNEL)`` per 8-bit
code, which is exactly what ``rgb_to_luminance`` computes per pixel.

:class:`PlaneCache` is the companion piece: a byte-bounded LRU of derived
per-frame planes, attached to a clip so that luminance/peak-channel maps
are computed once per frame no matter how many consumers (profiling,
compensation metrics, quality evaluation) touch the clip.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..telemetry import registry as telemetry_registry
from .frame import Frame, LUMA_COEFFS, MAX_CHANNEL

_PLANE_CACHE_SEQ = itertools.count(1)

#: Default number of frames per chunk.  At QVGA-class resolutions a chunk
#: of 64 frames keeps the float64 working set a few megabytes — large
#: enough to amortize numpy dispatch, small enough to stay cache-friendly.
DEFAULT_CHUNK_SIZE = 64

#: Byte budget the chunk-size autotuner aims a chunk's float64 working set
#: at.  The dominant transient is the ``(N, H, W, 3)`` float64 scratch of
#: batched compensation (24 bytes per pixel); 24 MiB keeps that scratch
#: comfortably inside a desktop L3 / small-container RSS while still
#: amortizing numpy dispatch over hundreds of frames at QVGA sizes.
DEFAULT_CHUNK_TARGET_BYTES = 24 << 20

#: Bounds for the autotuned chunk span.  Below 8 frames per chunk the
#: per-chunk numpy dispatch overhead dominates again; above 256 the
#: working set stops fitting caches without buying more amortization.
MIN_AUTOTUNE_CHUNK = 8
MAX_AUTOTUNE_CHUNK = 256

#: Default byte budget of a clip's :class:`PlaneCache` (per plane kind the
#: effective budget is shared; 32 MiB holds ~580 planes at 96x72).
DEFAULT_PLANE_CACHE_BYTES = 32 << 20


class HeterogeneousFrameError(ValueError):
    """Raised when a chunk would mix frames of different resolutions.

    The batched engine requires a uniform ``(H, W)`` within a chunk;
    callers catch this to fall back to the per-frame path.
    """


# ---------------------------------------------------------------------------
# Luminance lookup tables
# ---------------------------------------------------------------------------
# _LUM_TABLES[c][code] == LUMA_COEFFS[c] * (code / MAX_CHANNEL), computed
# with the exact operations of rgb_to_luminance, so gathering through the
# tables is bit-identical to the per-frame float math.
_CODES = np.arange(MAX_CHANNEL + 1, dtype=np.float64) / MAX_CHANNEL
_LUM_TABLES: Tuple[np.ndarray, np.ndarray, np.ndarray] = (
    LUMA_COEFFS[0] * _CODES,
    LUMA_COEFFS[1] * _CODES,
    LUMA_COEFFS[2] * _CODES,
)

# The largest luminance any uint8 pixel can reach.  Proves that skipping
# the defensive np.clip before quantization cannot change a code: codes
# only diverge once the sum exceeds ~1.002 (rounding to 256), far above
# any float error on a <= 1.0 sum.
_MAX_LUM_SUM = float(_LUM_TABLES[0][-1] + _LUM_TABLES[1][-1] + _LUM_TABLES[2][-1])
assert _MAX_LUM_SUM < 1.0 + 1e-9, _MAX_LUM_SUM


def autotune_chunk_size(
    height: int, width: int, target_bytes: int = DEFAULT_CHUNK_TARGET_BYTES
) -> int:
    """Pick a chunk span from frame geometry instead of a fixed constant.

    Sizes the chunk so the batched float64 working set (24 bytes per RGB
    pixel: the compensation scratch, the largest transient on the hot
    path) stays near ``target_bytes``.  Small frames get long chunks
    (more amortization), large frames get short ones (bounded memory);
    the result is clamped to ``[MIN_AUTOTUNE_CHUNK, MAX_AUTOTUNE_CHUNK]``.
    """
    if height < 1 or width < 1:
        raise ValueError(f"frame geometry must be positive, got {height}x{width}")
    if target_bytes < 1:
        raise ValueError(f"target_bytes must be positive, got {target_bytes}")
    per_frame = height * width * 3 * 8  # float64 RGB scratch per frame
    n = max(1, target_bytes // per_frame)
    return int(min(MAX_AUTOTUNE_CHUNK, max(MIN_AUTOTUNE_CHUNK, n)))


def chunk_spans(
    frame_count: int, chunk_size: int, lead: Optional[int] = None,
    start: int = 0,
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` index spans covering ``[start, frame_count)``.

    The last span carries the remainder; ``chunk_size > frame_count``
    degenerates to a single span.  A positive ``lead`` shrinks only the
    *first* span to ``min(lead, remaining)`` frames — streaming callers
    use this to get the opening frames onto the wire before the first
    full-size chunk finishes compensating.  A positive ``start`` begins
    the spans mid-clip (mid-stream adaptation resumes emission at a
    scene boundary without re-walking the prefix).  Compensation is
    elementwise per frame, so re-slicing the span boundaries never
    changes any frame's bytes.
    """
    if frame_count < 0:
        raise ValueError(f"frame_count must be non-negative, got {frame_count}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not 0 <= start <= frame_count:
        raise ValueError(
            f"start must be in [0, {frame_count}], got {start}"
        )
    first = start
    if lead is not None:
        if lead < 1:
            raise ValueError(f"lead must be >= 1, got {lead}")
        first = min(start + int(lead), frame_count)
        if first > start:
            yield start, first
    for begin in range(first, frame_count, chunk_size):
        yield begin, min(begin + chunk_size, frame_count)


class FrameChunk:
    """A batch of ``N`` consecutive frames as one ``(N, H, W, 3)`` array.

    Parameters
    ----------
    pixels:
        ``(N, H, W, 3)`` uint8 batch.  Views are used as-is (no copy), so
        array-backed clips can hand out chunks for free.
    start:
        Global index of the first frame in the batch.
    """

    __slots__ = ("pixels", "start", "_luminance", "_peak_u8", "_peak_channel")

    def __init__(self, pixels: np.ndarray, start: int = 0):
        arr = np.asarray(pixels)
        if arr.ndim != 4 or arr.shape[3] != 3:
            raise ValueError(f"chunk pixels must be (N, H, W, 3), got {arr.shape}")
        if arr.dtype != np.uint8:
            raise ValueError(f"chunk pixels must be uint8, got {arr.dtype}")
        if arr.shape[0] == 0:
            raise ValueError("a chunk must contain at least one frame")
        self.pixels = arr
        self.start = int(start)
        self._luminance: Optional[np.ndarray] = None
        self._peak_u8: Optional[np.ndarray] = None
        self._peak_channel: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_frames(cls, frames: List[Frame], start: int = 0) -> "FrameChunk":
        """Stack per-frame pixel arrays into one chunk.

        Raises :class:`HeterogeneousFrameError` when the frames do not
        share a resolution (the batched engine cannot represent them).
        """
        if not frames:
            raise ValueError("cannot build a chunk from zero frames")
        shape = frames[0].pixels.shape
        if any(f.pixels.shape != shape for f in frames):
            raise HeterogeneousFrameError(
                f"frames mix resolutions within one chunk (first is {shape})"
            )
        return cls(np.stack([f.pixels for f in frames]), start=start)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.pixels.shape[0]

    @property
    def stop(self) -> int:
        """Global index one past the last frame in the chunk."""
        return self.start + len(self)

    @property
    def indices(self) -> range:
        """Global frame indices covered by the chunk."""
        return range(self.start, self.stop)

    @property
    def frame_shape(self) -> Tuple[int, int]:
        """``(height, width)`` of every frame in the chunk."""
        return (self.pixels.shape[1], self.pixels.shape[2])

    # ------------------------------------------------------------------
    # Derived planes (vectorized, bit-identical to the per-frame math)
    # ------------------------------------------------------------------
    def _lum_f64(self) -> np.ndarray:
        # Gather per-channel contributions through the tables; np.take is
        # markedly faster than fancy indexing on the strided channel views.
        lum = np.take(_LUM_TABLES[0], self.pixels[..., 0])
        lum += np.take(_LUM_TABLES[1], self.pixels[..., 1])
        lum += np.take(_LUM_TABLES[2], self.pixels[..., 2])
        return lum

    @property
    def luminance(self) -> np.ndarray:
        """Normalized BT.601 luminance, ``(N, H, W)`` float64 (cached)."""
        if self._luminance is None:
            self._luminance = self._lum_f64()
        return self._luminance

    def luminance_codes(self) -> np.ndarray:
        """Per-pixel 8-bit luma codes, ``(N, H, W)`` int32.

        Identical to quantizing :attr:`luminance` with the histogram
        layer's ``round(clip(y, 0, 1) * 255)`` — the clip is skipped
        because the import-time guard above proves it is a no-op.
        """
        if self._luminance is not None:
            work = self._luminance * float(MAX_CHANNEL)
        else:
            work = self._lum_f64()
            work *= float(MAX_CHANNEL)
        np.rint(work, out=work)
        return work.astype(np.int32)

    @property
    def peak_channel_u8(self) -> np.ndarray:
        """Per-pixel max of R, G, B as raw uint8 codes, ``(N, H, W)``."""
        if self._peak_u8 is None:
            # Chained np.maximum is ~30x faster than max(axis=-1) here.
            self._peak_u8 = np.maximum(
                np.maximum(self.pixels[..., 0], self.pixels[..., 1]),
                self.pixels[..., 2],
            )
        return self._peak_u8

    @property
    def peak_channel(self) -> np.ndarray:
        """Normalized peak-channel plane, ``(N, H, W)`` float64 (cached)."""
        if self._peak_channel is None:
            self._peak_channel = (
                self.peak_channel_u8.astype(np.float64) / MAX_CHANNEL
            )
        return self._peak_channel

    # ------------------------------------------------------------------
    def frame(self, offset: int) -> Frame:
        """Materialize frame ``offset`` (chunk-local) as a :class:`Frame`.

        Derived planes already computed for the chunk are injected into
        the frame's own cache, so downstream per-frame consumers do not
        recompute them.
        """
        if not 0 <= offset < len(self):
            raise IndexError(f"chunk offset {offset} out of range [0, {len(self)})")
        frame = Frame(self.pixels[offset], index=self.start + offset)
        if self._luminance is not None:
            frame._luminance = self._luminance[offset]
        if self._peak_channel is not None:
            frame._peak_channel = self._peak_channel[offset]
        return frame

    def frames(self) -> List[Frame]:
        """Materialize every frame in the chunk."""
        return [self.frame(k) for k in range(len(self))]

    def __repr__(self) -> str:
        h, w = self.frame_shape
        return f"FrameChunk(frames=[{self.start}:{self.stop}), {w}x{h})"


class PlaneCache:
    """Byte-bounded LRU cache of derived per-frame planes.

    Keys are ``(frame_index, kind)`` pairs (``kind`` is ``"lum"`` or
    ``"peak"``); values are standalone float64 planes.  A clip owns one
    cache so that a plane is computed once per frame even when several
    consumers (profiling, clipped-fraction metrics, quality evaluation)
    each walk the clip.

    Parameters
    ----------
    max_bytes:
        Total plane bytes retained; least-recently-used planes are
        evicted first.  ``0`` disables retention entirely.
    """

    def __init__(self, max_bytes: int = DEFAULT_PLANE_CACHE_BYTES):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._planes: "OrderedDict[Tuple[int, str], np.ndarray]" = OrderedDict()
        self._nbytes = 0
        # Per-instance telemetry series: a unique cache label keeps fresh
        # instances at zero while the shared registry aggregates them all.
        reg = telemetry_registry()
        labels = {"cache": f"plane-{next(_PLANE_CACHE_SEQ)}"}
        self._hit_counter = reg.counter(
            "repro_cache_hits_total", help="Cache lookups served from the cache.",
            labels=labels,
        )
        self._miss_counter = reg.counter(
            "repro_cache_misses_total", help="Cache lookups that missed.",
            labels=labels,
        )
        self._eviction_counter = reg.counter(
            "repro_cache_evictions_total", help="Entries evicted to respect the bound.",
            labels=labels,
        )
        self._bytes_gauge = reg.gauge(
            "repro_cache_bytes", help="Plane bytes currently retained.", labels=labels,
        )

    def _ensure_registered(self) -> None:
        """Re-attach this cache's series after a registry reset.

        Long-lived caches outlive test-isolation resets; idempotent
        re-registration keeps their series visible in snapshots.
        """
        reg = telemetry_registry()
        for metric in (self._hit_counter, self._miss_counter,
                       self._eviction_counter, self._bytes_gauge):
            reg.register(metric)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._planes)

    @property
    def nbytes(self) -> int:
        """Bytes currently retained."""
        return self._nbytes

    @property
    def hits(self) -> int:
        """Lookups served from the cache (reads the telemetry counter)."""
        return self._hit_counter.value

    @property
    def misses(self) -> int:
        """Lookups that missed (reads the telemetry counter)."""
        return self._miss_counter.value

    @property
    def evictions(self) -> int:
        """Planes evicted to respect ``max_bytes``."""
        return self._eviction_counter.value

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """One-call summary of the cache's telemetry series."""
        return {
            "planes": len(self),
            "bytes": self._nbytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }

    def get(self, index: int, kind: str) -> Optional[np.ndarray]:
        """Return the cached plane for ``(index, kind)``, or ``None``."""
        self._ensure_registered()
        key = (index, kind)
        plane = self._planes.get(key)
        if plane is None:
            self._miss_counter.inc()
            return None
        self._planes.move_to_end(key)
        self._hit_counter.inc()
        return plane

    def put(self, index: int, kind: str, plane: np.ndarray) -> None:
        """Retain a plane, evicting least-recently-used entries to fit."""
        if self.max_bytes == 0 or plane.nbytes > self.max_bytes:
            return
        key = (index, kind)
        old = self._planes.pop(key, None)
        if old is not None:
            self._nbytes -= old.nbytes
        self._planes[key] = plane
        self._nbytes += plane.nbytes
        while self._nbytes > self.max_bytes:
            _, evicted = self._planes.popitem(last=False)
            self._nbytes -= evicted.nbytes
            self._eviction_counter.inc()
        self._bytes_gauge.set(self._nbytes)

    def clear(self) -> None:
        """Drop every cached plane (counters are kept)."""
        self._planes.clear()
        self._nbytes = 0
        self._bytes_gauge.set(0)

    def __repr__(self) -> str:
        return (
            f"PlaneCache(planes={len(self)}, {self._nbytes / 1024:.0f} KiB, "
            f"hits={self.hits}, misses={self.misses})"
        )
