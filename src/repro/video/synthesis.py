"""Synthetic scene generators.

The paper evaluates on movie trailers downloaded from the Internet (Section
5).  Those MPEG files are not redistributable, and the technique consumes
nothing but per-pixel luminance statistics — so the clip library synthesizes
deterministic scenes whose luminance structure matches the paper's
description of its workloads: dark scenes where "the highlights are
concentrated in a few points or spots", bright outdoor backgrounds, fades,
scrolling end credits, and textured motion.

Every generator is deterministic given its seed: static assets (textures,
spot positions) are drawn once at construction and motion is a pure function
of the frame index, so :class:`~repro.video.clip.LazyClip` re-reads agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .frame import Frame

#: Default synthesis resolution (width, height).  Kept small so that a ten
#: title library sweeps in seconds; the algorithms are resolution-agnostic.
DEFAULT_RESOLUTION: Tuple[int, int] = (96, 72)


def _tint(luminance: np.ndarray, tint: Tuple[float, float, float]) -> Frame:
    """Colorize a luminance map with per-channel gains, preserving max Y.

    The gains are normalized so that the BT.601-weighted sum of the channel
    gains is 1: a pixel with luminance ``y`` keeps luminance ``y`` after
    tinting (up to uint8 rounding), which keeps scene luminance scripts
    honest.
    """
    r, g, b = tint
    norm = 0.299 * r + 0.587 * g + 0.114 * b
    if norm <= 0:
        raise ValueError(f"tint {tint} has non-positive luminance weight")
    gains = np.array([r, g, b]) / norm
    # Avoid channel overflow: scale down so the largest gain maps 1.0 -> 1.0.
    peak = gains.max()
    if peak > 1.0:
        gains = gains / peak
    lum = np.clip(luminance, 0.0, 1.0)
    rgb = lum[..., None] * gains[None, None, :]
    return Frame(rgb)


class SceneGenerator:
    """Base class: renders frames of one scene.

    Subclasses implement :meth:`luminance_map` returning a normalized
    ``(H, W)`` luminance array for local frame ``i``.
    """

    def __init__(
        self,
        duration: int,
        resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
        tint: Tuple[float, float, float] = (1.0, 1.0, 1.0),
        seed: int = 0,
    ):
        if duration <= 0:
            raise ValueError(f"scene duration must be positive, got {duration}")
        self.duration = int(duration)
        self.width, self.height = resolution
        self.tint = tint
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._grid = np.meshgrid(
            np.linspace(0.0, 1.0, self.width),
            np.linspace(0.0, 1.0, self.height),
        )

    # -- subclass hook --------------------------------------------------
    def luminance_map(self, i: int) -> np.ndarray:
        """Normalized (H, W) luminance of local frame ``i``."""
        raise NotImplementedError

    # -- public API -----------------------------------------------------
    def render(self, i: int) -> Frame:
        """Render local frame ``i`` (0-based within the scene)."""
        if not 0 <= i < self.duration:
            raise IndexError(f"scene frame {i} out of range [0, {self.duration})")
        return _tint(self.luminance_map(i), self.tint)


class DarkScene(SceneGenerator):
    """A dark scene with a few bright, sparse highlights.

    This is the workload the technique wins on: the maximum luminance is set
    by a handful of spot pixels, so clipping even a tiny fraction of pixels
    collapses the effective dynamic range and lets the backlight dim deeply.

    Parameters
    ----------
    background:
        Luminance of the dark body of the image.
    highlight:
        Peak luminance of the bright spots.
    n_spots:
        Number of highlight blobs.
    spot_sigma:
        Gaussian radius of each blob (in normalized image units).
    drift:
        How far spots wander over the scene (normalized units).
    """

    def __init__(
        self,
        duration: int,
        background: float = 0.18,
        highlight: float = 0.92,
        n_spots: int = 4,
        spot_sigma: float = 0.07,
        glow_level: float = 0.42,
        glow_sigma: float = 0.22,
        drift: float = 0.1,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.background = background
        self.highlight = highlight
        self.spot_sigma = spot_sigma
        self.glow_level = glow_level
        self.glow_sigma = glow_sigma
        self.drift = drift
        self.centers = self.rng.uniform(0.15, 0.85, size=(n_spots, 2))
        self.velocities = self.rng.uniform(-1.0, 1.0, size=(n_spots, 2))
        self.glow_center = self.rng.uniform(0.3, 0.7, size=2)
        # Static low-contrast texture so the dark body is not a flat field.
        self.texture = self.rng.uniform(-0.04, 0.04, size=(self.height, self.width))

    def luminance_map(self, i: int) -> np.ndarray:
        xs, ys = self._grid
        lum = np.full((self.height, self.width), self.background)
        lum += self.texture
        phase = i / max(self.duration - 1, 1)
        # A broad dim glow fills the mid-tones (street light, moonlit fog):
        # its gradual falloff is what makes the luminance quantiles drop
        # smoothly as the clipping budget grows.
        gx, gy = self.glow_center
        gd2 = (xs - gx) ** 2 + (ys - gy) ** 2
        lum += (self.glow_level - self.background) * np.exp(
            -gd2 / (2 * self.glow_sigma**2)
        )
        for center, vel in zip(self.centers, self.velocities):
            cx = center[0] + self.drift * vel[0] * math.sin(2 * math.pi * phase)
            cy = center[1] + self.drift * vel[1] * math.cos(2 * math.pi * phase)
            d2 = (xs - cx) ** 2 + (ys - cy) ** 2
            lum += (self.highlight - self.background) * np.exp(-d2 / (2 * self.spot_sigma**2))
        return np.clip(lum, 0.0, self.highlight)


class BrightScene(SceneGenerator):
    """A bright scene (snow field, daylight, white UI) — the adverse case.

    Pixels are concentrated in the high-luminance range, so clipping a small
    percentage barely lowers the effective maximum and the backlight cannot
    dim without visible degradation (the paper's ``ice_age`` and
    ``hunter_subres`` behaviour).
    """

    def __init__(
        self,
        duration: int,
        background: float = 0.85,
        variation: float = 0.1,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.background = background
        self.variation = variation
        self.texture = self.rng.uniform(-1.0, 1.0, size=(self.height, self.width))

    def luminance_map(self, i: int) -> np.ndarray:
        phase = i / max(self.duration - 1, 1)
        shimmer = 0.5 * self.variation * math.sin(2 * math.pi * 2 * phase)
        lum = self.background + self.variation * self.texture + shimmer
        return np.clip(lum, 0.0, 1.0)


class GradientScene(SceneGenerator):
    """A slowly panning luminance ramp between two levels."""

    def __init__(
        self,
        duration: int,
        low: float = 0.05,
        high: float = 0.7,
        horizontal: bool = True,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.low = low
        self.high = high
        self.horizontal = horizontal

    def luminance_map(self, i: int) -> np.ndarray:
        xs, ys = self._grid
        ramp = xs if self.horizontal else ys
        phase = i / max(self.duration - 1, 1)
        shifted = np.mod(ramp + 0.25 * phase, 1.0)
        return self.low + (self.high - self.low) * shifted


class FadeScene(SceneGenerator):
    """A fade between two luminance levels (scene transition material).

    Fades stress the scene detector: max luminance moves continuously, so
    the 10 % change threshold fires repeatedly and the rate limiter must
    suppress flicker.
    """

    def __init__(
        self,
        duration: int,
        start_level: float = 0.05,
        end_level: float = 0.8,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.start_level = start_level
        self.end_level = end_level
        self.texture = self.rng.uniform(-0.02, 0.02, size=(self.height, self.width))

    def luminance_map(self, i: int) -> np.ndarray:
        phase = i / max(self.duration - 1, 1)
        level = self.start_level + (self.end_level - self.start_level) * phase
        return np.clip(level + self.texture, 0.0, 1.0)


class CreditsScene(SceneGenerator):
    """Scrolling end credits: bright text rows on a uniform dark background.

    The paper singles credits out as the failure mode of the fixed-percent
    clipping heuristic ("it may distort the text if too many pixels are
    clipped and the background is uniform") — text pixels are numerous enough
    that the clip budget eats into them.
    """

    def __init__(
        self,
        duration: int,
        background: float = 0.02,
        text_luminance: float = 0.9,
        row_height: int = 3,
        row_gap: int = 5,
        text_fill: float = 0.6,
        scroll_rows_per_frame: float = 0.25,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.background = background
        self.text_luminance = text_luminance
        self.scroll = scroll_rows_per_frame
        period = row_height + row_gap
        # Pre-render one tall page of "text" and scroll a window over it.
        page_height = self.height + int(math.ceil(duration * scroll_rows_per_frame)) + period
        page = np.full((page_height, self.width), background)
        for top in range(0, page_height - row_height, period):
            mask = self.rng.random(self.width) < text_fill
            for dy in range(row_height):
                page[top + dy, mask] = text_luminance
        self.page = page

    def luminance_map(self, i: int) -> np.ndarray:
        offset = int(i * self.scroll)
        return self.page[offset : offset + self.height, :].copy()


class ActionScene(SceneGenerator):
    """Textured motion with bounded max-luminance jitter.

    Simulates mid-brightness action footage: a band-limited texture advected
    horizontally, with the peak luminance jittering frame-to-frame inside
    ``jitter`` — small enough not to trip the 10 % scene threshold unless
    asked to.
    """

    def __init__(
        self,
        duration: int,
        base: float = 0.3,
        peak: float = 0.75,
        jitter: float = 0.04,
        speed: float = 2.0,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.base = base
        self.peak = peak
        self.jitter = jitter
        self.speed = speed
        # Band-limited texture built from a few random sinusoids.
        xs, ys = self._grid
        texture = np.zeros((self.height, self.width))
        for _ in range(6):
            fx = self.rng.uniform(1.0, 6.0)
            fy = self.rng.uniform(1.0, 6.0)
            ph = self.rng.uniform(0, 2 * math.pi)
            texture += np.sin(2 * math.pi * (fx * xs + fy * ys) + ph)
        texture -= texture.min()
        texture /= texture.max()
        self.texture = texture
        self.jitter_seq = self.rng.uniform(-1.0, 1.0, size=duration)

    def luminance_map(self, i: int) -> np.ndarray:
        shift = int(i * self.speed) % self.width
        moved = np.roll(self.texture, shift, axis=1)
        peak = self.peak + self.jitter * self.jitter_seq[i]
        peak = min(max(peak, self.base + 0.05), 1.0)
        return self.base + (peak - self.base) * moved


class FlashScene(SceneGenerator):
    """A dark scene punctuated by brief full-screen flashes (explosions).

    Flash frames spike the max luminance to ~1.0 for ``flash_len`` frames;
    scene-grouped backlight control must either split a scene or accept
    clipping, which makes this the stress input for threshold ablations.
    """

    def __init__(
        self,
        duration: int,
        background: float = 0.15,
        flash_level: float = 0.98,
        flash_every: int = 40,
        flash_len: int = 2,
        **kwargs,
    ):
        super().__init__(duration, **kwargs)
        self.background = background
        self.flash_level = flash_level
        self.flash_every = flash_every
        self.flash_len = flash_len
        self.texture = self.rng.uniform(-0.04, 0.04, size=(self.height, self.width))

    def luminance_map(self, i: int) -> np.ndarray:
        in_flash = self.flash_every > 0 and (i % self.flash_every) < self.flash_len
        level = self.flash_level if in_flash else self.background
        return np.clip(level + self.texture, 0.0, 1.0)


@dataclass
class SceneSpec:
    """Declarative description of one scene inside a scripted clip."""

    kind: str
    duration: int
    params: dict = field(default_factory=dict)
    tint: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    GENERATORS = {
        "dark": DarkScene,
        "bright": BrightScene,
        "gradient": GradientScene,
        "fade": FadeScene,
        "credits": CreditsScene,
        "action": ActionScene,
        "flash": FlashScene,
    }

    def build(
        self, resolution: Tuple[int, int], seed: int
    ) -> SceneGenerator:
        """Instantiate the generator for this spec."""
        try:
            cls = self.GENERATORS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown scene kind {self.kind!r}; expected one of "
                f"{sorted(self.GENERATORS)}"
            ) from None
        return cls(
            self.duration,
            resolution=resolution,
            tint=self.tint,
            seed=seed,
            **self.params,
        )


class ScriptedClipFactory:
    """Frame factory for a clip assembled from :class:`SceneSpec` entries.

    Used as the ``factory`` argument of :class:`~repro.video.clip.LazyClip`.
    Also records the ground-truth scene boundaries, which the scene-detector
    tests compare against.

    ``letterbox_fraction`` blacks out that fraction of rows at the top and
    bottom of every frame (widescreen content on a 4:3 panel) — the
    classic don't-care region for ROI-weighted annotation.
    """

    def __init__(
        self,
        scenes: Sequence[SceneSpec],
        resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
        seed: int = 0,
        letterbox_fraction: float = 0.0,
    ):
        if not scenes:
            raise ValueError("a scripted clip needs at least one scene")
        if not 0.0 <= letterbox_fraction < 0.5:
            raise ValueError("letterbox_fraction must be in [0, 0.5)")
        self.resolution = resolution
        self.letterbox_rows = int(round(resolution[1] * letterbox_fraction))
        self.generators = [
            spec.build(resolution, seed=seed * 1000 + k) for k, spec in enumerate(scenes)
        ]
        starts = [0]
        for gen in self.generators:
            starts.append(starts[-1] + gen.duration)
        #: Frame index at which each scene starts; final entry == frame_count.
        self.scene_starts = starts
        self.frame_count = starts[-1]

    def scene_of(self, index: int) -> int:
        """Ground-truth scene id containing frame ``index``."""
        if not 0 <= index < self.frame_count:
            raise IndexError(f"frame {index} out of range [0, {self.frame_count})")
        return int(np.searchsorted(self.scene_starts, index, side="right") - 1)

    def __call__(self, index: int) -> Frame:
        scene = self.scene_of(index)
        local = index - self.scene_starts[scene]
        frame = self.generators[scene].render(local)
        if self.letterbox_rows:
            pixels = frame.pixels
            pixels[: self.letterbox_rows, :, :] = 0
            pixels[-self.letterbox_rows :, :, :] = 0
        return frame
