"""Video substrate: frames, clips, synthetic scenes and the clip library."""

from .frame import Frame, LUMA_COEFFS, MAX_CHANNEL, luminance_to_gray_rgb, rgb_to_luminance
from .chunks import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_CHUNK_TARGET_BYTES,
    DEFAULT_PLANE_CACHE_BYTES,
    FrameChunk,
    HeterogeneousFrameError,
    PlaneCache,
    autotune_chunk_size,
    chunk_spans,
)
from .clip import ArrayClip, ClipBase, LazyClip, VideoClip, concatenate
from .synthesis import (
    DEFAULT_RESOLUTION,
    ActionScene,
    BrightScene,
    CreditsScene,
    DarkScene,
    FadeScene,
    FlashScene,
    GradientScene,
    SceneGenerator,
    SceneSpec,
    ScriptedClipFactory,
)
from .library import (
    EXTENDED_CLIP_NAMES,
    PAPER_CLIP_NAMES,
    clip_script,
    make_clip,
    paper_library,
)
from .io import clip_nbytes, load_clip, save_clip
from .codec import CodecModel, EncodedClip, GopPattern

__all__ = [
    "Frame",
    "LUMA_COEFFS",
    "MAX_CHANNEL",
    "rgb_to_luminance",
    "luminance_to_gray_rgb",
    "ClipBase",
    "VideoClip",
    "LazyClip",
    "ArrayClip",
    "concatenate",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_CHUNK_TARGET_BYTES",
    "DEFAULT_PLANE_CACHE_BYTES",
    "FrameChunk",
    "HeterogeneousFrameError",
    "PlaneCache",
    "autotune_chunk_size",
    "chunk_spans",
    "DEFAULT_RESOLUTION",
    "SceneGenerator",
    "SceneSpec",
    "ScriptedClipFactory",
    "DarkScene",
    "BrightScene",
    "GradientScene",
    "FadeScene",
    "CreditsScene",
    "ActionScene",
    "FlashScene",
    "PAPER_CLIP_NAMES",
    "EXTENDED_CLIP_NAMES",
    "clip_script",
    "make_clip",
    "paper_library",
    "save_clip",
    "load_clip",
    "clip_nbytes",
    "GopPattern",
    "CodecModel",
    "EncodedClip",
]
