"""Codec model: MPEG-style GOP structure and bitstream size estimation.

The paper streams MPEG clips "on the order of a few megabytes"; what
reaches the radio is the *encoded* bitstream, not raw pixels.  This module
models the encoder far enough for the system questions that depend on it:

* per-frame **compressed size** (I frames large, P smaller, B smallest;
  busier content costs more bits) — drives the network/radio duty model;
* per-frame **decode cost factor** (motion-compensated frames cost more
  cycles than intra frames) — available to the DVFS annotator.

No entropy coding happens; sizes are deterministic estimates from content
statistics, which is all the power/network models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .clip import ClipBase
from .frame import Frame


@dataclass(frozen=True)
class GopPattern:
    """A repeating group-of-pictures structure.

    ``structure`` is a string over {I, P, B} beginning with ``I``, e.g.
    ``"IBBPBBPBBPBB"`` (the classic N=12, M=3 pattern).
    """

    structure: str = "IBBPBBPBBPBB"

    def __post_init__(self):
        if not self.structure or self.structure[0] != "I":
            raise ValueError("GOP structure must start with an I frame")
        if set(self.structure) - set("IPB"):
            raise ValueError("GOP structure may only contain I, P and B")

    @classmethod
    def from_n_m(cls, n: int, m: int) -> "GopPattern":
        """Build from GOP length ``n`` and anchor distance ``m``.

        ``m=1`` gives IPPP..., ``m=3`` gives IBBPBB... patterns.
        """
        if n < 1 or m < 1 or m > n:
            raise ValueError("need n >= m >= 1")
        frames = []
        for i in range(n):
            if i == 0:
                frames.append("I")
            elif i % m == 0:
                frames.append("P")
            else:
                frames.append("B")
        return cls("".join(frames))

    @property
    def length(self) -> int:
        return len(self.structure)

    def frame_type(self, index: int) -> str:
        """Type of frame ``index`` of a stream using this pattern."""
        if index < 0:
            raise ValueError("frame index must be non-negative")
        return self.structure[index % self.length]


@dataclass(frozen=True)
class CodecModel:
    """Bit-budget model for one encoder configuration.

    ``bpp_*`` are base bits-per-pixel for flat content at the reference
    quality; spatial complexity and temporal change scale them up.
    """

    gop: GopPattern = GopPattern()
    bpp_i: float = 1.1
    bpp_p: float = 0.45
    bpp_b: float = 0.22
    complexity_gain: float = 1.6
    motion_gain: float = 1.2
    min_frame_bytes: int = 64
    #: Relative decode cost per frame type (motion compensation dominates).
    decode_factor_i: float = 0.8
    decode_factor_p: float = 1.0
    decode_factor_b: float = 1.15

    def __post_init__(self):
        for name in ("bpp_i", "bpp_p", "bpp_b"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.complexity_gain < 0 or self.motion_gain < 0:
            raise ValueError("gains must be non-negative")
        if self.min_frame_bytes < 1:
            raise ValueError("min_frame_bytes must be >= 1")

    # ------------------------------------------------------------------
    @staticmethod
    def _spatial_complexity(frame: Frame) -> float:
        lum = frame.luminance
        gx = np.abs(np.diff(lum, axis=1)).mean() if lum.shape[1] > 1 else 0.0
        gy = np.abs(np.diff(lum, axis=0)).mean() if lum.shape[0] > 1 else 0.0
        return float(min((gx + gy) / 0.25, 1.0))

    @staticmethod
    def _temporal_change(frame: Frame, prev: Frame) -> float:
        if frame.pixels.shape != prev.pixels.shape:
            return 1.0  # treat resolution changes as full refresh
        return float(min(np.abs(frame.luminance - prev.luminance).mean() / 0.25, 1.0))

    def _base_bpp(self, ftype: str) -> float:
        return {"I": self.bpp_i, "P": self.bpp_p, "B": self.bpp_b}[ftype]

    def estimate_frame_bytes(self, frame: Frame, prev: "Frame | None", ftype: str) -> int:
        """Compressed size of one frame, in bytes."""
        if ftype not in "IPB" or len(ftype) != 1:
            raise ValueError(f"invalid frame type {ftype!r}")
        bpp = self._base_bpp(ftype)
        bpp *= 1.0 + self.complexity_gain * self._spatial_complexity(frame)
        if ftype != "I" and prev is not None:
            bpp *= 1.0 + self.motion_gain * self._temporal_change(frame, prev)
        size = int(round(frame.pixel_count * bpp / 8.0))
        return max(size, self.min_frame_bytes)

    def decode_cycles_factor(self, ftype: str) -> float:
        """Relative decode cost of a frame type."""
        return {
            "I": self.decode_factor_i,
            "P": self.decode_factor_p,
            "B": self.decode_factor_b,
        }[ftype]

    # ------------------------------------------------------------------
    def encode(self, clip: ClipBase) -> "EncodedClip":
        """Estimate the whole clip's bitstream."""
        sizes: List[int] = []
        types: List[str] = []
        prev: Frame | None = None
        for i, frame in enumerate(clip):
            ftype = self.gop.frame_type(i)
            sizes.append(self.estimate_frame_bytes(frame, prev, ftype))
            types.append(ftype)
            prev = frame
        return EncodedClip(
            clip_name=clip.name,
            fps=clip.fps,
            frame_bytes=np.asarray(sizes, dtype=np.int64),
            frame_types=tuple(types),
        )


@dataclass(frozen=True)
class EncodedClip:
    """Size/type metadata of an encoded clip."""

    clip_name: str
    fps: float
    frame_bytes: np.ndarray
    frame_types: Tuple[str, ...]

    def __post_init__(self):
        if self.frame_bytes.ndim != 1 or self.frame_bytes.size == 0:
            raise ValueError("frame_bytes must be a non-empty 1-D array")
        if len(self.frame_types) != self.frame_bytes.size:
            raise ValueError("frame_types length mismatch")

    @property
    def total_bytes(self) -> int:
        return int(self.frame_bytes.sum())

    @property
    def bitrate_bps(self) -> float:
        """Average stream bitrate at the clip's frame rate."""
        duration = self.frame_bytes.size / self.fps
        return self.total_bytes * 8.0 / duration

    def compression_ratio(self, raw_frame_bytes: int) -> float:
        """Raw-pixels size over encoded size."""
        if raw_frame_bytes <= 0:
            raise ValueError("raw frame size must be positive")
        return raw_frame_bytes * self.frame_bytes.size / self.total_bytes

    def mean_bytes_by_type(self) -> dict:
        """Average encoded size per frame type present in the stream."""
        out = {}
        types = np.array(self.frame_types)
        for ftype in "IPB":
            mask = types == ftype
            if mask.any():
                out[ftype] = float(self.frame_bytes[mask].mean())
        return out
