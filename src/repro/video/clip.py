"""Video clips: ordered frame sequences with playback timing.

Two concrete containers are provided:

* :class:`VideoClip` — an eager, in-memory list of frames.  Convenient for
  tests and short sequences.
* :class:`LazyClip` — frames are synthesized on demand from a frame factory
  callable.  This is how the clip library keeps ten multi-hundred-frame
  titles cheap: a frame only exists while someone is looking at it, exactly
  like a streaming decoder.

Both share the :class:`ClipBase` interface (``name``, ``fps``,
``frame_count``, ``frame(i)``, iteration), which is the only surface the
rest of the system depends on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .frame import Frame


class ClipBase:
    """Common interface for frame containers."""

    name: str
    fps: float

    @property
    def frame_count(self) -> int:
        raise NotImplementedError

    def frame(self, index: int) -> Frame:
        """Return frame ``index`` (0-based)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Playback duration in seconds."""
        return self.frame_count / self.fps

    @property
    def frame_period(self) -> float:
        """Seconds between consecutive frames."""
        return 1.0 / self.fps

    def __len__(self) -> int:
        return self.frame_count

    def __iter__(self) -> Iterator[Frame]:
        for i in range(self.frame_count):
            yield self.frame(i)

    def frames(self) -> Iterator[Frame]:
        """Alias of iteration, for readability at call sites."""
        return iter(self)

    def timestamps(self) -> np.ndarray:
        """Presentation time of each frame, in seconds."""
        return np.arange(self.frame_count) / self.fps

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, frames={self.frame_count}, "
            f"fps={self.fps:g}, duration={self.duration:.1f}s)"
        )


class VideoClip(ClipBase):
    """An eager clip holding all frames in memory.

    Parameters
    ----------
    frames:
        The frame sequence.  Frame indices are rewritten to be contiguous.
    fps:
        Playback rate in frames per second.
    name:
        Human-readable identifier (used in benchmark tables).
    """

    def __init__(self, frames: Iterable[Frame], fps: float = 30.0, name: str = "clip"):
        self._frames: List[Frame] = []
        for i, frame in enumerate(frames):
            if not isinstance(frame, Frame):
                frame = Frame(frame)
            frame.index = i
            self._frames.append(frame)
        if not self._frames:
            raise ValueError("a clip must contain at least one frame")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self.fps = float(fps)
        self.name = name

    @property
    def frame_count(self) -> int:
        return len(self._frames)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self._frames):
            raise IndexError(f"frame index {index} out of range [0, {len(self._frames)})")
        return self._frames[index]

    def subclip(self, start: int, stop: int, name: Optional[str] = None) -> "VideoClip":
        """Extract frames ``[start, stop)`` as a new clip."""
        if not 0 <= start < stop <= self.frame_count:
            raise ValueError(f"invalid subclip range [{start}, {stop})")
        frames = [self._frames[i].copy() for i in range(start, stop)]
        return VideoClip(frames, fps=self.fps, name=name or f"{self.name}[{start}:{stop}]")


class LazyClip(ClipBase):
    """A clip whose frames are produced on demand by a factory callable.

    Parameters
    ----------
    factory:
        ``factory(index) -> Frame``; must be deterministic so that repeated
        reads of the same index agree (the annotation pipeline reads each
        frame during profiling and again during compensation).
    frame_count, fps, name:
        Clip metadata.
    resolution:
        Optional ``(width, height)`` advertised without rendering a frame.
    """

    def __init__(
        self,
        factory: Callable[[int], Frame],
        frame_count: int,
        fps: float = 30.0,
        name: str = "clip",
        resolution: Optional[Tuple[int, int]] = None,
    ):
        if frame_count <= 0:
            raise ValueError(f"frame_count must be positive, got {frame_count}")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self._factory = factory
        self._frame_count = int(frame_count)
        self.fps = float(fps)
        self.name = name
        self._resolution = resolution

    @property
    def frame_count(self) -> int:
        return self._frame_count

    @property
    def resolution(self) -> Optional[Tuple[int, int]]:
        return self._resolution

    def frame(self, index: int) -> Frame:
        if not 0 <= index < self._frame_count:
            raise IndexError(f"frame index {index} out of range [0, {self._frame_count})")
        frame = self._factory(index)
        frame.index = index
        return frame

    def materialize(self) -> VideoClip:
        """Render every frame into an eager :class:`VideoClip`."""
        return VideoClip(list(self), fps=self.fps, name=self.name)


def concatenate(clips: Sequence[ClipBase], name: str = "concat") -> VideoClip:
    """Join clips back-to-back into one eager clip.

    All clips must share the same fps; frame sizes may differ (the decoder
    model treats each frame independently), but in practice library clips
    share a resolution.
    """
    if not clips:
        raise ValueError("need at least one clip to concatenate")
    fps = clips[0].fps
    for clip in clips[1:]:
        if clip.fps != fps:
            raise ValueError("cannot concatenate clips with differing fps")
    frames: List[Frame] = []
    for clip in clips:
        frames.extend(frame.copy() for frame in clip)
    return VideoClip(frames, fps=fps, name=name)
