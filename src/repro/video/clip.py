"""Video clips: ordered frame sequences with playback timing.

Three concrete containers are provided:

* :class:`VideoClip` — an eager, in-memory list of frames.  Convenient for
  tests and short sequences.
* :class:`LazyClip` — frames are synthesized on demand from a frame factory
  callable.  This is how the clip library keeps ten multi-hundred-frame
  titles cheap: a frame only exists while someone is looking at it, exactly
  like a streaming decoder.
* :class:`ArrayClip` — a single ``(N, H, W, 3)`` uint8 array.  The fastest
  substrate for the chunked execution engine: chunks are zero-copy slices.

All share the :class:`ClipBase` interface (``name``, ``fps``,
``frame_count``, ``frame(i)``, iteration, ``iter_chunks``), which is the
only surface the rest of the system depends on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .chunks import (
    DEFAULT_CHUNK_SIZE,
    FrameChunk,
    PlaneCache,
    chunk_spans,
)
from .frame import Frame


class ClipBase:
    """Common interface for frame containers."""

    name: str
    fps: float

    @property
    def frame_count(self) -> int:
        raise NotImplementedError

    def frame(self, index: int) -> Frame:
        """Return frame ``index`` (0-based)."""
        raise NotImplementedError

    def frame_shape(self) -> Optional[Tuple[int, int]]:
        """``(height, width)`` of the first frame, probed as cheaply as
        the container allows (array-backed clips read metadata; lazy
        clips with a declared resolution never render a frame).  Returns
        ``None`` only for empty containers.  Drives the chunk-size
        autotuner; clips that mix resolutions are handled downstream by
        the :class:`~repro.video.chunks.HeterogeneousFrameError`
        fallback, so the first frame is a sufficient probe.
        """
        if self.frame_count < 1:
            return None
        shape = self.frame(0).pixels.shape
        return (int(shape[0]), int(shape[1]))

    # ------------------------------------------------------------------
    # Chunked access (the batched execution engine's entry point)
    # ------------------------------------------------------------------
    def iter_chunks(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lead: Optional[int] = None,
        start: int = 0,
    ) -> Iterator[FrameChunk]:
        """Yield the clip as ``(N, H, W, 3)`` uint8 batches.

        The default implementation stacks ``frame(i)`` pixels; array- and
        list-backed clips override it with cheaper fast paths.  The last
        chunk carries the remainder, and ``chunk_size > frame_count``
        yields a single chunk.  A positive ``lead`` shrinks only the
        first chunk (see :func:`~repro.video.chunks.chunk_spans`), which
        streaming uses to cut time-to-first-frame; a positive ``start``
        begins mid-clip (mid-stream adaptation).  Raises
        :class:`~repro.video.chunks.HeterogeneousFrameError` if frames
        within one chunk mix resolutions.
        """
        for begin, stop in chunk_spans(self.frame_count, chunk_size,
                                       lead=lead, start=start):
            frames = [self.frame(i) for i in range(begin, stop)]
            yield FrameChunk.from_frames(frames, start=begin)

    @property
    def plane_cache(self) -> PlaneCache:
        """The clip's LRU cache of derived per-frame planes (lazy).

        Assign a differently sized :class:`~repro.video.chunks.PlaneCache`
        to change the retention budget.
        """
        cache = self.__dict__.get("_plane_cache")
        if cache is None:
            cache = PlaneCache()
            self.__dict__["_plane_cache"] = cache
        return cache

    @plane_cache.setter
    def plane_cache(self, cache: PlaneCache) -> None:
        self.__dict__["_plane_cache"] = cache

    def luminance_plane(self, index: int) -> np.ndarray:
        """Frame ``index``'s normalized luminance map, via the plane cache."""
        plane = self.plane_cache.get(index, "lum")
        if plane is None:
            plane = self.frame(index).luminance
            self.plane_cache.put(index, "lum", plane)
        return plane

    def peak_channel_plane(self, index: int) -> np.ndarray:
        """Frame ``index``'s normalized peak-channel map, via the plane cache."""
        plane = self.plane_cache.get(index, "peak")
        if plane is None:
            plane = self.frame(index).peak_channel
            self.plane_cache.put(index, "peak", plane)
        return plane

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Playback duration in seconds."""
        return self.frame_count / self.fps

    @property
    def frame_period(self) -> float:
        """Seconds between consecutive frames."""
        return 1.0 / self.fps

    def __len__(self) -> int:
        return self.frame_count

    def __iter__(self) -> Iterator[Frame]:
        for i in range(self.frame_count):
            yield self.frame(i)

    def frames(self) -> Iterator[Frame]:
        """Alias of iteration, for readability at call sites."""
        return iter(self)

    def timestamps(self) -> np.ndarray:
        """Presentation time of each frame, in seconds."""
        return np.arange(self.frame_count) / self.fps

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, frames={self.frame_count}, "
            f"fps={self.fps:g}, duration={self.duration:.1f}s)"
        )


class VideoClip(ClipBase):
    """An eager clip holding all frames in memory.

    Parameters
    ----------
    frames:
        The frame sequence.  Frame indices are rewritten to be contiguous.
    fps:
        Playback rate in frames per second.
    name:
        Human-readable identifier (used in benchmark tables).
    """

    def __init__(self, frames: Iterable[Frame], fps: float = 30.0, name: str = "clip"):
        self._frames: List[Frame] = []
        for i, frame in enumerate(frames):
            if not isinstance(frame, Frame):
                frame = Frame(frame)
            frame.index = i
            self._frames.append(frame)
        if not self._frames:
            raise ValueError("a clip must contain at least one frame")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self.fps = float(fps)
        self.name = name

    @property
    def frame_count(self) -> int:
        return len(self._frames)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self._frames):
            raise IndexError(f"frame index {index} out of range [0, {len(self._frames)})")
        return self._frames[index]

    def subclip(self, start: int, stop: int, name: Optional[str] = None) -> "VideoClip":
        """Extract frames ``[start, stop)`` as a new clip."""
        if not 0 <= start < stop <= self.frame_count:
            raise ValueError(f"invalid subclip range [{start}, {stop})")
        frames = [self._frames[i].copy() for i in range(start, stop)]
        return VideoClip(frames, fps=self.fps, name=name or f"{self.name}[{start}:{stop}]")

    def iter_chunks(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lead: Optional[int] = None,
        start: int = 0,
    ) -> Iterator[FrameChunk]:
        """Chunk the stored frame list directly (no index round-trips)."""
        for begin, stop in chunk_spans(self.frame_count, chunk_size,
                                       lead=lead, start=start):
            yield FrameChunk.from_frames(self._frames[begin:stop], start=begin)


class LazyClip(ClipBase):
    """A clip whose frames are produced on demand by a factory callable.

    Parameters
    ----------
    factory:
        ``factory(index) -> Frame``; must be deterministic so that repeated
        reads of the same index agree (the annotation pipeline reads each
        frame during profiling and again during compensation).
    frame_count, fps, name:
        Clip metadata.
    resolution:
        Optional ``(width, height)`` advertised without rendering a frame.
    """

    def __init__(
        self,
        factory: Callable[[int], Frame],
        frame_count: int,
        fps: float = 30.0,
        name: str = "clip",
        resolution: Optional[Tuple[int, int]] = None,
    ):
        if frame_count <= 0:
            raise ValueError(f"frame_count must be positive, got {frame_count}")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self._factory = factory
        self._frame_count = int(frame_count)
        self.fps = float(fps)
        self.name = name
        self._resolution = resolution

    @property
    def frame_count(self) -> int:
        return self._frame_count

    @property
    def resolution(self) -> Optional[Tuple[int, int]]:
        return self._resolution

    def frame_shape(self) -> Optional[Tuple[int, int]]:
        """Use the declared resolution when given; render one frame otherwise."""
        if self._resolution is not None:
            width, height = self._resolution
            return (int(height), int(width))
        return super().frame_shape()

    def frame(self, index: int) -> Frame:
        if not 0 <= index < self._frame_count:
            raise IndexError(f"frame index {index} out of range [0, {self._frame_count})")
        frame = self._factory(index)
        frame.index = index
        return frame

    def materialize(self) -> VideoClip:
        """Render every frame into an eager :class:`VideoClip`."""
        return VideoClip(list(self), fps=self.fps, name=self.name)


class ArrayClip(ClipBase):
    """A clip backed by one contiguous ``(N, H, W, 3)`` uint8 array.

    The natural container for the chunked execution engine:
    :meth:`iter_chunks` hands out zero-copy slices of the backing array,
    and :meth:`frame` wraps a view (mutating a frame's pixels mutates the
    clip, exactly like the shared :class:`Frame` objects of a
    :class:`VideoClip`).

    Parameters
    ----------
    pixels:
        ``(N, H, W, 3)`` array.  ``uint8`` input is used as-is; float
        input in ``[0, 1]`` is quantized with the same rule as
        :class:`~repro.video.frame.Frame`.
    fps, name:
        Clip metadata.
    """

    def __init__(self, pixels: np.ndarray, fps: float = 30.0, name: str = "clip"):
        arr = np.asarray(pixels)
        if arr.ndim != 4 or arr.shape[3] != 3:
            raise ValueError(f"clip pixels must be (N, H, W, 3), got {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError("a clip must contain at least one frame")
        if np.issubdtype(arr.dtype, np.floating):
            arr = np.round(np.clip(arr, 0.0, 1.0) * 255).astype(np.uint8)
        elif arr.dtype != np.uint8:
            arr = np.clip(arr, 0, 255).astype(np.uint8)
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self._pixels = arr
        self.fps = float(fps)
        self.name = name

    @classmethod
    def from_clip(cls, clip: ClipBase, name: Optional[str] = None) -> "ArrayClip":
        """Materialize any clip into one contiguous pixel array."""
        batches = [chunk.pixels for chunk in clip.iter_chunks()]
        pixels = batches[0] if len(batches) == 1 else np.concatenate(batches)
        return cls(pixels, fps=clip.fps, name=name or clip.name)

    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return self._pixels.shape[0]

    @property
    def pixels(self) -> np.ndarray:
        """The backing ``(N, H, W, 3)`` uint8 array (not a copy)."""
        return self._pixels

    @property
    def resolution(self) -> Tuple[int, int]:
        """``(width, height)`` shared by every frame."""
        return (self._pixels.shape[2], self._pixels.shape[1])

    def frame_shape(self) -> Tuple[int, int]:
        """Read straight off the backing array — no Frame materialized."""
        return (int(self._pixels.shape[1]), int(self._pixels.shape[2]))

    def frame(self, index: int) -> Frame:
        if not 0 <= index < self.frame_count:
            raise IndexError(
                f"frame index {index} out of range [0, {self.frame_count})"
            )
        return Frame(self._pixels[index], index=index)

    def iter_chunks(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lead: Optional[int] = None,
        start: int = 0,
    ) -> Iterator[FrameChunk]:
        """Slice the backing array — no stacking, no copies."""
        for begin, stop in chunk_spans(self.frame_count, chunk_size,
                                       lead=lead, start=start):
            yield FrameChunk(self._pixels[begin:stop], start=begin)


def concatenate(clips: Sequence[ClipBase], name: str = "concat") -> VideoClip:
    """Join clips back-to-back into one eager clip.

    All clips must share the same fps; frame sizes may differ (the decoder
    model treats each frame independently), but in practice library clips
    share a resolution.
    """
    if not clips:
        raise ValueError("need at least one clip to concatenate")
    fps = clips[0].fps
    for clip in clips[1:]:
        if clip.fps != fps:
            raise ValueError("cannot concatenate clips with differing fps")
    frames: List[Frame] = []
    for clip in clips:
        frames.extend(frame.copy() for frame in clip)
    return VideoClip(frames, fps=fps, name=name)
