"""Frame: the fundamental image unit of a video stream.

A :class:`Frame` wraps an ``(H, W, 3)`` ``uint8`` RGB array and exposes the
luminance math used throughout the paper: the per-pixel luminance

    Y = r*R + g*G + b*B

with the ITU-R BT.601 constants ``r=0.299, g=0.587, b=0.114`` (the "known
constants" of Section 4.1).  Luminance is reported normalized to ``[0, 1]``
so that it can be plugged directly into the perceived-intensity formula
``I = rho * L * Y``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: ITU-R BT.601 luma coefficients (the paper's ``r, g, b`` constants).
LUMA_COEFFS: Tuple[float, float, float] = (0.299, 0.587, 0.114)

#: Maximum representable channel value ("pixel values for most LCDs are in
#: the range 0-255", Section 4.1).
MAX_CHANNEL = 255


def rgb_to_luminance(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(..., 3)`` uint8/float RGB array to normalized luminance.

    Parameters
    ----------
    rgb:
        Array whose last axis holds R, G, B.  ``uint8`` arrays are assumed
        to span ``0..255``; float arrays are assumed already normalized.

    Returns
    -------
    numpy.ndarray
        Luminance in ``[0, 1]`` with the last axis dropped.
    """
    arr = np.asarray(rgb)
    if arr.shape[-1] != 3:
        raise ValueError(f"expected trailing RGB axis of size 3, got shape {arr.shape}")
    values = arr.astype(np.float64)
    if np.issubdtype(arr.dtype, np.integer):
        values = values / MAX_CHANNEL
    r, g, b = LUMA_COEFFS
    return r * values[..., 0] + g * values[..., 1] + b * values[..., 2]


def luminance_to_gray_rgb(luminance: np.ndarray) -> np.ndarray:
    """Expand a normalized luminance map into a gray uint8 RGB image."""
    lum = np.clip(np.asarray(luminance, dtype=np.float64), 0.0, 1.0)
    channel = np.round(lum * MAX_CHANNEL).astype(np.uint8)
    return np.stack([channel, channel, channel], axis=-1)


class Frame:
    """A single RGB video frame.

    Parameters
    ----------
    pixels:
        ``(H, W, 3)`` array.  ``uint8`` input is used as-is; float input in
        ``[0, 1]`` is quantized to ``uint8``.
    index:
        Optional position of the frame within its clip.
    """

    __slots__ = ("pixels", "index", "_luminance", "_peak_channel")

    def __init__(self, pixels: np.ndarray, index: int = 0):
        arr = np.asarray(pixels)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"frame pixels must be (H, W, 3), got {arr.shape}")
        if np.issubdtype(arr.dtype, np.floating):
            arr = np.round(np.clip(arr, 0.0, 1.0) * MAX_CHANNEL).astype(np.uint8)
        elif arr.dtype != np.uint8:
            arr = np.clip(arr, 0, MAX_CHANNEL).astype(np.uint8)
        self.pixels = arr
        self.index = int(index)
        self._luminance: np.ndarray | None = None
        self._peak_channel: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def solid(cls, height: int, width: int, rgb: Tuple[int, int, int], index: int = 0) -> "Frame":
        """Create a frame filled with a single RGB color."""
        pixels = np.empty((height, width, 3), dtype=np.uint8)
        pixels[..., 0] = rgb[0]
        pixels[..., 1] = rgb[1]
        pixels[..., 2] = rgb[2]
        return cls(pixels, index=index)

    @classmethod
    def solid_gray(cls, height: int, width: int, level: int, index: int = 0) -> "Frame":
        """Create a uniform gray frame (the calibration pattern of Section 5)."""
        return cls.solid(height, width, (level, level, level), index=index)

    @classmethod
    def from_luminance(cls, luminance: np.ndarray, index: int = 0) -> "Frame":
        """Create a gray frame whose luminance map matches ``luminance``."""
        return cls(luminance_to_gray_rgb(luminance), index=index)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def resolution(self) -> Tuple[int, int]:
        """``(width, height)`` of the frame."""
        return (self.width, self.height)

    @property
    def pixel_count(self) -> int:
        return self.height * self.width

    # ------------------------------------------------------------------
    # Luminance statistics
    # ------------------------------------------------------------------
    @property
    def luminance(self) -> np.ndarray:
        """Normalized per-pixel luminance ``Y`` in ``[0, 1]`` (cached)."""
        if self._luminance is None:
            self._luminance = rgb_to_luminance(self.pixels)
        return self._luminance

    @property
    def max_luminance(self) -> float:
        """The frame's maximum luminance (drives scene detection)."""
        return float(self.luminance.max())

    @property
    def mean_luminance(self) -> float:
        return float(self.luminance.mean())

    @property
    def peak_channel(self) -> np.ndarray:
        """Per-pixel maximum normalized RGB channel value (cached).

        Multiplicative compensation saturates a pixel as soon as its
        *largest channel* reaches 1.0 — for saturated colors well before
        the luminance does — so clipping budgets are enforced on this map,
        not on luminance.  Equal to luminance for gray content.
        """
        if self._peak_channel is None:
            self._peak_channel = self.pixels.max(axis=-1).astype(np.float64) / MAX_CHANNEL
        return self._peak_channel

    @property
    def max_peak_channel(self) -> float:
        """The frame's largest channel value anywhere."""
        return float(self.peak_channel.max())

    def luminance_percentile(self, fraction: float) -> float:
        """Luminance below which ``fraction`` of the pixels fall.

        ``luminance_percentile(0.95)`` is the effective maximum luminance
        when the brightest 5 % of pixels are allowed to clip (Section 4.3's
        fixed-percent heuristic).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return float(np.quantile(self.luminance, fraction))

    def normalized(self) -> np.ndarray:
        """Return the pixels as float RGB in ``[0, 1]``."""
        return self.pixels.astype(np.float64) / MAX_CHANNEL

    # ------------------------------------------------------------------
    # Dunder support
    # ------------------------------------------------------------------
    def copy(self) -> "Frame":
        """Deep-copy the frame (pixels included)."""
        return Frame(self.pixels.copy(), index=self.index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __hash__(self):  # Frames are mutable arrays; keep them unhashable.
        raise TypeError("Frame objects are not hashable")

    def __repr__(self) -> str:
        return (
            f"Frame(index={self.index}, {self.width}x{self.height}, "
            f"max_lum={self.max_luminance:.3f})"
        )
