"""Clip serialization.

Streaming sends frames over a (simulated) network and servers cache
annotated content on disk, so clips need a stable on-disk form.  Clips are
stored as ``.npz`` archives: one ``frames`` tensor plus metadata.  This is
deliberately codec-free — the paper's contribution is orthogonal to the
bitstream format, and an uncompressed tensor keeps round-trips exact.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .clip import VideoClip, ClipBase
from .frame import Frame

#: Format tag written into every archive, checked on load.
FORMAT_VERSION = 1


def save_clip(clip: ClipBase, path: Union[str, os.PathLike]) -> None:
    """Write a clip to ``path`` as an ``.npz`` archive.

    Lazy clips are materialized frame-by-frame into the output tensor.
    """
    frames = np.stack([frame.pixels for frame in clip])
    np.savez_compressed(
        path,
        frames=frames,
        fps=np.float64(clip.fps),
        name=np.str_(clip.name),
        version=np.int64(FORMAT_VERSION),
    )


def load_clip(path: Union[str, os.PathLike]) -> VideoClip:
    """Load a clip previously written by :func:`save_clip`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported clip format version {version} (expected {FORMAT_VERSION})"
            )
        frames_arr = data["frames"]
        fps = float(data["fps"])
        name = str(data["name"])
    if frames_arr.ndim != 4 or frames_arr.shape[-1] != 3:
        raise ValueError(f"corrupt clip archive: frames shape {frames_arr.shape}")
    frames = [Frame(frames_arr[i], index=i) for i in range(frames_arr.shape[0])]
    return VideoClip(frames, fps=fps, name=name)


def clip_nbytes(clip: ClipBase) -> int:
    """Raw (uncompressed) pixel payload size of a clip in bytes.

    Used to report annotation overhead relative to stream size: the paper's
    clips are "on the order of a few megabytes" while RLE-compressed
    annotations are "in the order of hundreds of bytes".
    """
    total = 0
    for frame in clip:
        total += frame.pixels.nbytes
    return total
