"""Alternative scene detector: histogram-change segmentation.

The paper segments scenes by *maximum luminance* because that is the
single statistic its backlight decision consumes.  The classical
alternative — used by general shot-boundary detectors — compares whole
luminance histograms between consecutive frames.  This module implements
that variant so the design choice can be ablated:

* the histogram detector finds *content* cuts (it sees a pan from one
  dark room to another dark room);
* the max-luminance detector finds exactly the cuts that *matter to the
  backlight*, and nothing else — fewer scenes, fewer backlight switches,
  same power, which is the paper's implicit argument.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..quality.metrics import histogram_l1_distance
from .analyzer import FrameStats
from .policy import SchemeParameters
from .scene import Scene


class HistogramSceneDetector:
    """Shot-boundary detection on consecutive-frame histogram distance.

    A new scene opens when the L1 distance between consecutive frames'
    luminance histograms exceeds ``distance_threshold`` (0-2 scale), rate
    limited by the same minimum-interval guard as the primary detector.
    """

    def __init__(self, params: SchemeParameters = SchemeParameters(),
                 distance_threshold: float = 0.5):
        if not 0.0 < distance_threshold <= 2.0:
            raise ValueError(
                f"distance_threshold must be in (0, 2], got {distance_threshold}"
            )
        self.params = params
        self.distance_threshold = distance_threshold

    def detect(self, stats: Sequence[FrameStats]) -> List[Scene]:
        """Segment a profiled stream by histogram change."""
        if not stats:
            raise ValueError("cannot detect scenes in an empty stream")
        maxima = np.array([s.max_value(self.params.color_safe) for s in stats])
        scenes: List[Scene] = []
        start = 0
        scene_max = float(maxima[0])
        for i in range(1, len(stats)):
            distance = histogram_l1_distance(stats[i - 1].histogram, stats[i].histogram)
            old_enough = (i - start) >= self.params.min_scene_interval_frames
            if distance >= self.distance_threshold and old_enough:
                scenes.append(Scene(start, i, scene_max))
                start = i
                scene_max = float(maxima[i])
            else:
                scene_max = max(scene_max, float(maxima[i]))
        scenes.append(Scene(start, len(stats), scene_max))
        return scenes
