"""Backlight transition smoothing: ramping between scene levels.

The paper limits backlight changes at annotation time (scene rate
limiting) and notes that related work [4] needs "a smoothing technique ...
that prevents frequent backlight switching".  Even rate-limited, a scene
boundary is still a step: on a slow CCFL the lamp glides, but on a fast
LED the jump can be visible as a luminance pop when the compensation of
the incoming frames does not land on the same field.

:func:`smooth_track` post-processes a device annotation track so each
level change is spread over ``ramp_frames`` frames, with the compensation
gain recomputed *per ramp frame from the ramped level* — perceived
intensity stays exact at every step (for unclipped pixels), only the
clipping budget is transiently affected while the ramp is below the
target level of a brightening scene.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..display.devices import DeviceProfile
from .annotation import (
    CLIP_QUALITY_POLICY,
    DeviceAnnotationTrack,
    DeviceSceneAnnotation,
)


def ramped_levels(levels: np.ndarray, ramp_frames: int) -> np.ndarray:
    """Spread each level step over ``ramp_frames`` frames (linear ramp).

    The ramp starts at the change point: frames ``[t, t+ramp)`` interpolate
    from the old to the new level; a new change restarts the ramp from the
    current interpolated value.
    """
    if ramp_frames < 1:
        raise ValueError("ramp_frames must be >= 1")
    levels = np.asarray(levels, dtype=np.float64)
    if levels.ndim != 1 or levels.size == 0:
        raise ValueError("levels must be a non-empty 1-D array")
    out = np.empty_like(levels)
    current = levels[0]
    target = levels[0]
    ramp_start = current
    ramp_index = 0
    out[0] = current
    for i in range(1, levels.size):
        if levels[i] != target:
            target = levels[i]
            ramp_start = current
            ramp_index = i
        progress = min((i - ramp_index + 1) / ramp_frames, 1.0)
        current = ramp_start + (target - ramp_start) * progress
        out[i] = current
    return np.round(out).astype(np.int64)


def smooth_track(
    track: DeviceAnnotationTrack,
    device: DeviceProfile,
    ramp_frames: int = 8,
) -> DeviceAnnotationTrack:
    """Return a track whose level changes ramp over ``ramp_frames`` frames.

    Gains are recomputed per frame from the ramped level so compensation
    stays consistent with the light actually emitted.  Runs of identical
    (level, gain) are re-grouped into scenes, so the result is still a
    compact, RLE-friendly track.
    """
    if track.device_name != device.name:
        raise ValueError(
            f"track is bound to {track.device_name!r}, smoothing against "
            f"{device.name!r}"
        )
    if track.policy != CLIP_QUALITY_POLICY:
        # Ramping recomputes gains from levels, which only holds for the
        # default gain-compensation scheme — a ramped LUT or downscale
        # has no per-frame re-derivation.
        raise ValueError(
            f"smoothing supports only {CLIP_QUALITY_POLICY!r} tracks, "
            f"got {track.policy!r}"
        )
    levels = ramped_levels(track.per_frame_levels(), ramp_frames)
    transfer = device.transfer
    gains = np.array([
        max(transfer.compensation_gain_for_level(int(l)), 1.0) if l > 0 else 1.0
        for l in levels
    ])
    # Re-group identical consecutive (level, gain) frames into scenes.
    scenes: List[DeviceSceneAnnotation] = []
    start = 0
    for i in range(1, levels.size + 1):
        boundary = i == levels.size or levels[i] != levels[start]
        if boundary:
            scenes.append(
                DeviceSceneAnnotation(
                    start=start,
                    end=i,
                    backlight_level=int(levels[start]),
                    compensation_gain=float(gains[start]),
                )
            )
            start = i
    return DeviceAnnotationTrack(
        clip_name=track.clip_name,
        device_name=track.device_name,
        frame_count=track.frame_count,
        fps=track.fps,
        quality=track.quality,
        scenes=scenes,
    )


def max_level_step(levels: np.ndarray) -> int:
    """Largest single-frame backlight jump in a schedule (pop visibility)."""
    levels = np.asarray(levels)
    if levels.ndim != 1 or levels.size == 0:
        raise ValueError("levels must be a non-empty 1-D array")
    if levels.size == 1:
        return 0
    return int(np.abs(np.diff(levels)).max())
