"""Quality levels and scheme parameters.

Section 4.3/5: "quality degradation levels (percent of high luminance
pixels clipped) were set to 0, 5, 10, 15 and 20" and "The server (or proxy
node) provides a number of different video qualities as exemplified above
(5 in our case), same for all types of PDA clients."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: The paper's five quality levels, as clip fractions.
QUALITY_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20)

#: Display labels matching the Figure 9 / Figure 10 legends.
QUALITY_LABELS: Tuple[str, ...] = ("0%", "5%", "10%", "15%", "20%")


def quality_label(clip_fraction: float) -> str:
    """Human-readable label for a clip fraction (e.g. ``0.05`` -> ``"5%"``)."""
    if not 0.0 <= clip_fraction <= 1.0:
        raise ValueError(f"clip fraction must be in [0, 1], got {clip_fraction}")
    return f"{round(clip_fraction * 100):g}%"


@dataclass(frozen=True)
class SchemeParameters:
    """Tunables of the annotation scheme (Section 4.3 defaults).

    Attributes
    ----------
    quality:
        Fraction of high-luminance pixels allowed to clip, 0-1.
    scene_change_threshold:
        Relative change in frame max luminance that starts a new scene
        ("a change of 10 % or more ... is considered a scene change").
    min_scene_interval_frames:
        Scene changes closer together than this are suppressed ("only if
        it does not occur more frequently than a threshold interval") —
        the flicker guard.  15 frames is 0.5 s at 30 fps.
    per_frame:
        If True, bypass scene grouping and annotate every frame
        individually ("sometimes, better results are obtained if we allow
        backlight changes for each frame (but it may introduce some
        flicker)").
    color_safe:
        If True (default), clipping budgets and backlight levels are
        computed on the per-pixel *peak channel* value, so the quality
        guarantee holds for saturated colors.  False reproduces the
        paper's literal luminance-only analysis, under which strongly
        tinted content can clip (change color on) more pixels than the
        budget — the color-safety ablation measures the difference.
    """

    quality: float = 0.0
    scene_change_threshold: float = 0.10
    min_scene_interval_frames: int = 15
    per_frame: bool = False
    color_safe: bool = True

    def __post_init__(self):
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")
        if not 0.0 < self.scene_change_threshold <= 1.0:
            raise ValueError(
                f"scene_change_threshold must be in (0, 1], got {self.scene_change_threshold}"
            )
        if self.min_scene_interval_frames < 1:
            raise ValueError(
                f"min_scene_interval_frames must be >= 1, got {self.min_scene_interval_frames}"
            )

    def with_quality(self, quality: float) -> "SchemeParameters":
        """Copy with a different quality level (used in sweeps)."""
        return SchemeParameters(
            quality=quality,
            scene_change_threshold=self.scene_change_threshold,
            min_scene_interval_frames=self.min_scene_interval_frames,
            per_frame=self.per_frame,
            color_safe=self.color_safe,
        )
