"""Scene detection: grouping frames by maximum luminance.

Section 4.3 / Figure 6: "we grouped frames into scenes based on their
maximum luminance levels: a change of 10 % or more in frame maximum
luminance level is considered a scene change, but only if it does not
occur more frequently than a threshold interval.  ...  Both these
thresholds were experimentally set for minimizing visible spikes.  A
maximum luminance level is computed for the entire scene."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .analyzer import FrameStats
from .policy import SchemeParameters

#: Floor for the relative-change denominator: near-black reference frames
#: would otherwise turn numeric dust into "scene changes".
_MIN_REFERENCE_LUMINANCE = 0.02

#: Absolute-change floor: a max-luminance move smaller than this is below
#: what a one-step backlight adjustment could express, so it never opens a
#: scene regardless of the relative threshold.
_MIN_ABSOLUTE_CHANGE = 0.02


@dataclass(frozen=True)
class Scene:
    """A run of frames with similar maximum luminance.

    ``start`` is inclusive, ``end`` exclusive.  ``max_luminance`` is the
    scene-wide maximum of the *raw* frame maxima (before any clipping).
    """

    start: int
    end: int
    max_luminance: float

    def __post_init__(self):
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid scene bounds [{self.start}, {self.end})")
        if not 0.0 <= self.max_luminance <= 1.0:
            raise ValueError(f"scene max luminance out of [0, 1]: {self.max_luminance}")

    @property
    def length(self) -> int:
        return self.end - self.start

    def __contains__(self, frame_index: int) -> bool:
        return self.start <= frame_index < self.end


class SceneDetector:
    """Threshold + rate-limited scene segmentation over frame statistics.

    A new scene opens at frame ``i`` when the frame's max luminance departs
    from the current scene's *reference* (the max luminance of the frame
    that opened the scene) by at least ``scene_change_threshold``
    relatively — but a change arriving sooner than
    ``min_scene_interval_frames`` after the current scene opened is
    suppressed, and the frame is absorbed into the current scene.
    """

    def __init__(self, params: SchemeParameters = SchemeParameters()):
        self.params = params

    # ------------------------------------------------------------------
    def _is_change(self, reference: float, value: float) -> bool:
        delta = abs(value - reference)
        if delta < _MIN_ABSOLUTE_CHANGE:
            return False
        denom = max(reference, _MIN_REFERENCE_LUMINANCE)
        return delta / denom >= self.params.scene_change_threshold

    def detect(self, stats: Sequence[FrameStats]) -> List[Scene]:
        """Segment a profiled stream into scenes.

        With ``params.per_frame`` set, every frame is its own scene (the
        flickery variant the paper mentions).
        """
        if not stats:
            raise ValueError("cannot detect scenes in an empty stream")
        maxima = np.array([s.max_value(self.params.color_safe) for s in stats])
        if self.params.per_frame:
            return [
                Scene(i, i + 1, float(maxima[i])) for i in range(len(stats))
            ]

        scenes: List[Scene] = []
        start = 0
        reference = float(maxima[0])
        scene_max = float(maxima[0])
        for i in range(1, len(stats)):
            value = float(maxima[i])
            old_enough = (i - start) >= self.params.min_scene_interval_frames
            if self._is_change(reference, value) and old_enough:
                scenes.append(Scene(start, i, scene_max))
                start = i
                reference = value
                scene_max = value
            else:
                scene_max = max(scene_max, value)
        scenes.append(Scene(start, len(stats), scene_max))
        return scenes

    # ------------------------------------------------------------------
    @staticmethod
    def scene_of(scenes: Sequence[Scene], frame_index: int) -> Scene:
        """Find the scene containing a frame (scenes must be contiguous)."""
        for scene in scenes:
            if frame_index in scene:
                return scene
        raise IndexError(f"frame {frame_index} not covered by any scene")

    @staticmethod
    def validate_partition(scenes: Sequence[Scene], frame_count: int) -> None:
        """Assert that scenes exactly tile ``[0, frame_count)``.

        Raises ``ValueError`` on gaps, overlaps or wrong extents — used by
        integration tests and as a cheap internal sanity check.
        """
        if not scenes:
            raise ValueError("no scenes")
        if scenes[0].start != 0:
            raise ValueError(f"first scene starts at {scenes[0].start}, expected 0")
        for prev, cur in zip(scenes, scenes[1:]):
            if cur.start != prev.end:
                raise ValueError(
                    f"scene gap/overlap: [{prev.start},{prev.end}) then [{cur.start},{cur.end})"
                )
        if scenes[-1].end != frame_count:
            raise ValueError(
                f"last scene ends at {scenes[-1].end}, expected {frame_count}"
            )

    @staticmethod
    def scene_max_series(scenes: Sequence[Scene], frame_count: int) -> np.ndarray:
        """Per-frame scene max luminance — Figure 6's 'Scene Max. Lum.'."""
        SceneDetector.validate_partition(scenes, frame_count)
        series = np.empty(frame_count)
        for scene in scenes:
            series[scene.start : scene.end] = scene.max_luminance
        return series
