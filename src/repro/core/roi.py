"""Region-of-interest (user-supervised) annotation.

Section 3 allows the annotation process to run "under user supervision
(for example, the user may specify which parts or objects of the video
stream are more important in a power-quality trade-off scenario)".

An :class:`ImportanceMap` assigns every pixel a non-negative weight; the
clipping budget then bounds the *importance mass* that may clip rather
than the raw pixel count.  A highlight inside a don't-care region (a
channel logo, letterbox bars, a corner flare) no longer forces the
backlight up, while highlights on the subject remain protected.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..quality.histogram import LuminanceHistogram, NUM_BINS
from ..video.clip import ClipBase
from ..video.frame import Frame
from .analyzer import FrameStats
from .scene import Scene
from .clipping import ClippingPolicy


class ImportanceMap:
    """Per-pixel importance weights for one frame geometry.

    Weights are non-negative; 1.0 is "normal" importance, 0 marks
    don't-care pixels.  Maps are geometry-bound: applying one to a frame
    of a different size is an error, not a silent resample.
    """

    def __init__(self, weights: np.ndarray):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"importance map must be 2-D, got shape {w.shape}")
        if np.any(w < 0):
            raise ValueError("importance weights must be non-negative")
        if not np.any(w > 0):
            raise ValueError("importance map marks every pixel as don't-care")
        self.weights = w

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, height: int, width: int) -> "ImportanceMap":
        """Every pixel equally important (degenerates to plain analysis)."""
        return cls(np.ones((height, width)))

    @classmethod
    def center_weighted(cls, height: int, width: int, sigma: float = 0.35,
                        floor: float = 0.05) -> "ImportanceMap":
        """Gaussian falloff from the frame center.

        The common default for hand-held viewing: the subject sits near
        the center; corners (logos, letterboxing) matter little.
        """
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        ys, xs = np.meshgrid(
            np.linspace(-0.5, 0.5, height), np.linspace(-0.5, 0.5, width),
            indexing="ij",
        )
        g = np.exp(-(xs**2 + ys**2) / (2 * sigma**2))
        return cls(floor + (1.0 - floor) * g)

    @classmethod
    def rectangle(cls, height: int, width: int, top: int, left: int,
                  bottom: int, right: int, inside: float = 1.0,
                  outside: float = 0.0) -> "ImportanceMap":
        """A rectangular region of interest (rows/cols half-open)."""
        if not (0 <= top < bottom <= height and 0 <= left < right <= width):
            raise ValueError("rectangle out of frame bounds")
        w = np.full((height, width), outside, dtype=np.float64)
        w[top:bottom, left:right] = inside
        return cls(w)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.weights.shape

    def for_frame(self, frame: Frame) -> np.ndarray:
        """Weights validated against a frame's geometry."""
        if self.weights.shape != (frame.height, frame.width):
            raise ValueError(
                f"importance map {self.weights.shape} does not match frame "
                f"{(frame.height, frame.width)}"
            )
        return self.weights

    def important_fraction(self, threshold: float = 0.5) -> float:
        """Fraction of pixels whose weight is at least ``threshold``."""
        return float((self.weights >= threshold).mean())


def weighted_frame_stats(frame: Frame, importance: ImportanceMap) -> FrameStats:
    """FrameStats whose histograms weigh pixels by importance.

    The max statistics remain the *unweighted* maxima of pixels with
    non-zero importance — a zero-weight pixel can clip freely, but any
    positively weighted pixel still counts toward the lossless maximum.
    """
    weights = importance.for_frame(frame)
    hist = LuminanceHistogram.of(frame, weights=weights)
    chan_hist = LuminanceHistogram.of(frame.peak_channel, weights=weights)
    cares = weights > 0
    max_lum = float(frame.luminance[cares].max())
    max_chan = float(frame.peak_channel[cares].max())
    return FrameStats(
        index=frame.index,
        histogram=hist,
        channel_histogram=chan_hist,
        max_luminance=max_lum,
        max_channel_value=max_chan,
        mean_luminance=hist.average_point / (NUM_BINS - 1),
    )


class RoiStreamAnalyzer:
    """Stream analyzer producing importance-weighted frame statistics.

    Drop-in replacement for
    :class:`~repro.core.analyzer.StreamAnalyzer` inside the pipeline: the
    downstream scene detection and clipping stages consume the weighted
    histograms unchanged, so the quality level becomes "at most q of the
    importance mass may clip".
    """

    def __init__(self, importance: ImportanceMap):
        self.importance = importance

    def analyze(self, clip: ClipBase) -> List[FrameStats]:
        """Profile every frame of a clip with importance weighting."""
        return self.analyze_frames(clip)

    def analyze_frames(self, frames: Iterable[Frame]) -> List[FrameStats]:
        """Profile an arbitrary frame stream with importance weighting."""
        stats = [weighted_frame_stats(frame, self.importance) for frame in frames]
        if not stats:
            raise ValueError("stream produced no frames to analyze")
        return stats


def roi_clipped_mass(frame: Frame, importance: ImportanceMap, gain: float) -> float:
    """Fraction of importance mass that saturates at ``gain``.

    The ROI analogue of the clipped-pixel fraction: the quantity the ROI
    quality level bounds.
    """
    if gain <= 0:
        raise ValueError("gain must be positive")
    weights = importance.for_frame(frame)
    total = weights.sum()
    clipped = weights[frame.peak_channel * gain > 1.0 + 1e-12].sum()
    return float(clipped / total)
