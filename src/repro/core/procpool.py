"""Process-pool profiling: shared-memory fan-out for the ``"processes"`` engine.

The thread engine scales the profiling pass only as far as the GIL lets
the numpy kernels overlap.  This module sidesteps the GIL entirely: the
clip's pixels are copied once into a ``multiprocessing.shared_memory``
block, chunk spans are fanned out over a persistent
``ProcessPoolExecutor``, and each worker attaches the block by name,
builds a zero-copy :class:`~repro.video.chunks.FrameChunk` view over its
span, and returns the picklable :class:`~repro.core.analyzer.FrameStats`
list.  Only histogram-sized results cross the process boundary — pixels
never travel through a pipe.

Shared-memory layout: one block per pass, holding the clip's
``(N, H, W, 3)`` uint8 planes contiguously (exactly the
:class:`~repro.video.clip.ArrayClip` layout).  Workers reconstruct the
view from ``(name, shape)`` and slice ``[start:stop]``; the parent
unlinks the block as soon as the pass completes.

The pool is created lazily on first use and kept for the lifetime of the
process (same persistence contract as the thread pools in
:mod:`repro.core.engine`).  Environments without working process pools —
sandboxes that forbid ``fork``, missing ``/dev/shm`` — raise
:class:`ProcessEngineUnavailable`, which callers treat as "use the
chunked path instead": the ``"processes"`` kind degrades, never fails.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from multiprocessing import shared_memory
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..video.chunks import FrameChunk, HeterogeneousFrameError, chunk_spans
from ..video.clip import ArrayClip, ClipBase

__all__ = [
    "ProcessEngineUnavailable",
    "analyze_clip_processes",
    "shared_process_pool",
    "shutdown_process_pool",
]


class ProcessEngineUnavailable(RuntimeError):
    """Raised when the ``"processes"`` engine cannot run in this environment.

    Callers fall back to the chunked path — the engines are bit-identical,
    so degrading is always safe.
    """


_POOL_LOCK = threading.Lock()
_PROCESS_POOL: Optional[ProcessPoolExecutor] = None
_PROCESS_POOL_WORKERS = 0


def shared_process_pool(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide ``ProcessPoolExecutor``, created lazily.

    A single pool is kept alive across passes; asking for a different
    worker count replaces it (worker processes are expensive, so exactly
    one pool exists at a time — unlike the per-count thread pools).
    """
    global _PROCESS_POOL, _PROCESS_POOL_WORKERS
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    with _POOL_LOCK:
        if _PROCESS_POOL is not None and _PROCESS_POOL_WORKERS == max_workers:
            return _PROCESS_POOL
        stale = _PROCESS_POOL
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except (OSError, ValueError, ImportError) as exc:
            raise ProcessEngineUnavailable(
                f"cannot start a process pool here: {exc}"
            ) from exc
        _PROCESS_POOL = pool
        _PROCESS_POOL_WORKERS = max_workers
    if stale is not None:
        stale.shutdown(wait=False)
    return pool


def shutdown_process_pool(wait: bool = True) -> None:
    """Tear down the persistent process pool (it re-creates lazily)."""
    global _PROCESS_POOL, _PROCESS_POOL_WORKERS
    with _POOL_LOCK:
        pool = _PROCESS_POOL
        _PROCESS_POOL = None
        _PROCESS_POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=wait)


def _profile_span(shm_name: str, shape: Tuple[int, ...], start: int, stop: int):
    """Worker-side kernel: profile frames ``[start, stop)`` of a shared clip.

    Runs in the pool worker.  Attaches the parent's shared-memory block,
    slices its span as a zero-copy :class:`FrameChunk`, and returns the
    batched stats.  ``np.bincount`` allocates fresh result arrays, so the
    returned :class:`FrameStats` hold no references into the block — it
    is safe to close before returning.
    """
    from .analyzer import chunk_frame_stats

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        pixels = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
        chunk = FrameChunk(pixels[start:stop], start=start)
        return chunk_frame_stats(chunk)
    finally:
        shm.close()


def _fill_shared_block(clip: ClipBase, shm: shared_memory.SharedMemory,
                       shape: Tuple[int, ...], chunk_size: int) -> None:
    """Copy the clip's pixels into the shared block, chunk by chunk.

    Raises :class:`HeterogeneousFrameError` for mixed-resolution clips —
    the caller's fallback handles those.
    """
    dest = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
    if isinstance(clip, ArrayClip):
        dest[:] = clip.pixels
        return
    for chunk in clip.iter_chunks(chunk_size):
        if chunk.pixels.shape[1:] != shape[1:]:
            raise HeterogeneousFrameError(
                f"clip mixes frame shapes: {chunk.pixels.shape[1:]} vs {shape[1:]}"
            )
        dest[chunk.start:chunk.stop] = chunk.pixels


def analyze_clip_processes(clip: ClipBase, config) -> List["FrameStats"]:  # noqa: F821
    """Profile a clip by fanning chunk spans over the process pool.

    Bit-identical to :func:`~repro.core.analyzer.chunk_frame_stats` over
    the same spans (it *is* that kernel, run in workers).  Raises
    :class:`ProcessEngineUnavailable` when pools or shared memory do not
    work here, and :class:`HeterogeneousFrameError` for mixed-resolution
    clips; callers degrade to the chunked / per-frame paths respectively.
    """
    from .engine import record_engine_pass

    frame_shape = clip.frame_shape()
    if frame_shape is None:
        raise ValueError("stream produced no frames to analyze")
    chunk_size = config.resolved_chunk_size(frame_shape)
    n = clip.frame_count
    shape = (n, int(frame_shape[0]), int(frame_shape[1]), 3)

    pool = shared_process_pool(config.resolved_workers())
    try:
        shm = shared_memory.SharedMemory(create=True, size=int(np.prod(shape)))
    except OSError as exc:
        raise ProcessEngineUnavailable(f"cannot allocate shared memory: {exc}") from exc

    wall_start = perf_counter()
    try:
        _fill_shared_block(clip, shm, shape, chunk_size)
        futures: List[Future] = [
            pool.submit(_profile_span, shm.name, shape, start, stop)
            for start, stop in chunk_spans(n, chunk_size)
        ]
        try:
            chunked = [future.result() for future in futures]
        except (BrokenExecutor, OSError) as exc:
            shutdown_process_pool(wait=False)
            raise ProcessEngineUnavailable(f"process pool failed: {exc}") from exc
    finally:
        shm.close()
        shm.unlink()
    wall = perf_counter() - wall_start

    stats = [s for chunk_stats in chunked for s in chunk_stats]
    # Workers time only their own span; the parent attributes the whole
    # pass (copy-in + fan-out + collect) so the processes series is
    # comparable with the inline engines.
    record_engine_pass(
        "processes",
        durations=[wall / max(1, len(chunked))] * len(chunked),
        frames=len(stats),
        wall=wall,
    )
    return stats
