"""Core technique: stream analysis, scenes, clipping, compensation, annotations."""

from .policy import QUALITY_LABELS, QUALITY_LEVELS, SchemeParameters, quality_label
from .analyzer import FrameStats, StreamAnalyzer, chunk_frame_stats
from .engine import (
    ENGINE_KINDS,
    EngineConfig,
    EngineSpec,
    map_chunks,
    resolve_engine,
    shutdown_pools,
)
from .procpool import ProcessEngineUnavailable, analyze_clip_processes
from .profile_cache import (
    ProfileCache,
    clip_fingerprint,
    profile_params_key,
    shared_profile_cache,
)
from .scene import Scene, SceneDetector
from .scene_histogram import HistogramSceneDetector
from .clipping import (
    ClippingPolicy,
    FixedPercentPerFrame,
    FixedPercentPerScene,
    NoClipping,
    policy_for_quality,
)
from .compensation import (
    CompensationResult,
    brightness_compensation,
    compensate_for_backlight,
    contrast_enhancement,
    contrast_enhancement_batch,
)
from .annotation import (
    AnnotationTrack,
    DeviceAnnotationTrack,
    DeviceSceneAnnotation,
    SceneAnnotation,
)
from .rle import (
    compression_ratio,
    decode_varint,
    encode_varint,
    expand_runs,
    rle_decode,
    rle_encode,
    runs_of,
)
from .pipeline import (
    AnnotatedStream,
    AnnotationPipeline,
    CompensatedChunk,
    ProfileResult,
    run_pipeline,
    sweep_quality_levels,
)
from .dvfs_annotation import DvfsAnnotator, DvfsSceneAnnotation, DvfsTrack
from .smoothing import max_level_step, ramped_levels, smooth_track
from .roi import (
    ImportanceMap,
    RoiStreamAnalyzer,
    roi_clipped_mass,
    weighted_frame_stats,
)

__all__ = [
    "QUALITY_LEVELS",
    "QUALITY_LABELS",
    "quality_label",
    "SchemeParameters",
    "FrameStats",
    "StreamAnalyzer",
    "chunk_frame_stats",
    "ENGINE_KINDS",
    "EngineConfig",
    "EngineSpec",
    "resolve_engine",
    "map_chunks",
    "shutdown_pools",
    "ProcessEngineUnavailable",
    "analyze_clip_processes",
    "ProfileCache",
    "clip_fingerprint",
    "profile_params_key",
    "shared_profile_cache",
    "Scene",
    "SceneDetector",
    "HistogramSceneDetector",
    "ClippingPolicy",
    "NoClipping",
    "FixedPercentPerFrame",
    "FixedPercentPerScene",
    "policy_for_quality",
    "CompensationResult",
    "brightness_compensation",
    "contrast_enhancement",
    "contrast_enhancement_batch",
    "compensate_for_backlight",
    "SceneAnnotation",
    "DeviceSceneAnnotation",
    "AnnotationTrack",
    "DeviceAnnotationTrack",
    "encode_varint",
    "decode_varint",
    "runs_of",
    "expand_runs",
    "rle_encode",
    "rle_decode",
    "compression_ratio",
    "AnnotationPipeline",
    "AnnotatedStream",
    "CompensatedChunk",
    "ProfileResult",
    "run_pipeline",
    "sweep_quality_levels",
    "DvfsAnnotator",
    "DvfsSceneAnnotation",
    "DvfsTrack",
    "ImportanceMap",
    "RoiStreamAnalyzer",
    "weighted_frame_stats",
    "roi_clipped_mass",
    "smooth_track",
    "ramped_levels",
    "max_level_step",
]
