"""The end-to-end annotation pipeline (server/proxy side).

Ties the stages of Section 4 together:

1. profile the clip (:class:`~repro.core.analyzer.StreamAnalyzer`),
2. group frames into scenes (:class:`~repro.core.scene.SceneDetector`),
3. let the active :class:`~repro.core.policies.BacklightPolicy` annotate
   each scene (the default, :class:`~repro.core.policies.ClipQualityPolicy`,
   is the paper's clipping heuristic),
4. emit the device-independent :class:`~repro.core.annotation.AnnotationTrack`,
5. optionally bind it to a device (backlight levels + gains) and
   compensate frames for streaming with the policy's pixel transform.

:class:`AnnotatedStream` is the shippable artifact: the clip plus its
device track, iterable as (compensated frame, backlight level) pairs — the
exact thing the client plays back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..display.devices import DeviceProfile
from ..power.measurement import simulated_backlight_savings
from ..telemetry import registry, trace
from ..video.chunks import DEFAULT_CHUNK_SIZE, HeterogeneousFrameError, autotune_chunk_size
from ..video.clip import ClipBase
from ..video.frame import Frame
from .analyzer import FrameStats, StreamAnalyzer
from .annotation import (
    CLIP_QUALITY_POLICY,
    AnnotationTrack,
    DeviceAnnotationTrack,
    SceneAnnotation,
)
from .compensation import (
    ChunkArena,
    CompensationResult,
    contrast_enhancement,
    contrast_enhancement_batch,
    gain_lut,
)
from .engine import EngineSpec
from .policies import BacklightPolicy, ClipQualityPolicy, PolicySpec, get_policy, resolve_policy
from .policy import SchemeParameters
from .profile_cache import ProfileCache, shared_profile_cache
from .scene import Scene, SceneDetector


@dataclass(frozen=True)
class ProfileResult:
    """Intermediate products of the profiling stages (for Figure 6)."""

    stats: List[FrameStats]
    scenes: List[Scene]

    def max_luminance_series(self) -> np.ndarray:
        """Per-frame maximum luminance (Figure 6's first curve)."""
        return StreamAnalyzer.max_luminance_series(self.stats)

    def scene_max_series(self) -> np.ndarray:
        """Per-frame scene maximum (Figure 6's step function)."""
        return SceneDetector.scene_max_series(self.scenes, len(self.stats))


class AnnotationPipeline:
    """Turns raw clips into annotated streams.

    Parameters
    ----------
    params:
        Scheme parameters (quality level, scene thresholds).
    per_scene_clipping:
        Use the pooled-histogram clipping variant instead of the default
        per-frame budget.
    importance:
        Optional region-of-interest weighting (user-supervised
        annotation, Section 3).  When given, the quality level bounds the
        clipped *importance mass* instead of the raw pixel count.
    engine:
        Execution engine for the profiling pass (``None``, a kind name, or
        an :class:`~repro.core.engine.EngineConfig`); forwarded to
        :class:`~repro.core.analyzer.StreamAnalyzer`.  Ignored for
        importance-weighted analysis.
    profile_cache:
        Optional content-keyed :class:`~repro.core.profile_cache.ProfileCache`
        consulted by :meth:`profile`.  Only plain (unweighted) analysis is
        cached — importance maps are not part of the cache key.
    policy:
        The :class:`~repro.core.policies.BacklightPolicy` deciding how
        scenes become annotations (``None``, a registered name, or an
        instance).  ``None`` and ``"clip-quality"`` select the paper's
        default scheme, honoring ``per_scene_clipping``.
    """

    def __init__(self, params: SchemeParameters = SchemeParameters(),
                 per_scene_clipping: bool = False, importance=None,
                 engine: EngineSpec = None,
                 profile_cache: Optional[ProfileCache] = None,
                 policy: PolicySpec = None):
        self.params = params
        if importance is None:
            self.analyzer = StreamAnalyzer(engine=engine)
        else:
            from .roi import RoiStreamAnalyzer

            self.analyzer = RoiStreamAnalyzer(importance)
        self.detector = SceneDetector(params)
        if policy is None or policy == CLIP_QUALITY_POLICY:
            self.policy: BacklightPolicy = ClipQualityPolicy(
                per_scene_clipping=per_scene_clipping
            )
        else:
            self.policy = resolve_policy(policy)
        self.profile_cache = profile_cache

    # ------------------------------------------------------------------
    def profile(self, clip: ClipBase) -> ProfileResult:
        """Run the analysis + scene-detection stages only.

        When a profile cache is attached (and the analyzer is the plain
        :class:`StreamAnalyzer`), the result is shared by content: every
        quality variant, device binding, and cache-sharing server reuses
        one profiling pass per clip.  Treat cached results as read-only.
        """
        if self.profile_cache is not None and type(self.analyzer) is StreamAnalyzer:
            return self.profile_cache.get_or_compute(
                clip,
                self.params,
                lambda: self._profile_uncached(clip),
                policy=self.policy,
            )
        return self._profile_uncached(clip)

    def _profile_uncached(self, clip: ClipBase) -> ProfileResult:
        with trace("pipeline.profile"):
            with trace("pipeline.analyze"):
                stats = self.analyzer.analyze(clip)
            with trace("pipeline.scene_grouping"):
                scenes = self.detector.detect(stats)
                SceneDetector.validate_partition(scenes, len(stats))
        return ProfileResult(stats=stats, scenes=scenes)

    def annotate(self, clip: ClipBase, profile: Optional[ProfileResult] = None) -> AnnotationTrack:
        """Produce the device-independent annotation track for a clip."""
        if profile is None:
            profile = self.profile(clip)
        with trace("pipeline.clip"):
            with trace(f"policy.{self.policy.name}"):
                scenes = self.policy.annotate_scenes(
                    profile.scenes, profile.stats, self.params
                )
        registry().counter(
            "repro_policy_scenes_total",
            "Scenes annotated, by backlight policy",
            labels={"policy": self.policy.name},
        ).inc(len(scenes))
        return AnnotationTrack(
            clip_name=clip.name,
            frame_count=clip.frame_count,
            fps=clip.fps,
            quality=self.params.quality,
            scenes=scenes,
        )

    def annotate_for_device(
        self, clip: ClipBase, device: DeviceProfile,
        profile: Optional[ProfileResult] = None,
    ) -> DeviceAnnotationTrack:
        """Annotate and bind to a device in one step."""
        return self.annotate(clip, profile=profile).bind(device)

    def build_stream(self, clip: ClipBase, device: DeviceProfile) -> "AnnotatedStream":
        """Full server-side processing: annotate, bind, wrap for shipping."""
        profile = self.profile(clip)
        track = self.annotate_for_device(clip, device, profile=profile)
        # Importance-weighted analysis produces *weighted* histograms, so
        # only the plain analyzer's exact peak-channel counts may seed
        # the stream's precomputed clipped fractions.
        if type(self.analyzer) is not StreamAnalyzer:
            profile = None
        return AnnotatedStream(
            clip=clip, track=track, device=device, profile=profile
        )


@dataclass(frozen=True)
class CompensatedChunk:
    """A batch of compensated frames plus their playback annotations.

    Attributes
    ----------
    pixels:
        Compensated ``(N, H, W, 3)`` uint8 batch.
    start:
        Global index of the first frame in the batch.
    levels:
        Per-frame backlight levels, ``(N,)``.
    gains:
        Per-frame compensation gains applied, ``(N,)``.
    clipped_fractions:
        Per-frame fraction of pixels that clipped, ``(N,)``.
    """

    pixels: np.ndarray
    start: int
    levels: np.ndarray
    gains: np.ndarray
    clipped_fractions: np.ndarray

    def __len__(self) -> int:
        return self.pixels.shape[0]

    @property
    def stop(self) -> int:
        """Global index one past the last frame in the chunk."""
        return self.start + len(self)

    def frame(self, offset: int) -> Frame:
        """Materialize compensated frame ``offset`` (chunk-local)."""
        if not 0 <= offset < len(self):
            raise IndexError(f"chunk offset {offset} out of range [0, {len(self)})")
        return Frame(self.pixels[offset], index=self.start + offset)

    def frames(self) -> List[Frame]:
        """Materialize every compensated frame in the chunk."""
        return [self.frame(k) for k in range(len(self))]


class AnnotatedStream:
    """A clip bundled with its device annotation track.

    Iterating yields ``(compensated_frame, backlight_level)`` pairs —
    compensation is applied lazily, which is how the server/proxy streams
    ("the compensation of the frames in the video stream is performed at
    either the server or the intermediary proxy node").  Internally the
    stream compensates whole chunks at a time via
    :func:`~repro.core.compensation.contrast_enhancement_batch`;
    :meth:`iter_chunks` exposes the batched form directly.
    """

    def __init__(
        self,
        clip: ClipBase,
        track: DeviceAnnotationTrack,
        device: DeviceProfile,
        profile: Optional[ProfileResult] = None,
    ):
        if track.frame_count != clip.frame_count:
            raise ValueError(
                f"track covers {track.frame_count} frames, clip has {clip.frame_count}"
            )
        self.clip = clip
        self.track = track
        self.device = device
        # Per-frame FrameStats from the (plain-analyzer) profiling pass,
        # when the builder had them: their exact peak-channel histograms
        # let clipped fractions be derived without touching pixels.
        self._profile_stats = (
            profile.stats
            if profile is not None and len(profile.stats) == clip.frame_count
            else None
        )
        self._levels = track.per_frame_levels()
        self._gains = track.per_frame_gains()
        self.policy = get_policy(track.policy)
        self._transforms = [
            self.policy.transform_for_scene(scene) for scene in track.scenes
        ]
        # Gain-only tracks (the default scheme) keep the historical
        # vectorized path: one batched kernel call per chunk, driven by
        # the per-frame gain vector — bit-identical to the pre-policy
        # stream.  Other transforms apply per scene run.
        self._all_gain = all(t.is_gain for t in self._transforms)
        self._scene_starts = np.array([s.start for s in track.scenes], dtype=np.int64)
        self._clipped_fractions: Optional[np.ndarray] = None
        self._fraction_cache: Dict[int, float] = {}

    def _transform_at(self, index: int):
        """The pixel transform covering frame ``index``."""
        scene = int(np.searchsorted(self._scene_starts, index, side="right")) - 1
        return self._transforms[scene]

    def next_scene_start(self, index: int) -> int:
        """Smallest scene start ``>= index`` (``frame_count`` when none).

        The scene partition comes from the profiling pass, so it is
        identical across quality levels and ambient binds of the same
        clip — mid-stream adaptation uses this to pick the switch
        boundary where two bindings agree on scene extents.
        """
        if index <= 0:
            return 0
        pos = int(np.searchsorted(self._scene_starts, index, side="left"))
        if pos >= len(self._scene_starts):
            return self.frame_count
        return int(self._scene_starts[pos])

    def _scene_runs(self, start: int, stop: int) -> Iterator[Tuple[int, int, "object"]]:
        """Split ``[start, stop)`` into per-scene (lo, hi, transform) runs."""
        for scene, transform in zip(self.track.scenes, self._transforms):
            lo = max(scene.start, start)
            hi = min(scene.end, stop)
            if lo < hi:
                yield lo, hi, transform

    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return self.clip.frame_count

    @property
    def fps(self) -> float:
        return self.clip.fps

    def backlight_levels(self) -> np.ndarray:
        """Per-frame backlight schedule (copy)."""
        return self._levels.copy()

    def compensated_frame(self, index: int) -> CompensationResult:
        """Compensate frame ``index`` for its annotated backlight level."""
        frame = self.clip.frame(index)
        if self._all_gain:
            gain = float(self._gains[index])
            if gain <= 1.0:
                return CompensationResult(frame=frame.copy(), clipped_fraction=0.0)
            return contrast_enhancement(frame, gain)
        return self._transform_at(index).apply_frame(frame)

    def iter_chunks(
        self,
        chunk_size: Optional[int] = None,
        lead: Optional[int] = None,
        reuse_output: bool = False,
        start: int = 0,
    ) -> Iterator[CompensatedChunk]:
        """Yield the compensated stream as :class:`CompensatedChunk` batches.

        Bit-identical to calling :meth:`compensated_frame` per frame, but
        the normalize → scale → clip → quantize math runs once per chunk.
        ``chunk_size=None`` (the default) autotunes the span from the
        clip's frame geometry, matching the profiling pass.  A positive
        ``lead`` shrinks only the first chunk so the opening frames are
        ready before the first full-size chunk finishes (streaming's
        time-to-first-frame lever).  A positive ``start`` begins emission
        mid-clip — mid-stream adaptation re-binds a session at a scene
        boundary and continues from there without recompensating the
        prefix.  ``reuse_output=True`` compensates
        into a reused :class:`~repro.core.compensation.ChunkArena`
        buffer: each yielded chunk's pixels are overwritten by the next
        iteration, so the consumer must fully copy/encode a chunk before
        advancing.  Raises
        :class:`~repro.video.chunks.HeterogeneousFrameError` for clips
        that mix frame resolutions (use the per-frame API there).
        """
        if chunk_size is None:
            shape = self.clip.frame_shape()
            chunk_size = (
                autotune_chunk_size(shape[0], shape[1])
                if shape is not None
                else DEFAULT_CHUNK_SIZE
            )
        frames_counter = registry().counter(
            "repro_policy_frames_total",
            "Frames compensated, by backlight policy",
            labels={"policy": self.policy.name},
        )
        arena = ChunkArena() if reuse_output else None
        for chunk in self.clip.iter_chunks(chunk_size, lead=lead, start=start):
            gains = self._gains[chunk.start : chunk.stop]
            with trace("pipeline.compensate"):
                pixels, fractions = self._compensate_pixels(
                    chunk.pixels, chunk.start, chunk.stop, gains, arena=arena
                )
            frames_counter.inc(chunk.stop - chunk.start)
            yield CompensatedChunk(
                pixels=pixels,
                start=chunk.start,
                levels=self._levels[chunk.start : chunk.stop],
                gains=gains,
                clipped_fractions=fractions,
            )

    def _histogram_fractions(self) -> Optional[np.ndarray]:
        """Per-frame clipped fractions from the profile's histograms.

        The analyzer's ``channel_histogram`` counts each frame's peak
        channel bytes exactly, and a pixel clips at gain ``g`` iff its
        peak byte is >= the LUT's clip code — so the clipped fraction is
        a histogram tail sum over total pixels, bit-identical to the
        pixel-path reduction (both divide the same integer count by the
        same pixel total in float64).  Computed once per stream, O(256)
        per frame; returns ``None`` when profile stats are unavailable
        or the track is not gain-only.  Fills the same
        ``_clipped_fractions`` cache the quality metrics use.
        """
        if not self._all_gain or self._profile_stats is None:
            return None
        if self._clipped_fractions is None:
            shape = self.clip.frame_shape()
            if shape is None:
                return None  # mixed resolutions: per-frame path handles it
            npix = int(shape[0]) * int(shape[1])
            fractions = np.zeros(self.frame_count)
            for i, stats in enumerate(self._profile_stats):
                gain = float(self._gains[i])
                if gain <= 1.0:
                    continue
                counts = stats.channel_histogram.counts
                if int(counts.sum()) != npix:
                    return None  # weighted/partial histograms: no shortcut
                _, clip_code = gain_lut(gain)
                if clip_code < len(counts):
                    fractions[i] = int(counts[clip_code:].sum()) / npix
            self._clipped_fractions = fractions
        return self._clipped_fractions

    def _compensate_pixels(
        self,
        pixels: np.ndarray,
        start: int,
        stop: int,
        gains: np.ndarray,
        arena: Optional[ChunkArena] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compensate one raw chunk: vectorized gains or per-scene runs."""
        if self._all_gain:
            out = arena.request(pixels.shape) if arena is not None else None
            fractions = self._histogram_fractions()
            if fractions is not None:
                fractions = fractions[start:stop]
            return contrast_enhancement_batch(
                pixels, gains, out=out, fractions=fractions
            )
        out_parts = []
        fraction_parts = []
        for lo, hi, transform in self._scene_runs(start, stop):
            part, fractions = transform.apply_batch(pixels[lo - start : hi - start])
            out_parts.append(part)
            fraction_parts.append(fractions)
        return np.concatenate(out_parts), np.concatenate(fraction_parts)

    def __iter__(self) -> Iterator[Tuple[Frame, int]]:
        produced = 0
        try:
            for chunk in self.iter_chunks():
                for k in range(len(chunk)):
                    yield chunk.frame(k), int(chunk.levels[k])
                    produced += 1
        except HeterogeneousFrameError:
            # Mixed-resolution clip: finish with the per-frame path.
            for i in range(produced, self.frame_count):
                yield self.compensated_frame(i).frame, int(self._levels[i])

    # ------------------------------------------------------------------
    def predicted_backlight_savings(self) -> float:
        """The Figure 9 simulated-savings number for this stream."""
        return simulated_backlight_savings(self._levels, self.device)

    def instantaneous_savings(self) -> np.ndarray:
        """Per-frame backlight power savings — Figure 6's third curve."""
        backlight = self.device.backlight
        return np.asarray(backlight.savings_fraction(self._levels))

    def _clipped_fraction_at(self, index: int) -> float:
        # A pixel clips iff its *peak channel* exceeds 1/gain, so the
        # fraction needs only the cached peak-channel plane — no
        # compensated frame is materialized.  Exact: x -> (x/255) * gain
        # is monotone, so the per-channel "any" reduces to the peak.
        # Non-gain transforms define their own clipping criterion.
        cached = self._fraction_cache.get(index)
        if cached is None:
            if self._all_gain:
                gain = float(self._gains[index])
                plane = self.clip.peak_channel_plane(index)
                cached = float((plane * gain > 1.0 + 1e-12).mean())
            else:
                cached = self.compensated_frame(index).clipped_fraction
            self._fraction_cache[index] = cached
        return cached

    def _all_clipped_fractions(self) -> np.ndarray:
        if self._clipped_fractions is None:
            try:
                parts = []
                for chunk in self.clip.iter_chunks():
                    if self._all_gain:
                        gains = self._gains[chunk.start : chunk.stop]
                        values = chunk.peak_channel * gains[:, None, None]
                        parts.append((values > 1.0 + 1e-12).mean(axis=(1, 2)))
                    else:
                        for lo, hi, transform in self._scene_runs(
                            chunk.start, chunk.stop
                        ):
                            parts.append(
                                transform.batch_clipped_fractions(
                                    chunk.pixels[lo - chunk.start : hi - chunk.start]
                                )
                            )
                self._clipped_fractions = np.concatenate(parts)
            except HeterogeneousFrameError:
                self._clipped_fractions = np.array(
                    [self._clipped_fraction_at(i) for i in range(self.frame_count)]
                )
        return self._clipped_fractions

    def mean_clipped_fraction(self, sample_every: int = 1) -> float:
        """Average fraction of clipped pixels over (sampled) frames.

        Computed from the batched peak-channel planes (cached after the
        first call), so quality metrics no longer re-compensate frames
        that the playback path already compensated.
        """
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if sample_every == 1 or self._clipped_fractions is not None:
            return float(np.mean(self._all_clipped_fractions()[::sample_every]))
        fractions = [
            self._clipped_fraction_at(i)
            for i in range(0, self.frame_count, sample_every)
        ]
        return float(np.mean(fractions))

    def __repr__(self) -> str:
        return (
            f"AnnotatedStream({self.clip.name!r} on {self.device.name!r}, "
            f"quality={self.track.quality:.0%}, "
            f"savings={self.predicted_backlight_savings():.1%})"
        )


def sweep_quality_levels(
    clip: ClipBase,
    device: DeviceProfile,
    qualities: Sequence[float],
    params: SchemeParameters = SchemeParameters(),
    engine: EngineSpec = None,
    profile_cache: Optional[ProfileCache] = None,
    policy: PolicySpec = None,
) -> List[AnnotatedStream]:
    """Annotate one clip at several quality levels, reusing the profile.

    The profiling pass (the expensive part) runs once; only clipping and
    binding differ per quality level.  This mirrors the server preparing
    its five quality variants of each clip.  By default the profile is
    also shared through the process-wide content-keyed cache, so repeated
    sweeps (or a co-resident :class:`~repro.streaming.server.MediaServer`)
    do not re-profile the same pixels; pass a dedicated
    :class:`~repro.core.profile_cache.ProfileCache` (or one with
    ``max_entries=0``) to isolate.
    """
    if profile_cache is None:
        profile_cache = shared_profile_cache()
    pipeline = AnnotationPipeline(
        params, engine=engine, profile_cache=profile_cache, policy=policy
    )
    profile = pipeline.profile(clip)
    streams = []
    for q in qualities:
        q_pipeline = AnnotationPipeline(params.with_quality(q), policy=policy)
        track = q_pipeline.annotate(clip, profile=profile).bind(device)
        streams.append(AnnotatedStream(clip=clip, track=track, device=device))
    return streams
