"""The end-to-end annotation pipeline (server/proxy side).

Ties the stages of Section 4 together:

1. profile the clip (:class:`~repro.core.analyzer.StreamAnalyzer`),
2. group frames into scenes (:class:`~repro.core.scene.SceneDetector`),
3. apply the clipping heuristic per scene
   (:mod:`repro.core.clipping`),
4. emit the device-independent :class:`~repro.core.annotation.AnnotationTrack`,
5. optionally bind it to a device (backlight levels + gains) and
   compensate frames for streaming.

:class:`AnnotatedStream` is the shippable artifact: the clip plus its
device track, iterable as (compensated frame, backlight level) pairs — the
exact thing the client plays back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..display.devices import DeviceProfile
from ..power.measurement import simulated_backlight_savings
from ..video.clip import ClipBase
from ..video.frame import Frame
from .analyzer import FrameStats, StreamAnalyzer
from .annotation import AnnotationTrack, DeviceAnnotationTrack, SceneAnnotation
from .clipping import ClippingPolicy, policy_for_quality
from .compensation import CompensationResult, contrast_enhancement
from .policy import SchemeParameters
from .scene import Scene, SceneDetector


@dataclass(frozen=True)
class ProfileResult:
    """Intermediate products of the profiling stages (for Figure 6)."""

    stats: List[FrameStats]
    scenes: List[Scene]

    def max_luminance_series(self) -> np.ndarray:
        """Per-frame maximum luminance (Figure 6's first curve)."""
        return StreamAnalyzer.max_luminance_series(self.stats)

    def scene_max_series(self) -> np.ndarray:
        """Per-frame scene maximum (Figure 6's step function)."""
        return SceneDetector.scene_max_series(self.scenes, len(self.stats))


class AnnotationPipeline:
    """Turns raw clips into annotated streams.

    Parameters
    ----------
    params:
        Scheme parameters (quality level, scene thresholds).
    per_scene_clipping:
        Use the pooled-histogram clipping variant instead of the default
        per-frame budget.
    importance:
        Optional region-of-interest weighting (user-supervised
        annotation, Section 3).  When given, the quality level bounds the
        clipped *importance mass* instead of the raw pixel count.
    """

    def __init__(self, params: SchemeParameters = SchemeParameters(),
                 per_scene_clipping: bool = False, importance=None):
        self.params = params
        if importance is None:
            self.analyzer = StreamAnalyzer()
        else:
            from .roi import RoiStreamAnalyzer

            self.analyzer = RoiStreamAnalyzer(importance)
        self.detector = SceneDetector(params)
        self.clipping: ClippingPolicy = policy_for_quality(
            params.quality, per_scene=per_scene_clipping, color_safe=params.color_safe
        )

    # ------------------------------------------------------------------
    def profile(self, clip: ClipBase) -> ProfileResult:
        """Run the analysis + scene-detection stages only."""
        stats = self.analyzer.analyze(clip)
        scenes = self.detector.detect(stats)
        SceneDetector.validate_partition(scenes, len(stats))
        return ProfileResult(stats=stats, scenes=scenes)

    def annotate(self, clip: ClipBase, profile: Optional[ProfileResult] = None) -> AnnotationTrack:
        """Produce the device-independent annotation track for a clip."""
        if profile is None:
            profile = self.profile(clip)
        scenes = [
            SceneAnnotation(
                start=scene.start,
                end=scene.end,
                effective_max_luminance=self.clipping.effective_max(scene, profile.stats),
            )
            for scene in profile.scenes
        ]
        return AnnotationTrack(
            clip_name=clip.name,
            frame_count=clip.frame_count,
            fps=clip.fps,
            quality=self.params.quality,
            scenes=scenes,
        )

    def annotate_for_device(
        self, clip: ClipBase, device: DeviceProfile,
        profile: Optional[ProfileResult] = None,
    ) -> DeviceAnnotationTrack:
        """Annotate and bind to a device in one step."""
        return self.annotate(clip, profile=profile).bind(device)

    def build_stream(self, clip: ClipBase, device: DeviceProfile) -> "AnnotatedStream":
        """Full server-side processing: annotate, bind, wrap for shipping."""
        track = self.annotate_for_device(clip, device)
        return AnnotatedStream(clip=clip, track=track, device=device)


class AnnotatedStream:
    """A clip bundled with its device annotation track.

    Iterating yields ``(compensated_frame, backlight_level)`` pairs —
    compensation is applied lazily, frame by frame, which is how the
    server/proxy streams ("the compensation of the frames in the video
    stream is performed at either the server or the intermediary proxy
    node").
    """

    def __init__(self, clip: ClipBase, track: DeviceAnnotationTrack, device: DeviceProfile):
        if track.frame_count != clip.frame_count:
            raise ValueError(
                f"track covers {track.frame_count} frames, clip has {clip.frame_count}"
            )
        self.clip = clip
        self.track = track
        self.device = device
        self._levels = track.per_frame_levels()
        self._gains = track.per_frame_gains()

    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return self.clip.frame_count

    @property
    def fps(self) -> float:
        return self.clip.fps

    def backlight_levels(self) -> np.ndarray:
        """Per-frame backlight schedule (copy)."""
        return self._levels.copy()

    def compensated_frame(self, index: int) -> CompensationResult:
        """Compensate frame ``index`` for its annotated backlight level."""
        frame = self.clip.frame(index)
        gain = float(self._gains[index])
        if gain <= 1.0:
            return CompensationResult(frame=frame.copy(), clipped_fraction=0.0)
        return contrast_enhancement(frame, gain)

    def __iter__(self) -> Iterator[Tuple[Frame, int]]:
        for i in range(self.frame_count):
            yield self.compensated_frame(i).frame, int(self._levels[i])

    # ------------------------------------------------------------------
    def predicted_backlight_savings(self) -> float:
        """The Figure 9 simulated-savings number for this stream."""
        return simulated_backlight_savings(self._levels, self.device)

    def instantaneous_savings(self) -> np.ndarray:
        """Per-frame backlight power savings — Figure 6's third curve."""
        backlight = self.device.backlight
        return np.asarray(backlight.savings_fraction(self._levels))

    def mean_clipped_fraction(self, sample_every: int = 1) -> float:
        """Average fraction of clipped pixels over (sampled) frames."""
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        fractions = [
            self.compensated_frame(i).clipped_fraction
            for i in range(0, self.frame_count, sample_every)
        ]
        return float(np.mean(fractions))

    def __repr__(self) -> str:
        return (
            f"AnnotatedStream({self.clip.name!r} on {self.device.name!r}, "
            f"quality={self.track.quality:.0%}, "
            f"savings={self.predicted_backlight_savings():.1%})"
        )


def sweep_quality_levels(
    clip: ClipBase,
    device: DeviceProfile,
    qualities: Sequence[float],
    params: SchemeParameters = SchemeParameters(),
) -> List[AnnotatedStream]:
    """Annotate one clip at several quality levels, reusing the profile.

    The profiling pass (the expensive part) runs once; only clipping and
    binding differ per quality level.  This mirrors the server preparing
    its five quality variants of each clip.
    """
    pipeline = AnnotationPipeline(params)
    profile = pipeline.profile(clip)
    streams = []
    for q in qualities:
        q_pipeline = AnnotationPipeline(params.with_quality(q))
        track = q_pipeline.annotate(clip, profile=profile).bind(device)
        streams.append(AnnotatedStream(clip=clip, track=track, device=device))
    return streams
