"""Clipping heuristics: trading bright pixels for backlight headroom.

Section 4.3: "Since in many cases a small number of pixels amount for the
high luminance levels and are sparsely distributed within the frame, we can
safely allow clipping for some of these pixels ...  Different heuristics
for determining the amount of clipped pixels are possible.  In our scheme
we allow a fixed percent of the very bright pixels to be clipped."

A clipping policy maps a scene (its member frames' statistics) to the
scene's *effective maximum luminance* — the luminance that compensation
will raise to full scale and that the backlight must reproduce.
"""

from __future__ import annotations

from typing import Sequence

from ..quality.histogram import LuminanceHistogram, NUM_BINS
from .analyzer import FrameStats
from .scene import Scene


class ClippingPolicy:
    """Interface: scene statistics -> effective max luminance in [0, 1]."""

    def effective_max(self, scene: Scene, stats: Sequence[FrameStats]) -> float:
        """Effective maximum luminance for the scene.

        ``stats`` is the whole stream's statistics; the policy reads the
        slice ``stats[scene.start : scene.end]``.
        """
        raise NotImplementedError

    @staticmethod
    def _scene_stats(scene: Scene, stats: Sequence[FrameStats]) -> Sequence[FrameStats]:
        if scene.end > len(stats):
            raise ValueError(
                f"scene [{scene.start}, {scene.end}) exceeds stream length {len(stats)}"
            )
        return stats[scene.start : scene.end]


class NoClipping(ClippingPolicy):
    """Lossless scheme: no pixel may clip (the paper's 0 % quality level).

    The effective max is the scene's true maximum; savings come purely
    from scenes that never reach full white.
    """

    def __init__(self, color_safe: bool = True):
        self.color_safe = color_safe

    def effective_max(self, scene: Scene, stats: Sequence[FrameStats]) -> float:
        """Scene true maximum — nothing may clip."""
        members = self._scene_stats(scene, stats)
        return max(s.max_value(self.color_safe) for s in members)


class FixedPercentPerFrame(ClippingPolicy):
    """Allow up to ``clip_fraction`` of *each frame's* pixels to clip.

    The scene's effective max is the worst (largest) per-frame clipped
    maximum: every member frame individually respects the quality budget.
    This is the conservative reading of the paper's heuristic and the
    default policy.
    """

    def __init__(self, clip_fraction: float, color_safe: bool = True):
        if not 0.0 <= clip_fraction <= 1.0:
            raise ValueError(f"clip_fraction must be in [0, 1], got {clip_fraction}")
        self.clip_fraction = clip_fraction
        self.color_safe = color_safe

    def effective_max(self, scene: Scene, stats: Sequence[FrameStats]) -> float:
        """Worst member frame's clipped maximum (per-frame budget)."""
        members = self._scene_stats(scene, stats)
        return max(s.effective_max(self.clip_fraction, self.color_safe) for s in members)

    def __repr__(self) -> str:
        return f"FixedPercentPerFrame({self.clip_fraction:g})"


class FixedPercentPerScene(ClippingPolicy):
    """Allow up to ``clip_fraction`` of the *scene's aggregate* pixels to clip.

    The member frames' histograms are merged and the clip point taken on
    the pooled distribution.  More aggressive than the per-frame variant:
    a single bright frame inside a dark scene can exceed its individual
    budget as long as the scene average holds.
    """

    def __init__(self, clip_fraction: float, color_safe: bool = True):
        if not 0.0 <= clip_fraction <= 1.0:
            raise ValueError(f"clip_fraction must be in [0, 1], got {clip_fraction}")
        self.clip_fraction = clip_fraction
        self.color_safe = color_safe

    def _histogram_of(self, stats: FrameStats) -> LuminanceHistogram:
        return stats.channel_histogram if self.color_safe else stats.histogram

    def effective_max(self, scene: Scene, stats: Sequence[FrameStats]) -> float:
        """Clip point of the scene's pooled histogram (scene budget)."""
        members = self._scene_stats(scene, stats)
        merged = self._histogram_of(members[0])
        for s in members[1:]:
            merged = merged.merge(self._histogram_of(s))
        return merged.clip_point(self.clip_fraction) / (NUM_BINS - 1)

    def __repr__(self) -> str:
        return f"FixedPercentPerScene({self.clip_fraction:g})"


def policy_for_quality(
    clip_fraction: float, per_scene: bool = False, color_safe: bool = True
) -> ClippingPolicy:
    """Build the standard policy for a quality level.

    ``clip_fraction == 0`` returns the lossless policy; otherwise the
    fixed-percent heuristic, per-frame by default.
    """
    if clip_fraction == 0.0:
        return NoClipping(color_safe=color_safe)
    if per_scene:
        return FixedPercentPerScene(clip_fraction, color_safe=color_safe)
    return FixedPercentPerFrame(clip_fraction, color_safe=color_safe)
