"""Execution-engine selection for the profile→clip→compensate hot path.

The annotation pipeline can walk a clip four ways:

* ``"perframe"`` — the paper-literal scalar loop: one :class:`Frame` at a
  time.  Kept as the reference implementation and as the fallback for
  clips that mix frame resolutions.
* ``"chunked"`` — the default: ``(N, H, W, 3)`` uint8 batches flow through
  vectorized luminance/histogram kernels
  (:func:`~repro.core.analyzer.chunk_frame_stats`).  Bit-identical to the
  per-frame path, several times faster.
* ``"threads"`` — chunked, with chunks fanned out over a *persistent*
  ``ThreadPoolExecutor`` shared by every pass in the process.  The numpy
  kernels release the GIL, so on multi-core servers this scales the
  profiling pass with core count; with a single effective worker the
  chunks run inline, so it degrades *exactly* to ``"chunked"`` throughput
  instead of paying pool overhead for nothing.
* ``"processes"`` — chunked, with chunk batches fanned out over a
  persistent ``ProcessPoolExecutor`` and the pixel planes shipped through
  ``multiprocessing.shared_memory`` (see :mod:`repro.core.procpool`).
  Sidesteps the GIL entirely for CPU-bound profiling of large catalogs;
  falls back to ``"chunked"`` wherever process pools are unavailable.

All four produce byte-for-byte identical :class:`FrameStats`, so engine
choice is purely a throughput knob — the property tests in
``tests/core/test_engine.py`` and
``tests/streaming/test_serving_equivalence.py`` hold the engines to that
contract.

Worker pools are created lazily at first use and then *reused for the
lifetime of the process* — re-creating an executor per pass is exactly
the regression that made ``threads`` slower than ``chunked`` in early
benchmarks.  :func:`shutdown_pools` tears them down (tests, forking
servers).

Chunk sizing is autotuned from frame geometry by default
(:func:`~repro.video.chunks.autotune_chunk_size`): small frames get long
chunks, large frames get short ones, keeping the batched float64 working
set near a fixed byte budget.  Pass an explicit ``chunk_size`` to pin it.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar, Union

from .. import telemetry
from ..video.chunks import DEFAULT_CHUNK_SIZE, autotune_chunk_size

#: Engine names accepted wherever an ``engine=`` knob is exposed.
ENGINE_KINDS = ("perframe", "chunked", "threads", "processes")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class EngineConfig:
    """Resolved execution-engine settings.

    Attributes
    ----------
    kind:
        One of :data:`ENGINE_KINDS`.
    chunk_size:
        Frames per batch for the chunked engines.  ``None`` (the default)
        autotunes the span from frame geometry via
        :meth:`resolved_chunk_size`.
    max_workers:
        Worker count for ``"threads"`` / ``"processes"`` (``None`` uses
        the CPU count).
    """

    kind: str = "chunked"
    chunk_size: Optional[int] = None
    max_workers: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine kind {self.kind!r}, expected one of {ENGINE_KINDS}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")

    # ------------------------------------------------------------------
    def resolved_chunk_size(self, frame_shape: Optional[Tuple[int, int]] = None) -> int:
        """The chunk span to use for a given ``(height, width)``.

        An explicit ``chunk_size`` wins; otherwise the autotuner picks the
        span from the frame geometry, falling back to
        :data:`~repro.video.chunks.DEFAULT_CHUNK_SIZE` when no geometry
        is known (e.g. an incremental frame stream before the first
        frame arrives).
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if frame_shape is None:
            return DEFAULT_CHUNK_SIZE
        return autotune_chunk_size(int(frame_shape[0]), int(frame_shape[1]))

    def resolved_workers(self) -> int:
        """Effective worker count for the pooled engines."""
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)


#: Anything an ``engine=`` knob accepts: a kind name, a full config, or
#: ``None`` for the default (chunked).
EngineSpec = Union[None, str, EngineConfig]


def resolve_engine(spec: EngineSpec) -> EngineConfig:
    """Normalize an ``engine=`` argument into an :class:`EngineConfig`."""
    if spec is None:
        return EngineConfig()
    if isinstance(spec, EngineConfig):
        return spec
    if isinstance(spec, str):
        return EngineConfig(kind=spec)
    raise TypeError(
        f"engine must be None, a kind name, or an EngineConfig, got {type(spec).__name__}"
    )


# ---------------------------------------------------------------------------
# Persistent worker pools
# ---------------------------------------------------------------------------
_POOL_LOCK = threading.Lock()
_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}


def shared_thread_pool(max_workers: int) -> ThreadPoolExecutor:
    """The process-wide thread pool for ``max_workers``, created lazily.

    One pool per worker count is kept for the lifetime of the process and
    shared by every ``"threads"`` pass — executor construction and thread
    spin-up happen once, not per call.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    with _POOL_LOCK:
        pool = _THREAD_POOLS.get(max_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix=f"repro-engine-{max_workers}",
            )
            _THREAD_POOLS[max_workers] = pool
        return pool


def shutdown_pools(wait: bool = True) -> None:
    """Tear down every persistent engine pool (threads and processes).

    Mainly for tests and for parents about to fork; the pools re-create
    themselves lazily on next use.
    """
    with _POOL_LOCK:
        pools = list(_THREAD_POOLS.values())
        _THREAD_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)
    from . import procpool

    procpool.shutdown_process_pool(wait=wait)


atexit.register(shutdown_pools)


def map_chunks(
    config: EngineConfig, kernel: Callable[[T], R], chunks: Iterable[T]
) -> List[R]:
    """Apply ``kernel`` to every chunk under the configured engine.

    Order is preserved.  For ``"threads"`` with more than one effective
    worker, chunks are processed by the persistent shared thread pool
    (the numpy kernels release the GIL); with a single worker — or for
    any other kind — the map is a plain loop.  ``"processes"`` is
    intentionally inline here: arbitrary kernels/chunks would have to be
    pickled per call, which costs more than it saves.  The process-pool
    fan-out lives in :mod:`repro.core.procpool`, where the profiling
    kernel's inputs travel through shared memory instead; callers that
    can use it (the analyzer) route there before reaching this function.

    When telemetry is enabled, every kernel invocation is timed into the
    ``repro_engine_chunk_seconds{kind=...}`` histogram and the pass as a
    whole updates chunk/frame counters plus the
    ``repro_engine_frames_per_sec{kind=...}`` gauge (frames over the
    pass's wall-clock time; sized chunks only).
    """
    use_threads = config.kind == "threads" and config.resolved_workers() > 1
    if not telemetry.enabled():
        if use_threads:
            pool = shared_thread_pool(config.resolved_workers())
            return list(pool.map(kernel, chunks))
        return [kernel(chunk) for chunk in chunks]

    reg = telemetry.registry()
    labels = {"kind": config.kind}
    chunk_seconds = reg.histogram(
        "repro_engine_chunk_seconds",
        help="Per-chunk kernel time under the execution engine.",
        labels=labels,
    )
    durations: List[float] = []
    frames = [0]

    def timed(chunk: T) -> R:
        start = perf_counter()
        out = kernel(chunk)
        durations.append(perf_counter() - start)
        try:
            frames[0] += len(chunk)  # type: ignore[arg-type]
        except TypeError:
            pass
        return out

    wall_start = perf_counter()
    if use_threads:
        pool = shared_thread_pool(config.resolved_workers())
        results = list(pool.map(timed, chunks))
    else:
        results = [timed(chunk) for chunk in chunks]
    wall = perf_counter() - wall_start

    chunk_seconds.observe_many(durations)
    reg.counter(
        "repro_engine_chunks_total", help="Chunks processed by the execution engine.",
        labels=labels,
    ).inc(len(durations))
    if frames[0]:
        reg.counter(
            "repro_engine_frames_total", help="Frames processed by the execution engine.",
            labels=labels,
        ).inc(frames[0])
        if wall > 0.0:
            reg.gauge(
                "repro_engine_frames_per_sec",
                help="Throughput of the most recent engine pass.",
                labels=labels,
            ).set(frames[0] / wall)
    return results


def record_engine_pass(
    kind: str, durations: List[float], frames: int, wall: float
) -> None:
    """Publish one engine pass's telemetry (shared with the process path).

    Mirrors the metrics :func:`map_chunks` records, so
    ``repro_engine_*{kind="processes"}`` series line up with the other
    engine kinds even though the process fan-out bypasses ``map_chunks``.
    """
    if not telemetry.enabled():
        return
    reg = telemetry.registry()
    labels = {"kind": kind}
    reg.histogram(
        "repro_engine_chunk_seconds",
        help="Per-chunk kernel time under the execution engine.",
        labels=labels,
    ).observe_many(durations)
    reg.counter(
        "repro_engine_chunks_total", help="Chunks processed by the execution engine.",
        labels=labels,
    ).inc(len(durations))
    if frames:
        reg.counter(
            "repro_engine_frames_total", help="Frames processed by the execution engine.",
            labels=labels,
        ).inc(frames)
        if wall > 0.0:
            reg.gauge(
                "repro_engine_frames_per_sec",
                help="Throughput of the most recent engine pass.",
                labels=labels,
            ).set(frames / wall)
