"""Execution-engine selection for the profile→clip→compensate hot path.

The annotation pipeline can walk a clip three ways:

* ``"perframe"`` — the paper-literal scalar loop: one :class:`Frame` at a
  time.  Kept as the reference implementation and as the fallback for
  clips that mix frame resolutions.
* ``"chunked"`` — the default: ``(N, H, W, 3)`` uint8 batches flow through
  vectorized luminance/histogram kernels
  (:func:`~repro.core.analyzer.chunk_frame_stats`).  Bit-identical to the
  per-frame path, several times faster.
* ``"threads"`` — chunked, with chunks fanned out over a
  ``ThreadPoolExecutor``.  The numpy kernels release the GIL, so on
  multi-core servers this scales the profiling pass with core count; on a
  single core it degrades gracefully to ``"chunked"`` throughput.

All three produce byte-for-byte identical :class:`FrameStats`, so engine
choice is purely a throughput knob — the property tests in
``tests/core/test_engine.py`` hold the engines to that contract.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, List, Optional, TypeVar, Union

from .. import telemetry
from ..video.chunks import DEFAULT_CHUNK_SIZE

#: Engine names accepted wherever an ``engine=`` knob is exposed.
ENGINE_KINDS = ("perframe", "chunked", "threads")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class EngineConfig:
    """Resolved execution-engine settings.

    Attributes
    ----------
    kind:
        One of :data:`ENGINE_KINDS`.
    chunk_size:
        Frames per batch for the chunked engines.
    max_workers:
        Thread count for ``"threads"`` (``None`` lets the executor pick).
    """

    kind: str = "chunked"
    chunk_size: int = DEFAULT_CHUNK_SIZE
    max_workers: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine kind {self.kind!r}, expected one of {ENGINE_KINDS}"
            )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")


#: Anything an ``engine=`` knob accepts: a kind name, a full config, or
#: ``None`` for the default (chunked).
EngineSpec = Union[None, str, EngineConfig]


def resolve_engine(spec: EngineSpec) -> EngineConfig:
    """Normalize an ``engine=`` argument into an :class:`EngineConfig`."""
    if spec is None:
        return EngineConfig()
    if isinstance(spec, EngineConfig):
        return spec
    if isinstance(spec, str):
        return EngineConfig(kind=spec)
    raise TypeError(
        f"engine must be None, a kind name, or an EngineConfig, got {type(spec).__name__}"
    )


def map_chunks(
    config: EngineConfig, kernel: Callable[[T], R], chunks: Iterable[T]
) -> List[R]:
    """Apply ``kernel`` to every chunk under the configured engine.

    Order is preserved.  For ``"threads"``, chunks are processed by a
    thread pool (the numpy kernels release the GIL); otherwise the map is
    a plain loop.

    When telemetry is enabled, every kernel invocation is timed into the
    ``repro_engine_chunk_seconds{kind=...}`` histogram and the pass as a
    whole updates chunk/frame counters plus the
    ``repro_engine_frames_per_sec{kind=...}`` gauge (frames over the
    pass's wall-clock time; sized chunks only).
    """
    if not telemetry.enabled():
        if config.kind == "threads":
            with ThreadPoolExecutor(max_workers=config.max_workers) as pool:
                return list(pool.map(kernel, chunks))
        return [kernel(chunk) for chunk in chunks]

    reg = telemetry.registry()
    labels = {"kind": config.kind}
    chunk_seconds = reg.histogram(
        "repro_engine_chunk_seconds",
        help="Per-chunk kernel time under the execution engine.",
        labels=labels,
    )
    durations: List[float] = []
    frames = [0]

    def timed(chunk: T) -> R:
        start = perf_counter()
        out = kernel(chunk)
        durations.append(perf_counter() - start)
        try:
            frames[0] += len(chunk)  # type: ignore[arg-type]
        except TypeError:
            pass
        return out

    wall_start = perf_counter()
    if config.kind == "threads":
        with ThreadPoolExecutor(max_workers=config.max_workers) as pool:
            results = list(pool.map(timed, chunks))
    else:
        results = [timed(chunk) for chunk in chunks]
    wall = perf_counter() - wall_start

    chunk_seconds.observe_many(durations)
    reg.counter(
        "repro_engine_chunks_total", help="Chunks processed by the execution engine.",
        labels=labels,
    ).inc(len(durations))
    if frames[0]:
        reg.counter(
            "repro_engine_frames_total", help="Frames processed by the execution engine.",
            labels=labels,
        ).inc(frames[0])
        if wall > 0.0:
            reg.gauge(
                "repro_engine_frames_per_sec",
                help="Throughput of the most recent engine pass.",
                labels=labels,
            ).set(frames[0] / wall)
    return results
