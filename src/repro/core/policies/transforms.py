"""Pixel transforms: how a policy's compensation touches frames.

The paper's compensation is one multiplicative gain per scene
(:class:`GainTransform`, wrapping
:func:`~repro.core.compensation.contrast_enhancement_batch` — the
bit-identical batched kernel).  Richer policies swap in other transforms:
a 256-entry tone-curve LUT (:class:`LutTransform`, HEBS) or a resolution
downscale plus gain (:class:`SpatialTransform`).

Every transform offers the same two application surfaces the streaming
stack uses: :meth:`PixelTransform.apply_batch` for the chunked engines
(``(N, H, W, 3)`` uint8 in, uint8 out, per-frame clipped fractions
alongside) and :meth:`PixelTransform.apply_frame` for the per-frame
reference path.  All transforms are elementwise per *frame*, so a batch
may be split at any frame boundary without changing the output — the
property the chunked/threads/processes engines rely on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...video.frame import Frame, MAX_CHANNEL
from ..compensation import (
    CompensationResult,
    contrast_enhancement,
    contrast_enhancement_batch,
)

#: Saturation threshold shared with :mod:`repro.core.compensation`.
_CLIP_THRESHOLD = 1.0 + 1e-12


def _check_batch(pixels: np.ndarray) -> np.ndarray:
    """Validate an ``(N, H, W, 3)`` uint8 batch (shared by transforms)."""
    pixels = np.asarray(pixels)
    if pixels.ndim != 4 or pixels.shape[3] != 3:
        raise ValueError(f"batch pixels must be (N, H, W, 3), got {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise ValueError(f"batch pixels must be uint8, got {pixels.dtype}")
    return pixels


class PixelTransform:
    """Interface: a per-scene compensation applied to pixel data."""

    #: True for plain multiplicative-gain transforms.  The annotated
    #: stream keeps its historical vectorized fast path (one batched
    #: kernel call per chunk with a per-frame gain vector) when every
    #: scene transform is a gain.
    is_gain: bool = False

    def apply_frame(self, frame: Frame) -> CompensationResult:
        """Compensate one frame; returns the frame plus clipped fraction."""
        raise NotImplementedError

    def apply_batch(self, pixels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compensate a uint8 batch; returns (pixels, per-frame fractions)."""
        raise NotImplementedError

    def batch_clipped_fractions(self, pixels: np.ndarray) -> np.ndarray:
        """Per-frame clipped fractions only (metrics without pixel output)."""
        return self.apply_batch(pixels)[1]


class GainTransform(PixelTransform):
    """The paper's contrast enhancement: one multiplicative gain.

    ``gain <= 1`` (full backlight) passes pixels through untouched with
    zero clipping, mirroring the annotated stream's short-circuit.
    """

    is_gain = True

    def __init__(self, gain: float):
        gain = float(gain)
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.gain = gain

    def apply_frame(self, frame: Frame) -> CompensationResult:
        """Scale one frame by the gain (pass-through at full backlight)."""
        if self.gain <= 1.0:
            return CompensationResult(frame=frame.copy(), clipped_fraction=0.0)
        return contrast_enhancement(frame, self.gain)

    def apply_batch(self, pixels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batched contrast enhancement (the existing chunked kernel)."""
        return contrast_enhancement_batch(pixels, self.gain)

    def batch_clipped_fractions(self, pixels: np.ndarray) -> np.ndarray:
        """Fractions via the peak channel — no compensated copy needed."""
        pixels = _check_batch(pixels)
        if self.gain <= 1.0:
            return np.zeros(pixels.shape[0])
        peak = pixels.max(axis=-1) * (self.gain / MAX_CHANNEL)
        return (peak > _CLIP_THRESHOLD).mean(axis=(1, 2))

    def __repr__(self) -> str:
        return f"GainTransform(gain={self.gain:.3f})"


class LutTransform(PixelTransform):
    """A 256-entry tone curve applied per channel (HEBS compensation).

    The LUT already contains the compensation (bulk stretch + equalized
    band), so application is a single table lookup.  A pixel counts as
    clipped when its peak channel code exceeds ``clip_code`` — the codes
    the curve maps to full scale beyond the authorized quality budget.
    """

    is_gain = False

    def __init__(self, lut: np.ndarray, clip_code: int):
        lut = np.asarray(lut, dtype=np.uint8)
        if lut.shape != (256,):
            raise ValueError(f"LUT must have 256 entries, got {lut.shape}")
        if np.any(np.diff(lut.astype(np.int64)) < 0):
            raise ValueError("LUT must be monotone non-decreasing")
        if not 0 <= int(clip_code) <= 255:
            raise ValueError(f"clip_code must be in [0, 255], got {clip_code}")
        self.lut = lut
        self.clip_code = int(clip_code)

    def apply_frame(self, frame: Frame) -> CompensationResult:
        """Look one frame up through the tone curve."""
        pixels = frame.pixels
        fraction = float((pixels.max(axis=-1) > self.clip_code).mean())
        return CompensationResult(
            frame=Frame(self.lut[pixels], index=frame.index),
            clipped_fraction=fraction,
        )

    def apply_batch(self, pixels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Look a whole batch up through the tone curve."""
        pixels = _check_batch(pixels)
        return self.lut[pixels], self.batch_clipped_fractions(pixels)

    def batch_clipped_fractions(self, pixels: np.ndarray) -> np.ndarray:
        """Fractions from peak-channel codes above the clip point."""
        pixels = _check_batch(pixels)
        return (pixels.max(axis=-1) > self.clip_code).mean(axis=(1, 2))

    def __repr__(self) -> str:
        return f"LutTransform(clip_code={self.clip_code})"


class SpatialTransform(PixelTransform):
    """Resolution downscale + gain (spatial-scaling compensation).

    Frames are box-filtered by an integer factor, contrast-enhanced like
    the paper's scheme, and replicated back to the original resolution so
    the wire format is unchanged (the client still receives full-size
    frames; a real deployment would ship the small frames and let the
    display scaler replicate).  Averaging pulls sparse highlights toward
    the block mean, which is what lets the policy pick a deeper backlight
    dim than clipping alone.
    """

    is_gain = False

    def __init__(self, scale: int, gain: float):
        scale = int(scale)
        if not 1 <= scale <= 16:
            raise ValueError(f"scale must be in [1, 16], got {scale}")
        gain = float(gain)
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.scale = scale
        self.gain = gain

    # ------------------------------------------------------------------
    def _downscaled(self, pixels: np.ndarray) -> np.ndarray:
        """Box-filter a batch by the scale factor (edge-padded), to [0, 1]."""
        s = self.scale
        pad_h = (-pixels.shape[1]) % s
        pad_w = (-pixels.shape[2]) % s
        if pad_h or pad_w:
            pixels = np.pad(
                pixels, ((0, 0), (0, pad_h), (0, pad_w), (0, 0)), mode="edge"
            )
        n, h, w, _ = pixels.shape
        blocks = pixels.reshape(n, h // s, s, w // s, s, 3).astype(np.float64)
        return blocks.mean(axis=(2, 4)) / MAX_CHANNEL

    def _upscaled(self, values: np.ndarray, height: int, width: int) -> np.ndarray:
        """Replicate a downscaled batch back to the original resolution."""
        s = self.scale
        up = np.repeat(np.repeat(values, s, axis=1), s, axis=2)
        return up[:, :height, :width]

    # ------------------------------------------------------------------
    def apply_batch(self, pixels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Downscale, compensate, quantize, replicate back up."""
        pixels = _check_batch(pixels)
        n, h, w, _ = pixels.shape
        values = self._downscaled(pixels)
        values *= self.gain
        clipped = (
            (values[..., 0] > _CLIP_THRESHOLD)
            | (values[..., 1] > _CLIP_THRESHOLD)
            | (values[..., 2] > _CLIP_THRESHOLD)
        )
        np.minimum(values, 1.0, out=values)
        values *= MAX_CHANNEL
        np.rint(values, out=values)
        out = self._upscaled(values.astype(np.uint8), h, w)
        mask = self._upscaled(clipped, h, w)
        return np.ascontiguousarray(out), mask.mean(axis=(1, 2))

    def apply_frame(self, frame: Frame) -> CompensationResult:
        """Per-frame form of :meth:`apply_batch`."""
        out, fractions = self.apply_batch(frame.pixels[None])
        return CompensationResult(
            frame=Frame(out[0], index=frame.index),
            clipped_fraction=float(fractions[0]),
        )

    def __repr__(self) -> str:
        return f"SpatialTransform(scale={self.scale}, gain={self.gain:.3f})"
