"""Histogram-equalization backlight scaling (HEBS).

Instead of clipping everything above the quality budget, HEBS derives a
*tone curve* from the scene's luminance histogram: the bulk of the
distribution is stretched linearly, while the sparse highlight band
between the "deep" clip point and the quality clip point is compressed by
histogram equalization into a reserved top slice of the output range.
Highlights keep some separation instead of flattening to white, which
lets the policy dim the backlight past the plain clipping scheme's level
at comparable distortion — the trade explored by the cross-policy Pareto
benchmark.

The curve ships in the scene annotation payload (clip code + 256-entry
LUT, 257 bytes), so binding and playback need only the histogram work
done once at annotation time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...display.devices import DeviceProfile
from ...quality.histogram import NUM_BINS
from ..analyzer import FrameStats
from ..annotation import DeviceSceneAnnotation, SceneAnnotation
from ..policy import SchemeParameters
from ..scene import Scene
from .base import BacklightPolicy, register_policy
from .transforms import LutTransform, PixelTransform


@register_policy
class HebsPolicy(BacklightPolicy):
    """Tone-curve backlight scaling driven by the scene histogram.

    Parameters
    ----------
    dim_factor:
        How much more aggressively than the quality budget the *bulk*
        clip point is chosen: the deep clip point tolerates
        ``min(1, quality * dim_factor)`` clipped mass.  Larger values dim
        further and push more codes into the equalized band.
    reserve:
        Fraction of the output range reserved for the equalized highlight
        band.  The bulk stretches into ``[0, (1 - reserve) * 255]``.
    """

    name = "hebs"

    def __init__(self, dim_factor: float = 3.0, reserve: float = 0.12):
        if dim_factor < 1.0:
            raise ValueError(f"dim_factor must be >= 1, got {dim_factor}")
        if not 0.0 <= reserve < 1.0:
            raise ValueError(f"reserve must be in [0, 1), got {reserve}")
        self.dim_factor = float(dim_factor)
        self.reserve = float(reserve)

    # ------------------------------------------------------------------
    def annotate_scene(
        self, scene: Scene, stats: Sequence[FrameStats], params: SchemeParameters
    ) -> SceneAnnotation:
        """Build the scene's tone curve and effective backlight target."""
        members = self._scene_stats(scene, stats)
        hist = self._pooled_histogram(members, params.color_safe)
        q = params.quality

        # Quality clip point: codes above it may clip outright (same
        # budget semantics as the default scheme's per-scene variant).
        t_hi = int(hist.clip_point(q))
        # Deep clip point: where the bulk of the distribution ends if we
        # were willing to clip dim_factor times the budget.
        q_lo = min(1.0, q * self.dim_factor) if q > 0 else 0.0
        t_lo = max(int(hist.clip_point(q_lo)), 1)
        t_hi = max(t_hi, t_lo)
        top = round((NUM_BINS - 1) * (1.0 - (self.reserve if t_hi > t_lo else 0.0)))

        lut = np.empty(NUM_BINS, dtype=np.float64)
        codes = np.arange(NUM_BINS, dtype=np.float64)
        # Bulk: linear stretch of [0, t_lo] onto [0, top].
        lut[: t_lo + 1] = np.round(codes[: t_lo + 1] * (top / t_lo))
        if t_hi > t_lo:
            # Highlight band: CDF-equalized into (top, 255].
            cum = np.cumsum(hist.counts)
            mass = max(cum[t_hi] - cum[t_lo], 1e-12)
            cdf = (cum[t_lo + 1 : t_hi + 1] - cum[t_lo]) / mass
            lut[t_lo + 1 : t_hi + 1] = np.round(top + cdf * (NUM_BINS - 1 - top))
        lut[t_hi + 1 :] = NUM_BINS - 1
        lut = np.maximum.accumulate(lut)  # monotone despite rounding
        lut = np.clip(lut, 0, NUM_BINS - 1).astype(np.uint8)

        # The brightest code the curve must reproduce faithfully is t_lo,
        # which the display renders at output code `top`; dimming so that
        # `top` at full gain lands where t_lo used to means the backlight
        # target is t_lo / top.  Valid for any power-law white transfer:
        # the compensation gain the binding derives undoes the same curve.
        effective = min(1.0, t_lo / max(top, 1))
        payload = bytes([t_hi]) + lut.tobytes()
        return SceneAnnotation(
            start=scene.start,
            end=scene.end,
            effective_max_luminance=effective,
            policy=self.name,
            payload=payload,
        )

    def bind_scene(
        self, scene: SceneAnnotation, device: DeviceProfile
    ) -> DeviceSceneAnnotation:
        """Pick the backlight level; the tone curve rides along."""
        level, gain = self._bind_level_and_gain(
            scene.effective_max_luminance, device
        )
        return DeviceSceneAnnotation(
            start=scene.start,
            end=scene.end,
            backlight_level=level,
            compensation_gain=gain,
            policy=self.name,
            payload=scene.payload,
        )

    def transform_for_scene(self, scene: DeviceSceneAnnotation) -> PixelTransform:
        """Decode the payload back into a LUT transform."""
        payload = scene.payload
        if len(payload) != 1 + NUM_BINS:
            raise ValueError(
                f"hebs payload must be {1 + NUM_BINS} bytes, got {len(payload)}"
            )
        lut = np.frombuffer(payload[1:], dtype=np.uint8)
        return LutTransform(lut, clip_code=payload[0])

    # ------------------------------------------------------------------
    def key(self):
        return (self.name, self.dim_factor, self.reserve)

    def __repr__(self) -> str:
        return f"HebsPolicy(dim_factor={self.dim_factor}, reserve={self.reserve})"
