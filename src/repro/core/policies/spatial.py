"""Spatial-scaling backlight policy: trade resolution for power.

Herglotz/Kaup observe that downscaling a frame before display co-selects
with the backlight: box-filter averaging pulls isolated highlights toward
their block mean, so the *downscaled* frame has a lower effective maximum
than the original and the backlight can dim further for the same clipped
mass.  The policy predicts the post-averaging maximum from the scene
histogram — the block mean of a region containing the clip-point code is
bounded by ``(cp + (s² − 1)·μ) / s²`` where ``μ`` is the scene's mean
code — and compensates the downscaled frames exactly like the paper's
scheme before replicating them back to full size.
"""

from __future__ import annotations

from typing import Sequence

from ...display.devices import DeviceProfile
from ...quality.histogram import NUM_BINS
from ..analyzer import FrameStats
from ..annotation import DeviceSceneAnnotation, SceneAnnotation
from ..policy import SchemeParameters
from ..scene import Scene
from .base import BacklightPolicy, register_policy
from .transforms import PixelTransform, SpatialTransform


@register_policy
class SpatialScalingPolicy(BacklightPolicy):
    """Downscale by an integer factor, then clip-quality compensation."""

    name = "spatial"

    def __init__(self, scale: int = 2):
        scale = int(scale)
        if not 1 <= scale <= 8:
            raise ValueError(f"scale must be in [1, 8], got {scale}")
        self.scale = scale

    # ------------------------------------------------------------------
    def annotate_scene(
        self, scene: Scene, stats: Sequence[FrameStats], params: SchemeParameters
    ) -> SceneAnnotation:
        """Predict the post-downscale effective max from the histogram."""
        members = self._scene_stats(scene, stats)
        hist = self._pooled_histogram(members, params.color_safe)
        s = self.scale
        cp = hist.clip_point(params.quality) / (NUM_BINS - 1)
        mu = hist.average_point / (NUM_BINS - 1)
        # Worst-case block mean at the clip point: one clip-point pixel
        # averaged with s²−1 mean-valued neighbors.  Never worse than the
        # clip point itself (s=1 degenerates to the default scheme).
        blended = (cp + (s * s - 1) * mu) / (s * s)
        effective = max(min(cp, blended), 1.0 / (NUM_BINS - 1))
        return SceneAnnotation(
            start=scene.start,
            end=scene.end,
            effective_max_luminance=effective,
            policy=self.name,
            payload=bytes([s]),
        )

    def bind_scene(
        self, scene: SceneAnnotation, device: DeviceProfile
    ) -> DeviceSceneAnnotation:
        """Level and gain for the predicted downscaled maximum."""
        level, gain = self._bind_level_and_gain(
            scene.effective_max_luminance, device
        )
        return DeviceSceneAnnotation(
            start=scene.start,
            end=scene.end,
            backlight_level=level,
            compensation_gain=gain,
            policy=self.name,
            payload=scene.payload,
        )

    def transform_for_scene(self, scene: DeviceSceneAnnotation) -> PixelTransform:
        """Downscale + gain + replicate, parameterized from the payload."""
        if len(scene.payload) != 1:
            raise ValueError(
                f"spatial payload must be 1 byte, got {len(scene.payload)}"
            )
        return SpatialTransform(scene.payload[0], max(scene.compensation_gain, 1.0))

    # ------------------------------------------------------------------
    def key(self):
        return (self.name, self.scale)

    def __repr__(self) -> str:
        return f"SpatialScalingPolicy(scale={self.scale})"
