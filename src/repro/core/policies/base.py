"""The :class:`BacklightPolicy` interface and policy registry.

The paper's scheme — clip the histogram at quality ``q``, dim the
backlight to the surviving maximum, multiply the pixels back up — is one
point in a *policy space*.  A :class:`BacklightPolicy` makes the whole
analyze → annotate → bind → compensate contract explicit so that
alternatives (HEBS tone mapping, spatial scaling) plug into the same
pipeline, servers, caches and CLI:

* :meth:`BacklightPolicy.annotate_scenes` consumes the profiling output
  (scenes plus per-frame :class:`~repro.core.analyzer.FrameStats`) and
  emits device-independent :class:`~repro.core.annotation.SceneAnnotation`
  records.  Policies that need more than the effective max luminance
  (e.g. a tone-curve LUT) carry it in the annotation ``payload`` —
  annotations stay self-describing, so binding and playback never need
  the policy's configuration.
* :meth:`BacklightPolicy.bind_scene` turns one scene annotation into a
  device-bound ``(backlight_level, compensation_gain)`` record for a
  concrete :class:`~repro.display.devices.DeviceProfile`.
* :meth:`BacklightPolicy.transform_for_scene` produces the
  :class:`~repro.core.policies.transforms.PixelTransform` that the
  streaming path applies batch-wise to the scene's frames.

Policies register by name; :func:`resolve_policy` accepts a name, an
instance, or ``None`` (the paper's default scheme), mirroring
:func:`~repro.core.engine.resolve_engine`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from ...display.devices import DeviceProfile
from ...quality.histogram import LuminanceHistogram
from ..analyzer import FrameStats
from ..annotation import (
    CLIP_QUALITY_POLICY,
    DeviceSceneAnnotation,
    SceneAnnotation,
)
from ..policy import SchemeParameters
from ..scene import Scene
from .transforms import PixelTransform


class BacklightPolicy:
    """Interface: scene statistics -> annotation -> (level, transform).

    Subclasses set :attr:`name` (the registry key, also recorded in every
    annotation they produce) and implement the three stage methods.
    ``bind_scene`` and ``transform_for_scene`` must rely only on the
    annotation contents (including ``payload``), never on constructor
    state: tracks are decoded on machines that only know the policy name.
    """

    #: Registry key; also stamped into produced annotations.
    name: str = "abstract"

    # ------------------------------------------------------------------
    def annotate_scenes(
        self,
        scenes: Sequence[Scene],
        stats: Sequence[FrameStats],
        params: SchemeParameters,
    ) -> List[SceneAnnotation]:
        """Annotate every scene of a profiled clip (default: per scene)."""
        return [self.annotate_scene(scene, stats, params) for scene in scenes]

    def annotate_scene(
        self, scene: Scene, stats: Sequence[FrameStats], params: SchemeParameters
    ) -> SceneAnnotation:
        """Produce the device-independent annotation for one scene."""
        raise NotImplementedError

    def bind_scene(
        self, scene: SceneAnnotation, device: DeviceProfile
    ) -> DeviceSceneAnnotation:
        """Bind one scene annotation to a device (level + gain)."""
        raise NotImplementedError

    def transform_for_scene(self, scene: DeviceSceneAnnotation) -> PixelTransform:
        """The pixel transform the streaming path applies to the scene."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Hashable full-configuration identity (track caches)."""
        return (self.name,)

    def profile_key(self) -> Tuple:
        """Hashable identity for profile caches.

        Profiling output is statistics-only, so by default only the
        policy *name* partitions the cache (two configurations of one
        policy share the profiling pass).
        """
        return (self.name,)

    # ------------------------------------------------------------------
    @staticmethod
    def _scene_stats(
        scene: Union[Scene, SceneAnnotation], stats: Sequence[FrameStats]
    ) -> Sequence[FrameStats]:
        """The stats slice covered by a scene, bounds-checked."""
        if scene.end > len(stats):
            raise ValueError(
                f"scene [{scene.start}, {scene.end}) exceeds stream length {len(stats)}"
            )
        return stats[scene.start : scene.end]

    @staticmethod
    def _pooled_histogram(
        members: Sequence[FrameStats], color_safe: bool
    ) -> LuminanceHistogram:
        """Merge the member frames' histograms into one scene histogram."""
        hists = [
            (m.channel_histogram if color_safe else m.histogram) for m in members
        ]
        merged = hists[0]
        for hist in hists[1:]:
            merged = merged.merge(hist)
        return merged

    def _bind_level_and_gain(
        self, effective_max_luminance: float, device: DeviceProfile
    ) -> Tuple[int, float]:
        """The paper's binding: smallest sufficient level, exact gain."""
        transfer = device.transfer
        level = transfer.level_for_scene(effective_max_luminance)
        gain = transfer.compensation_gain_for_level(level) if level > 0 else 1.0
        return level, max(gain, 1.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: A policy argument: ``None`` (default scheme), a registry name, or an
#: instance.
PolicySpec = Union[None, str, BacklightPolicy]

_REGISTRY: Dict[str, Type[BacklightPolicy]] = {}
_DEFAULT_INSTANCES: Dict[str, BacklightPolicy] = {}


def register_policy(cls: Type[BacklightPolicy]) -> Type[BacklightPolicy]:
    """Class decorator: add a policy class to the registry by its name."""
    if not cls.name or cls.name == BacklightPolicy.name:
        raise ValueError(f"policy class {cls.__name__} needs a concrete name")
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_policy(name: str) -> BacklightPolicy:
    """The default-configured instance for a registered policy name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backlight policy {name!r}; known: {available_policies()}"
        ) from None
    if name not in _DEFAULT_INSTANCES:
        _DEFAULT_INSTANCES[name] = cls()
    return _DEFAULT_INSTANCES[name]


def resolve_policy(policy: PolicySpec) -> BacklightPolicy:
    """Normalize a policy argument to a :class:`BacklightPolicy` instance.

    ``None`` resolves to the paper's default scheme
    (:data:`~repro.core.annotation.CLIP_QUALITY_POLICY`); strings resolve
    through the registry; instances pass through.
    """
    if policy is None:
        return get_policy(CLIP_QUALITY_POLICY)
    if isinstance(policy, str):
        return get_policy(policy)
    if isinstance(policy, BacklightPolicy):
        return policy
    raise TypeError(
        f"policy must be None, a name, or a BacklightPolicy, got {type(policy).__name__}"
    )


def policy_profile_key(policy: Union[PolicySpec, Tuple]) -> Tuple:
    """The profile-cache identity of a policy argument.

    Accepts everything :func:`resolve_policy` accepts, plus an already
    computed key tuple (passed through unchanged) so cache callers can
    precompute identities.
    """
    if isinstance(policy, tuple):
        return policy
    return resolve_policy(policy).profile_key()
