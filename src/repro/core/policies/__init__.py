"""Pluggable backlight policies (the policy-testbed layer).

The paper's clip-at-quality scheme, HEBS tone mapping, and spatial
scaling all implement one :class:`BacklightPolicy` interface: consume
per-scene histogram statistics, emit annotations, bind them to a device,
and hand the streaming path a batch-applicable pixel transform.  See
:mod:`repro.core.policies.base` for the contract.
"""

from .base import (
    BacklightPolicy,
    PolicySpec,
    available_policies,
    get_policy,
    policy_profile_key,
    register_policy,
    resolve_policy,
)
from .clip_quality import ClipQualityPolicy
from .hebs import HebsPolicy
from .spatial import SpatialScalingPolicy
from .transforms import (
    GainTransform,
    LutTransform,
    PixelTransform,
    SpatialTransform,
)

#: Registered policy names (stable, sorted) — e.g. for CLI choices.
POLICY_NAMES = available_policies()

__all__ = [
    "BacklightPolicy",
    "ClipQualityPolicy",
    "GainTransform",
    "HebsPolicy",
    "LutTransform",
    "POLICY_NAMES",
    "PixelTransform",
    "PolicySpec",
    "SpatialScalingPolicy",
    "SpatialTransform",
    "available_policies",
    "get_policy",
    "policy_profile_key",
    "register_policy",
    "resolve_policy",
]
