"""The paper's scheme as a :class:`BacklightPolicy`.

Clip the scene's luminance distribution at quality ``q`` (per-frame
budget by default, pooled-histogram variant optionally), dim the
backlight to the surviving effective maximum, and multiply the pixels
back up with one gain per scene.  This is the default policy and is
bit-identical to the pre-policy pipeline — the equivalence tests in
``tests/core/test_policy_equivalence.py`` hold it to that.
"""

from __future__ import annotations

from typing import List, Sequence

from ...display.devices import DeviceProfile
from ..analyzer import FrameStats
from ..annotation import CLIP_QUALITY_POLICY, DeviceSceneAnnotation, SceneAnnotation
from ..clipping import policy_for_quality
from ..policy import SchemeParameters
from ..scene import Scene
from .base import BacklightPolicy, register_policy
from .transforms import GainTransform, PixelTransform


@register_policy
class ClipQualityPolicy(BacklightPolicy):
    """Clip-at-quality-q backlight scaling with gain compensation."""

    name = CLIP_QUALITY_POLICY

    def __init__(self, per_scene_clipping: bool = False):
        self.per_scene_clipping = bool(per_scene_clipping)

    # ------------------------------------------------------------------
    def annotate_scenes(
        self,
        scenes: Sequence[Scene],
        stats: Sequence[FrameStats],
        params: SchemeParameters,
    ) -> List[SceneAnnotation]:
        """Apply the clipping heuristic to every scene."""
        clipping = policy_for_quality(
            params.quality,
            per_scene=self.per_scene_clipping,
            color_safe=params.color_safe,
        )
        return [
            SceneAnnotation(
                start=scene.start,
                end=scene.end,
                effective_max_luminance=clipping.effective_max(scene, stats),
            )
            for scene in scenes
        ]

    def annotate_scene(
        self, scene: Scene, stats: Sequence[FrameStats], params: SchemeParameters
    ) -> SceneAnnotation:
        """Single-scene form of :meth:`annotate_scenes`."""
        return self.annotate_scenes([scene], stats, params)[0]

    def bind_scene(
        self, scene: SceneAnnotation, device: DeviceProfile
    ) -> DeviceSceneAnnotation:
        """Smallest sufficient backlight level plus the exact gain."""
        level, gain = self._bind_level_and_gain(
            scene.effective_max_luminance, device
        )
        return DeviceSceneAnnotation(
            start=scene.start,
            end=scene.end,
            backlight_level=level,
            compensation_gain=gain,
        )

    def transform_for_scene(self, scene: DeviceSceneAnnotation) -> PixelTransform:
        """One multiplicative gain for the whole scene."""
        return GainTransform(scene.compensation_gain)

    # ------------------------------------------------------------------
    def key(self):
        return (self.name, self.per_scene_clipping)

    def __repr__(self) -> str:
        return f"ClipQualityPolicy(per_scene_clipping={self.per_scene_clipping})"
