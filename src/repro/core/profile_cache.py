"""Content-keyed caching of profiling results.

Profiling (per-frame histograms + scene detection) is by far the most
expensive stage of the pipeline, and its output depends only on the
clip's *pixels* and the scene-relevant scheme parameters — not on the
quality level, the device, or which server object happens to hold the
clip.  The :class:`ProfileCache` therefore keys entries by a fingerprint
of the clip content plus those parameters, so the five quality variants
of a clip (and every device binding, and every server sharing the cache)
reuse one profiling pass.

Keying by content rather than by clip name also fixes a latent staleness
bug: re-registering a name with different pixels can never serve the old
profile, because the fingerprint changes with the pixels.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from ..telemetry import registry as telemetry_registry
from ..video.clip import ArrayClip, ClipBase, VideoClip
from .policy import SchemeParameters

_CACHE_SEQ = itertools.count(1)

#: Frames hashed when fingerprinting a lazily synthesized clip.
FINGERPRINT_SAMPLE_FRAMES = 16

#: Default number of cached profiles (a profile holds two 256-bin float64
#: histograms per frame, ~1.5 MB for a 360-frame clip).
DEFAULT_PROFILE_CACHE_ENTRIES = 32


def clip_fingerprint(clip: ClipBase) -> str:
    """A content fingerprint for a clip, stable across object identity.

    Eager clips (:class:`~repro.video.clip.ArrayClip`,
    :class:`~repro.video.clip.VideoClip`) hash every pixel, so any content
    change is guaranteed to change the key.  Lazy clips hash
    :data:`FINGERPRINT_SAMPLE_FRAMES` evenly spaced frames plus the clip
    metadata — synthesizing every frame just to fingerprint would cost as
    much as profiling.  The prefix records which flavour was used.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(type(clip).__name__.encode())
    digest.update(repr((clip.name, clip.frame_count, float(clip.fps))).encode())

    if isinstance(clip, ArrayClip):
        pixels = clip.pixels
        digest.update(repr(pixels.shape).encode())
        digest.update(np.ascontiguousarray(pixels).tobytes())
        mode = "full"
    elif isinstance(clip, VideoClip):
        for i in range(clip.frame_count):
            pixels = clip.frame(i).pixels
            digest.update(repr(pixels.shape).encode())
            digest.update(np.ascontiguousarray(pixels).tobytes())
        mode = "full"
    else:
        count = min(FINGERPRINT_SAMPLE_FRAMES, clip.frame_count)
        indices = np.unique(
            np.linspace(0, clip.frame_count - 1, count).astype(np.int64)
        )
        for i in indices:
            pixels = clip.frame(int(i)).pixels
            digest.update(np.int64(i).tobytes())
            digest.update(repr(pixels.shape).encode())
            digest.update(np.ascontiguousarray(pixels).tobytes())
        mode = "sampled"
    return f"{mode}:{digest.hexdigest()}"


def profile_params_key(params: SchemeParameters) -> Tuple:
    """The scheme parameters a profile depends on.

    Quality is deliberately excluded: stats and scene boundaries are
    identical across quality levels (that is what makes the cache shared
    across a server's quality variants).
    """
    return (
        params.scene_change_threshold,
        params.min_scene_interval_frames,
        params.per_frame,
        params.color_safe,
    )


class ProfileCache:
    """Thread-safe LRU cache of profiling results, keyed by content.

    Parameters
    ----------
    max_entries:
        Profiles retained; least-recently-used entries are evicted first.
        ``0`` disables caching entirely (every lookup misses).
    """

    def __init__(self, max_entries: int = DEFAULT_PROFILE_CACHE_ENTRIES):
        if max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-instance telemetry series: a unique cache label keeps fresh
        # instances at zero while the shared registry aggregates them all.
        reg = telemetry_registry()
        labels = {"cache": f"profile-{next(_CACHE_SEQ)}"}
        self._hit_counter = reg.counter(
            "repro_cache_hits_total", help="Cache lookups served from the cache.",
            labels=labels,
        )
        self._miss_counter = reg.counter(
            "repro_cache_misses_total", help="Cache lookups that missed.",
            labels=labels,
        )
        self._eviction_counter = reg.counter(
            "repro_cache_evictions_total", help="Entries evicted to respect the bound.",
            labels=labels,
        )
        self._entries_gauge = reg.gauge(
            "repro_cache_entries", help="Entries currently retained.", labels=labels,
        )

    def _ensure_registered(self) -> None:
        """Re-attach this cache's series after a registry reset.

        Long-lived caches (the process-wide shared instance) outlive
        test-isolation resets; idempotent re-registration keeps their
        series visible in snapshots.  Cheap: one lock + dict hit each.
        """
        reg = telemetry_registry()
        for metric in (self._hit_counter, self._miss_counter,
                       self._eviction_counter, self._entries_gauge):
            reg.register(metric)

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from the cache (reads the telemetry counter)."""
        return self._hit_counter.value

    @property
    def misses(self) -> int:
        """Lookups that missed (reads the telemetry counter)."""
        return self._miss_counter.value

    @property
    def evictions(self) -> int:
        """Entries evicted to respect ``max_entries``."""
        return self._eviction_counter.value

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """One-call summary of the cache's telemetry series."""
        return {
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(clip: ClipBase, params: SchemeParameters, policy=None) -> Tuple:
        """Cache key for a (clip content, parameters, policy) triple.

        ``policy`` takes anything
        :func:`~repro.core.policies.policy_profile_key` accepts: ``None``
        (the default scheme), a name, an instance, or a precomputed key
        tuple.  Policies whose profiling identity matches share entries;
        distinct policies on the same clip can never collide.
        """
        from .policies import policy_profile_key  # local: policies use core

        return (
            clip_fingerprint(clip),
            profile_params_key(params),
            policy_profile_key(policy),
        )

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached profile for ``key``, or ``None``."""
        self._ensure_registered()
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._miss_counter.inc()
                return None
            self._entries.move_to_end(key)
            self._hit_counter.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Retain a profile, evicting the least-recently-used to fit."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._eviction_counter.inc()
            self._entries_gauge.set(len(self._entries))

    def get_or_compute(
        self,
        clip: ClipBase,
        params: SchemeParameters,
        compute: Callable[[], Any],
        policy=None,
    ) -> Any:
        """Return the cached profile for the clip, computing it on a miss.

        ``compute`` runs outside the lock (profiling is slow; concurrent
        misses on the same key simply race to fill it, last write wins —
        both results are identical by construction).
        """
        key = self.key_for(clip, params, policy=policy)
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every cached profile (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._entries_gauge.set(0)

    def __repr__(self) -> str:
        return (
            f"ProfileCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_SHARED_CACHE: Optional[ProfileCache] = None
_SHARED_LOCK = threading.Lock()


def shared_profile_cache() -> ProfileCache:
    """The process-wide profile cache (lazily created singleton).

    Used by default by :class:`~repro.streaming.server.MediaServer` and
    :func:`~repro.core.pipeline.sweep_quality_levels`, so that any number
    of servers and sweeps profile a given clip's content exactly once.
    """
    global _SHARED_CACHE
    with _SHARED_LOCK:
        if _SHARED_CACHE is None:
            _SHARED_CACHE = ProfileCache()
        return _SHARED_CACHE
