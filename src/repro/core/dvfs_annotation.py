"""Decode-complexity annotations for CPU frequency/voltage scaling.

Section 3: without annotations a client must decode a frame before knowing
how expensive it was — too late to slow the CPU down.  With the decode
complexity annotated per scene, the client sets the CPU operating point
*before* the scene starts ("applied before decoding is finished, because
the annotated information is available early from the data stream").

The annotation carries, per scene, the worst-case decode cycles of any
member frame; the client picks the slowest operating point that retires
that many cycles within a frame period.  Sharing the backlight scheme's
scene structure keeps the two annotation tracks aligned and the combined
overhead a few bytes per scene.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..power.dvfs import DvfsCpuModel, FrequencyLevel
from ..video.clip import ClipBase
from .pipeline import ProfileResult
from .rle import decode_varint, encode_varint
from .scene import Scene

_MAGIC_DVFS = b"ANC1"


@dataclass(frozen=True)
class DvfsSceneAnnotation:
    """Worst-case decode cycles per frame for one scene."""

    start: int
    end: int
    cycles_per_frame: float

    def __post_init__(self):
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid annotation bounds [{self.start}, {self.end})")
        if self.cycles_per_frame < 0:
            raise ValueError("cycles_per_frame must be non-negative")

    @property
    def length(self) -> int:
        return self.end - self.start


class DvfsTrack:
    """Per-scene decode-complexity annotations for one clip."""

    def __init__(self, clip_name: str, frame_count: int, fps: float,
                 scenes: Sequence[DvfsSceneAnnotation]):
        if fps <= 0:
            raise ValueError("fps must be positive")
        scenes = list(scenes)
        if not scenes:
            raise ValueError("DVFS track needs at least one scene")
        if scenes[0].start != 0:
            raise ValueError("annotations must start at frame 0")
        for prev, cur in zip(scenes, scenes[1:]):
            if cur.start != prev.end:
                raise ValueError(f"annotation gap at frame {prev.end}")
        if scenes[-1].end != frame_count:
            raise ValueError("annotations must cover the whole clip")
        self.clip_name = clip_name
        self.frame_count = int(frame_count)
        self.fps = float(fps)
        self.scenes: List[DvfsSceneAnnotation] = scenes

    # ------------------------------------------------------------------
    def per_frame_cycles(self) -> np.ndarray:
        """Annotated decode cycles expanded per frame."""
        cycles = np.empty(self.frame_count)
        for scene in self.scenes:
            cycles[scene.start : scene.end] = scene.cycles_per_frame
        return cycles

    def frequency_schedule(self, cpu: DvfsCpuModel) -> List[FrequencyLevel]:
        """Per-frame operating point: the client-side table lookup."""
        period = 1.0 / self.fps
        schedule: List[FrequencyLevel] = []
        for scene in self.scenes:
            level = cpu.slowest_level_for(scene.cycles_per_frame, period)
            schedule.extend([level] * scene.length)
        return schedule

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Header + per-scene (varint length, varint kilocycles)."""
        out = bytearray(_MAGIC_DVFS)
        out.extend(struct.pack("<f", self.fps))
        out.extend(encode_varint(self.frame_count))
        out.extend(encode_varint(len(self.scenes)))
        for scene in self.scenes:
            out.extend(encode_varint(scene.length))
            out.extend(encode_varint(int(round(scene.cycles_per_frame / 1000.0))))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, clip_name: str = "clip") -> "DvfsTrack":
        if data[:4] != _MAGIC_DVFS:
            raise ValueError("not a DVFS annotation track")
        if len(data) < 8:
            raise ValueError("truncated DVFS track header")
        (fps,) = struct.unpack_from("<f", data, 4)
        pos = 4 + 4
        frame_count, pos = decode_varint(data, pos)
        n_scenes, pos = decode_varint(data, pos)
        scenes = []
        start = 0
        for _ in range(n_scenes):
            length, pos = decode_varint(data, pos)
            kcycles, pos = decode_varint(data, pos)
            scenes.append(DvfsSceneAnnotation(start, start + length, kcycles * 1000.0))
            start += length
        if pos != len(data):
            raise ValueError("trailing bytes in DVFS track")
        return cls(clip_name, frame_count, fps, scenes)

    @property
    def nbytes(self) -> int:
        return len(self.to_bytes())

    def __repr__(self) -> str:
        return (
            f"DvfsTrack({self.clip_name!r}, scenes={len(self.scenes)}, "
            f"frames={self.frame_count})"
        )


class DvfsAnnotator:
    """Server-side producer of decode-complexity annotations.

    Parameters
    ----------
    decoder:
        Timing model used to estimate per-frame decode cycles (the same
        model the client's player embodies).
    headroom:
        Multiplicative safety margin on the annotated cycles (covers
        estimation error; 1.1 = 10 % slack).
    codec:
        Optional :class:`~repro.video.codec.CodecModel`; when given, each
        frame's cycles are scaled by its GOP type's decode factor
        (motion-compensated frames cost more than intra frames).
    """

    def __init__(self, decoder=None, headroom: float = 1.1, codec=None):
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if decoder is None:
            # Imported here to keep core free of a package-level dependency
            # on the player (the player imports core in turn).
            from ..player.decoder import DecoderModel

            decoder = DecoderModel()
        self.decoder = decoder
        self.headroom = headroom
        self.codec = codec

    def frame_cycles(self, frame, index: int = None) -> float:
        """Estimated decode cycles for one frame."""
        cycles = self.decoder.decode_time_s(frame) * self.decoder.cpu_hz * self.headroom
        if self.codec is not None and index is not None:
            cycles *= self.codec.decode_cycles_factor(self.codec.gop.frame_type(index))
        return cycles

    def annotate(self, clip: ClipBase, scenes: Sequence[Scene]) -> DvfsTrack:
        """Annotate a clip over an existing scene partition.

        Reuses the backlight pipeline's scenes so both annotation tracks
        share boundaries (one ``ProfileResult`` drives both).
        """
        per_frame = np.array([
            self.frame_cycles(frame, index=i) for i, frame in enumerate(clip)
        ])
        annotations = [
            DvfsSceneAnnotation(
                start=scene.start,
                end=scene.end,
                cycles_per_frame=float(per_frame[scene.start : scene.end].max()),
            )
            for scene in scenes
        ]
        return DvfsTrack(clip.name, clip.frame_count, clip.fps, annotations)

    def annotate_with_profile(self, clip: ClipBase, profile: ProfileResult) -> DvfsTrack:
        """Convenience: annotate over a backlight pipeline profile."""
        return self.annotate(clip, profile.scenes)
