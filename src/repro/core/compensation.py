"""Image compensation: keeping perceived intensity while dimming.

Section 4.1 gives the two compensation operators:

* **Brightness compensation** — ``C' = min(1, C + delta)``: "a constant
  value is added to each pixel's value ... Each RGB value needs to be
  compensated by same amount to maintain original colors."
* **Contrast enhancement** — ``C' = min(1, C * k)``: "all pixels in the
  image are multiplied by a constant amount ... We use this method in our
  work and we select a k value to maintain the same perceived intensity I
  (keep the product of L and Y constant, i.e. k = L/L')."

Both operate on normalized RGB channels; saturation at 1.0 is where the
quality loss (clipping) happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..video.frame import Frame, MAX_CHANNEL


@dataclass(frozen=True)
class CompensationResult:
    """A compensated frame plus the damage report."""

    frame: Frame
    clipped_fraction: float

    def __post_init__(self):
        if not 0.0 <= self.clipped_fraction <= 1.0:
            raise ValueError(
                f"clipped fraction out of [0, 1]: {self.clipped_fraction}"
            )


def brightness_compensation(frame: Frame, delta: float) -> CompensationResult:
    """Add ``delta`` (normalized units) to every channel of every pixel.

    Returns the compensated frame and the fraction of pixels that hit the
    ceiling on at least one channel.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    values = frame.normalized() + delta
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


def contrast_enhancement(frame: Frame, gain: float) -> CompensationResult:
    """Multiply every channel of every pixel by ``gain`` (k >= 1).

    The workhorse compensation of the paper.  Multiplying all three
    channels by the same gain scales the BT.601 luminance by exactly the
    same gain, so ``k = L / L'`` keeps ``I = rho * L * Y`` constant for
    every pixel that does not saturate.
    """
    if gain < 1.0:
        raise ValueError(
            f"compensation gain must be >= 1 (we brighten while dimming), got {gain}"
        )
    values = frame.normalized() * gain
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


def contrast_enhancement_batch(
    pixels: np.ndarray, gains: Union[float, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched contrast enhancement over an ``(N, H, W, 3)`` uint8 chunk.

    Bit-identical to running :func:`contrast_enhancement` on each frame:
    the same normalize → scale → clip → quantize float operations are
    applied elementwise, just across the whole batch at once.

    Parameters
    ----------
    pixels:
        ``(N, H, W, 3)`` uint8 batch.
    gains:
        Scalar or per-frame ``(N,)`` gain vector.  Gains must be positive;
        frames with ``gain <= 1`` pass through unchanged with zero
        clipping, mirroring the annotated stream's full-backlight
        short-circuit (a gain of exactly 1 round-trips uint8 pixels).

    Returns
    -------
    (compensated, fractions):
        A new ``(N, H, W, 3)`` uint8 batch and the per-frame clipped
        fraction as an ``(N,)`` float array.
    """
    pixels = np.asarray(pixels)
    if pixels.ndim != 4 or pixels.shape[3] != 3:
        raise ValueError(f"batch pixels must be (N, H, W, 3), got {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise ValueError(f"batch pixels must be uint8, got {pixels.dtype}")
    n = pixels.shape[0]
    g = np.asarray(gains, dtype=np.float64)
    if g.ndim == 0:
        g = np.full(n, float(g))
    if g.shape != (n,):
        raise ValueError(f"gains must be scalar or shape ({n},), got {g.shape}")
    if np.any(g <= 0):
        raise ValueError("compensation gains must be positive")

    fractions = np.zeros(n)
    active = g > 1.0
    if not active.any():
        return pixels.copy(), fractions

    sub = pixels if active.all() else pixels[active]
    values = sub.astype(np.float64)
    values /= MAX_CHANNEL
    values *= g[active][:, None, None, None]
    threshold = 1.0 + 1e-12
    # Chained per-channel comparisons instead of np.any(..., axis=-1):
    # same booleans, far cheaper than a reduction over the strided axis.
    clipped = (
        (values[..., 0] > threshold)
        | (values[..., 1] > threshold)
        | (values[..., 2] > threshold)
    )
    active_fractions = clipped.mean(axis=(1, 2))
    np.minimum(values, 1.0, out=values)
    values *= MAX_CHANNEL
    np.rint(values, out=values)
    compensated_active = values.astype(np.uint8)

    if active.all():
        return compensated_active, active_fractions
    compensated = pixels.copy()
    compensated[active] = compensated_active
    fractions[active] = active_fractions
    return compensated, fractions


def compensate_for_backlight(frame: Frame, backlight_luminance: float) -> CompensationResult:
    """Contrast-enhance a frame for a dimmed backlight.

    ``backlight_luminance`` is the relative output ``L'/L`` of the dimmed
    backlight; the gain is the paper's ``k = L / L'``.
    """
    if not 0.0 < backlight_luminance <= 1.0:
        raise ValueError(
            f"backlight luminance must be in (0, 1], got {backlight_luminance}"
        )
    return contrast_enhancement(frame, 1.0 / backlight_luminance)
