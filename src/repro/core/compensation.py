"""Image compensation: keeping perceived intensity while dimming.

Section 4.1 gives the two compensation operators:

* **Brightness compensation** — ``C' = min(1, C + delta)``: "a constant
  value is added to each pixel's value ... Each RGB value needs to be
  compensated by same amount to maintain original colors."
* **Contrast enhancement** — ``C' = min(1, C * k)``: "all pixels in the
  image are multiplied by a constant amount ... We use this method in our
  work and we select a k value to maintain the same perceived intensity I
  (keep the product of L and Y constant, i.e. k = L/L')."

Both operate on normalized RGB channels; saturation at 1.0 is where the
quality loss (clipping) happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..video.frame import Frame


@dataclass(frozen=True)
class CompensationResult:
    """A compensated frame plus the damage report."""

    frame: Frame
    clipped_fraction: float

    def __post_init__(self):
        if not 0.0 <= self.clipped_fraction <= 1.0:
            raise ValueError(
                f"clipped fraction out of [0, 1]: {self.clipped_fraction}"
            )


def brightness_compensation(frame: Frame, delta: float) -> CompensationResult:
    """Add ``delta`` (normalized units) to every channel of every pixel.

    Returns the compensated frame and the fraction of pixels that hit the
    ceiling on at least one channel.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    values = frame.normalized() + delta
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


def contrast_enhancement(frame: Frame, gain: float) -> CompensationResult:
    """Multiply every channel of every pixel by ``gain`` (k >= 1).

    The workhorse compensation of the paper.  Multiplying all three
    channels by the same gain scales the BT.601 luminance by exactly the
    same gain, so ``k = L / L'`` keeps ``I = rho * L * Y`` constant for
    every pixel that does not saturate.
    """
    if gain < 1.0:
        raise ValueError(
            f"compensation gain must be >= 1 (we brighten while dimming), got {gain}"
        )
    values = frame.normalized() * gain
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


def compensate_for_backlight(frame: Frame, backlight_luminance: float) -> CompensationResult:
    """Contrast-enhance a frame for a dimmed backlight.

    ``backlight_luminance`` is the relative output ``L'/L`` of the dimmed
    backlight; the gain is the paper's ``k = L / L'``.
    """
    if not 0.0 < backlight_luminance <= 1.0:
        raise ValueError(
            f"backlight luminance must be in (0, 1], got {backlight_luminance}"
        )
    return contrast_enhancement(frame, 1.0 / backlight_luminance)
