"""Image compensation: keeping perceived intensity while dimming.

Section 4.1 gives the two compensation operators:

* **Brightness compensation** — ``C' = min(1, C + delta)``: "a constant
  value is added to each pixel's value ... Each RGB value needs to be
  compensated by same amount to maintain original colors."
* **Contrast enhancement** — ``C' = min(1, C * k)``: "all pixels in the
  image are multiplied by a constant amount ... We use this method in our
  work and we select a k value to maintain the same perceived intensity I
  (keep the product of L and Y constant, i.e. k = L/L')."

Both operate on normalized RGB channels; saturation at 1.0 is where the
quality loss (clipping) happens.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..video.frame import Frame, MAX_CHANNEL


@dataclass(frozen=True)
class CompensationResult:
    """A compensated frame plus the damage report."""

    frame: Frame
    clipped_fraction: float

    def __post_init__(self):
        if not 0.0 <= self.clipped_fraction <= 1.0:
            raise ValueError(
                f"clipped fraction out of [0, 1]: {self.clipped_fraction}"
            )


def brightness_compensation(frame: Frame, delta: float) -> CompensationResult:
    """Add ``delta`` (normalized units) to every channel of every pixel.

    Returns the compensated frame and the fraction of pixels that hit the
    ceiling on at least one channel.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    values = frame.normalized() + delta
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


def contrast_enhancement(frame: Frame, gain: float) -> CompensationResult:
    """Multiply every channel of every pixel by ``gain`` (k >= 1).

    The workhorse compensation of the paper.  Multiplying all three
    channels by the same gain scales the BT.601 luminance by exactly the
    same gain, so ``k = L / L'`` keeps ``I = rho * L * Y`` constant for
    every pixel that does not saturate.
    """
    if gain < 1.0:
        raise ValueError(
            f"compensation gain must be >= 1 (we brighten while dimming), got {gain}"
        )
    values = frame.normalized() * gain
    clipped = np.any(values > 1.0 + 1e-12, axis=-1)
    result = Frame(np.minimum(values, 1.0), index=frame.index)
    return CompensationResult(frame=result, clipped_fraction=float(clipped.mean()))


#: Byte codes 0..255 as float64, the domain of a compensation LUT.
_LUT_CODES = np.arange(int(MAX_CHANNEL) + 1, dtype=np.float64)

#: ``clip_code`` sentinel for "no byte code clips at this gain".
_NEVER_CLIPS = int(MAX_CHANNEL) + 1

_GAIN_LUT_LOCK = threading.Lock()
_GAIN_LUT_CACHE = None


def gain_lut_cache():
    """The process-wide cache of per-gain compensation LUTs.

    Backed by a :class:`~repro.core.profile_cache.ProfileCache` (lazily
    created, imported lazily to keep this module dependency-light), so
    LUT reuse shows up in the same cache telemetry series as profile
    reuse.  A LUT is 256 bytes; a distinct gain exists per annotated
    scene, so even a large catalog fits comfortably in the bound.
    """
    global _GAIN_LUT_CACHE
    with _GAIN_LUT_LOCK:
        if _GAIN_LUT_CACHE is None:
            from .profile_cache import ProfileCache

            _GAIN_LUT_CACHE = ProfileCache(max_entries=256)
        return _GAIN_LUT_CACHE


def _build_gain_lut(gain: float) -> Tuple[np.ndarray, int]:
    # The exact float operation sequence of the reference kernel, applied
    # to every possible byte code instead of every pixel: normalize,
    # scale, saturate, re-quantize.  Elementwise ops on the same inputs in
    # the same order produce the same bits, so looking pixels up through
    # this table is provably identical to the per-pixel float path.
    values = _LUT_CODES / MAX_CHANNEL
    values *= gain
    clipped = values > 1.0 + 1e-12
    np.minimum(values, 1.0, out=values)
    values *= MAX_CHANNEL
    np.rint(values, out=values)
    lut = values.astype(np.uint8)
    lut.setflags(write=False)
    hits = np.nonzero(clipped)[0]
    clip_code = int(hits[0]) if hits.size else _NEVER_CLIPS
    return lut, clip_code


def gain_lut(gain: float) -> Tuple[np.ndarray, int]:
    """The 256-entry compensation LUT for one gain, plus its clip code.

    Returns ``(lut, clip_code)``: ``lut[x]`` is the compensated byte for
    input byte ``x`` — bit-identical to the float path's
    ``rint(min(x / 255 * gain, 1) * 255)`` — and ``clip_code`` is the
    smallest byte code that saturates (``256`` when none does; the scale
    ``x / 255 * gain`` is monotone in ``x``, so the clipping codes form
    the up-set ``[clip_code, 255]``).  LUTs are cached process-wide via
    :func:`gain_lut_cache`.
    """
    key = ("gain-lut", float(gain))
    cache = gain_lut_cache()
    entry = cache.get(key)
    if entry is None:
        entry = _build_gain_lut(float(gain))
        cache.put(key, entry)
    return entry


class ChunkArena:
    """A reusable uint8 output buffer for batched compensation.

    Repeated :func:`contrast_enhancement_batch` calls over equally sized
    chunks each allocate a fresh ``(N, H, W, 3)`` output; an arena lets a
    streaming loop reuse one allocation across batches instead.
    **Aliasing caveat**: a view handed out by :meth:`request` is
    invalidated by the next ``request`` of a compatible size — only use
    an arena when each batch is fully consumed (copied, encoded, written)
    before the next one is produced.
    """

    def __init__(self):
        self._buffer: Optional[np.ndarray] = None

    def request(self, shape: Tuple[int, ...]) -> np.ndarray:
        """A writable uint8 array of ``shape``, reusing prior capacity."""
        size = 1
        for dim in shape:
            size *= int(dim)
        if self._buffer is None or self._buffer.size < size:
            self._buffer = np.empty(size, dtype=np.uint8)
        return self._buffer[:size].reshape(shape)


def _check_batch_args(
    pixels: np.ndarray, gains: Union[float, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared validation for the batched kernels; returns (pixels, (N,) gains)."""
    pixels = np.asarray(pixels)
    if pixels.ndim != 4 or pixels.shape[3] != 3:
        raise ValueError(f"batch pixels must be (N, H, W, 3), got {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise ValueError(f"batch pixels must be uint8, got {pixels.dtype}")
    n = pixels.shape[0]
    g = np.asarray(gains, dtype=np.float64)
    if g.ndim == 0:
        g = np.full(n, float(g))
    if g.shape != (n,):
        raise ValueError(f"gains must be scalar or shape ({n},), got {g.shape}")
    if np.any(g <= 0):
        raise ValueError("compensation gains must be positive")
    return pixels, g


def contrast_enhancement_batch(
    pixels: np.ndarray,
    gains: Union[float, np.ndarray],
    out: Optional[np.ndarray] = None,
    fractions: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched contrast enhancement over an ``(N, H, W, 3)`` uint8 chunk.

    Bit-identical to running :func:`contrast_enhancement` on each frame.
    The hot loop is *fused*: instead of materializing a float64 scratch
    copy of the chunk (24 bytes per pixel) and running the normalize →
    scale → clip → quantize sequence per pixel, each distinct gain's
    mapping is precomputed once into a 256-entry uint8 LUT
    (:func:`gain_lut`) and pixels are gathered through it — the float
    math runs 256 times per gain instead of once per channel sample.
    Clipped fractions come from the peak channel against the LUT's clip
    code, which selects exactly the pixels the float path flags (the
    gain scale is monotone per byte code).
    :func:`contrast_enhancement_batch_reference` keeps the direct float
    implementation as the equivalence oracle.

    Parameters
    ----------
    pixels:
        ``(N, H, W, 3)`` uint8 batch.
    gains:
        Scalar or per-frame ``(N,)`` gain vector.  Gains must be positive;
        frames with ``gain <= 1`` pass through unchanged with zero
        clipping, mirroring the annotated stream's full-backlight
        short-circuit (a gain of exactly 1 round-trips uint8 pixels).
    out:
        Optional preallocated ``(N, H, W, 3)`` uint8 output (e.g. from a
        :class:`ChunkArena`); a fresh array is allocated when omitted.
    fractions:
        Optional precomputed per-frame clipped fractions, ``(N,)`` float.
        When given, the kernel skips the peak-channel reduction entirely
        and returns this array as-is — the caller asserts the values
        equal what the kernel would compute (e.g. derived from the
        profiling pass's exact peak-channel histograms, as
        :class:`~repro.core.pipeline.AnnotatedStream` does).  This keeps
        the hot loop down to pure LUT gathers, which matters under
        thread contention: the gather holds the GIL while the large
        reduction ufuncs release and reacquire it around every op,
        inviting preemption mid-chunk.

    Returns
    -------
    (compensated, fractions):
        The compensated ``(N, H, W, 3)`` uint8 batch (``out`` when given)
        and the per-frame clipped fraction as an ``(N,)`` float array.
    """
    pixels, g = _check_batch_args(pixels, gains)
    n = pixels.shape[0]
    if out is None:
        out = np.empty_like(pixels)
    elif (
        not isinstance(out, np.ndarray)
        or out.shape != pixels.shape
        or out.dtype != np.uint8
    ):
        raise ValueError(
            f"out must be a uint8 array of shape {pixels.shape}"
        )
    if fractions is not None:
        fractions = np.asarray(fractions, dtype=np.float64)
        if fractions.shape != (n,):
            raise ValueError(
                f"fractions must have shape ({n},), got {fractions.shape}"
            )
        compute_fractions = False
    else:
        fractions = np.zeros(n)
        compute_fractions = True
    # Gains are per-scene, so equal-gain frames form contiguous runs;
    # each run is one LUT gather plus one peak-channel reduction.
    lo = 0
    while lo < n:
        hi = lo + 1
        while hi < n and g[hi] == g[lo]:
            hi += 1
        gain = float(g[lo])
        run = pixels[lo:hi]
        if gain <= 1.0:
            out[lo:hi] = run
        else:
            lut, clip_code = gain_lut(gain)
            np.take(lut, run, out=out[lo:hi])
            if compute_fractions and clip_code <= int(MAX_CHANNEL):
                # Chained np.maximum over the channel views — same idiom
                # (and same speedup) as FrameChunk.peak_channel_u8.
                peak = np.maximum(
                    np.maximum(run[..., 0], run[..., 1]), run[..., 2]
                )
                fractions[lo:hi] = (peak >= clip_code).mean(axis=(1, 2))
        lo = hi
    return out, fractions


def contrast_enhancement_batch_reference(
    pixels: np.ndarray, gains: Union[float, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """The direct float implementation of :func:`contrast_enhancement_batch`.

    Applies the normalize → scale → clip → quantize sequence to a float64
    copy of the whole batch — the pre-LUT hot loop, kept as the oracle
    the fused kernel is pinned against (and as the measurement baseline
    for the LUT speedup benchmark).
    """
    pixels, g = _check_batch_args(pixels, gains)
    n = pixels.shape[0]

    fractions = np.zeros(n)
    active = g > 1.0
    if not active.any():
        return pixels.copy(), fractions

    sub = pixels if active.all() else pixels[active]
    values = sub.astype(np.float64)
    values /= MAX_CHANNEL
    values *= g[active][:, None, None, None]
    threshold = 1.0 + 1e-12
    # Chained per-channel comparisons instead of np.any(..., axis=-1):
    # same booleans, far cheaper than a reduction over the strided axis.
    clipped = (
        (values[..., 0] > threshold)
        | (values[..., 1] > threshold)
        | (values[..., 2] > threshold)
    )
    active_fractions = clipped.mean(axis=(1, 2))
    np.minimum(values, 1.0, out=values)
    values *= MAX_CHANNEL
    np.rint(values, out=values)
    compensated_active = values.astype(np.uint8)

    if active.all():
        return compensated_active, active_fractions
    compensated = pixels.copy()
    compensated[active] = compensated_active
    fractions[active] = active_fractions
    return compensated, fractions


def compensate_for_backlight(frame: Frame, backlight_luminance: float) -> CompensationResult:
    """Contrast-enhance a frame for a dimmed backlight.

    ``backlight_luminance`` is the relative output ``L'/L`` of the dimmed
    backlight; the gain is the paper's ``k = L / L'``.
    """
    if not 0.0 < backlight_luminance <= 1.0:
        raise ValueError(
            f"backlight luminance must be in (0, 1], got {backlight_luminance}"
        )
    return contrast_enhancement(frame, 1.0 / backlight_luminance)
