"""Run-length encoding for annotation tracks.

Section 4.3: "The annotations are RLE compressed, so the overhead is
minimal, in the order of hundreds of bytes for our video clips which are
on the order of a few megabytes."

Backlight levels are constant across a scene, so a per-frame level stream
is long runs of identical bytes — the ideal RLE input.  Runs are encoded
as ``(value byte, varint run length)`` pairs; varints use the standard
LEB128 little-endian 7-bits-per-byte format.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one LEB128 varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def runs_of(values: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse a sequence into ``(value, run_length)`` pairs."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("RLE input must be 1-D")
    if arr.size == 0:
        return []
    change_points = np.nonzero(np.diff(arr))[0] + 1
    starts = np.concatenate(([0], change_points))
    ends = np.concatenate((change_points, [arr.size]))
    return [(int(arr[s]), int(e - s)) for s, e in zip(starts, ends)]


def expand_runs(runs: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Inverse of :func:`runs_of`."""
    values: List[int] = []
    lengths: List[int] = []
    for value, length in runs:
        if length <= 0:
            raise ValueError(f"run length must be positive, got {length}")
        values.append(value)
        lengths.append(length)
    if not values:
        return np.array([], dtype=np.int64)
    return np.repeat(np.asarray(values, dtype=np.int64), lengths)


def rle_encode(values: Sequence[int]) -> bytes:
    """Encode a byte-valued sequence (0-255) as RLE bytes.

    Layout: varint run count, then per run a value byte followed by a
    varint run length.
    """
    arr = np.asarray(values)
    if arr.size and (arr.min() < 0 or arr.max() > 255):
        raise ValueError("RLE values must fit in a byte (0-255)")
    runs = runs_of(arr)
    out = bytearray(encode_varint(len(runs)))
    for value, length in runs:
        out.append(value)
        out.extend(encode_varint(length))
    return bytes(out)


def rle_decode(data: bytes) -> np.ndarray:
    """Decode bytes produced by :func:`rle_encode`."""
    count, pos = decode_varint(data, 0)
    runs: List[Tuple[int, int]] = []
    for _ in range(count):
        if pos >= len(data):
            raise ValueError("truncated RLE stream (missing value byte)")
        value = data[pos]
        pos += 1
        length, pos = decode_varint(data, pos)
        runs.append((value, length))
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after RLE stream")
    return expand_runs(runs)


def compression_ratio(values: Sequence[int]) -> float:
    """Raw size over encoded size for a level stream (>= 1 is a win)."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot compute the ratio of an empty stream")
    encoded = rle_encode(arr)
    return arr.size / len(encoded)
