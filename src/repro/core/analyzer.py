"""Stream analysis: the profiling pass that feeds annotation.

Section 3 defines data annotation as "the process of analyzing a stream of
data and supplementing it with a summary of the information collected".
For the backlight application the summary per frame is its luminance
histogram and the statistics derived from it; everything downstream (scene
detection, clipping, backlight computation) consumes :class:`FrameStats`
and never touches pixels again — which is what makes the client-side work
"negligible".

Two histograms are kept per frame:

* the **luminance** histogram (BT.601 Y) — the paper's quantity, used for
  quality evaluation and the paper-literal analysis mode;
* the **peak-channel** histogram (per-pixel max of R, G, B) — the quantity
  that actually saturates first under multiplicative compensation.  The
  default *color-safe* analysis mode budgets clipping on this histogram,
  so the "percent of pixels clipped" guarantee holds even for saturated
  colors (the paper notes that otherwise "colors change").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..quality.histogram import LuminanceHistogram, NUM_BINS
from ..video.clip import ClipBase
from ..video.frame import Frame


@dataclass(frozen=True)
class FrameStats:
    """Luminance/value summary of one frame.

    Attributes
    ----------
    index:
        Frame position in the clip.
    histogram:
        256-bin luminance histogram (BT.601 Y).
    channel_histogram:
        256-bin histogram of per-pixel peak channel values.
    max_luminance:
        Brightest occupied luminance, normalized to [0, 1].
    max_channel_value:
        Largest occupied peak-channel value, normalized to [0, 1].
    mean_luminance:
        Average luminance, normalized to [0, 1].
    """

    index: int
    histogram: LuminanceHistogram
    channel_histogram: LuminanceHistogram
    max_luminance: float
    max_channel_value: float
    mean_luminance: float

    @classmethod
    def of(cls, frame: Frame) -> "FrameStats":
        hist = LuminanceHistogram.of(frame)
        chan_hist = LuminanceHistogram.of(frame.peak_channel)
        occupied = np.nonzero(hist.counts)[0]
        chan_occupied = np.nonzero(chan_hist.counts)[0]
        return cls(
            index=frame.index,
            histogram=hist,
            channel_histogram=chan_hist,
            max_luminance=float(occupied[-1]) / (NUM_BINS - 1),
            max_channel_value=float(chan_occupied[-1]) / (NUM_BINS - 1),
            mean_luminance=hist.average_point / (NUM_BINS - 1),
        )

    # ------------------------------------------------------------------
    def max_value(self, color_safe: bool = True) -> float:
        """The frame maximum that drives scene detection and backlight.

        Color-safe mode uses the peak channel value; paper-literal mode
        uses the luminance.
        """
        return self.max_channel_value if color_safe else self.max_luminance

    def effective_max(self, clip_fraction: float, color_safe: bool = True) -> float:
        """Max value after allowing ``clip_fraction`` of pixels to clip.

        The fixed-percent heuristic of Section 4.3, evaluated on the
        appropriate histogram; normalized to [0, 1].
        """
        hist = self.channel_histogram if color_safe else self.histogram
        return hist.clip_point(clip_fraction) / (NUM_BINS - 1)

    def effective_max_luminance(self, clip_fraction: float) -> float:
        """Paper-literal (luminance) form of :meth:`effective_max`."""
        return self.effective_max(clip_fraction, color_safe=False)


class StreamAnalyzer:
    """Single-pass analyzer producing per-frame statistics for a clip.

    This is the server/proxy profiling step ("the video clips available for
    streaming at the servers are first profiled, processed and annotated").
    For proxy-style on-the-fly operation, :meth:`analyze_frames` accepts an
    incremental frame iterator instead of a whole clip.
    """

    def analyze(self, clip: ClipBase) -> List[FrameStats]:
        """Profile every frame of a clip."""
        return self.analyze_frames(clip)

    def analyze_frames(self, frames: Iterable[Frame]) -> List[FrameStats]:
        """Profile an arbitrary frame stream."""
        stats = [FrameStats.of(frame) for frame in frames]
        if not stats:
            raise ValueError("stream produced no frames to analyze")
        return stats

    @staticmethod
    def max_luminance_series(stats: Sequence[FrameStats]) -> np.ndarray:
        """Per-frame max luminance — the Figure 6 'Max. Luminance' curve."""
        return np.array([s.max_luminance for s in stats])

    @staticmethod
    def max_value_series(stats: Sequence[FrameStats], color_safe: bool = True) -> np.ndarray:
        """Per-frame max value in the selected analysis mode."""
        return np.array([s.max_value(color_safe) for s in stats])

    @staticmethod
    def effective_max_series(
        stats: Sequence[FrameStats], clip_fraction: float, color_safe: bool = True
    ) -> np.ndarray:
        """Per-frame clipped max value for a quality level."""
        return np.array([s.effective_max(clip_fraction, color_safe) for s in stats])
