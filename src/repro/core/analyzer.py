"""Stream analysis: the profiling pass that feeds annotation.

Section 3 defines data annotation as "the process of analyzing a stream of
data and supplementing it with a summary of the information collected".
For the backlight application the summary per frame is its luminance
histogram and the statistics derived from it; everything downstream (scene
detection, clipping, backlight computation) consumes :class:`FrameStats`
and never touches pixels again — which is what makes the client-side work
"negligible".

Two histograms are kept per frame:

* the **luminance** histogram (BT.601 Y) — the paper's quantity, used for
  quality evaluation and the paper-literal analysis mode;
* the **peak-channel** histogram (per-pixel max of R, G, B) — the quantity
  that actually saturates first under multiplicative compensation.  The
  default *color-safe* analysis mode budgets clipping on this histogram,
  so the "percent of pixels clipped" guarantee holds even for saturated
  colors (the paper notes that otherwise "colors change").

Execution engines
-----------------
Profiling is the pipeline's hot loop, so :class:`StreamAnalyzer` runs it
under a selectable engine (see :mod:`repro.core.engine`).  The default
*chunked* engine pulls ``(N, H, W, 3)`` uint8 batches from the clip and
histograms each chunk with a single offset ``np.bincount`` per plane kind
(frame ``i``'s codes are shifted by ``i * 256``, so one flat bincount
yields all per-frame histograms at once).  The result is bit-identical to
the per-frame reference path — :func:`chunk_frame_stats` uses the same
elementwise float operations in the same order — just several times
faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..quality.histogram import LuminanceHistogram, NUM_BINS
from ..video.chunks import FrameChunk, HeterogeneousFrameError
from ..video.clip import ClipBase
from ..video.frame import Frame
from .engine import EngineSpec, map_chunks, resolve_engine


@dataclass(frozen=True)
class FrameStats:
    """Luminance/value summary of one frame.

    Attributes
    ----------
    index:
        Frame position in the clip.
    histogram:
        256-bin luminance histogram (BT.601 Y).
    channel_histogram:
        256-bin histogram of per-pixel peak channel values.
    max_luminance:
        Brightest occupied luminance, normalized to [0, 1].
    max_channel_value:
        Largest occupied peak-channel value, normalized to [0, 1].
    mean_luminance:
        Average luminance, normalized to [0, 1].
    """

    index: int
    histogram: LuminanceHistogram
    channel_histogram: LuminanceHistogram
    max_luminance: float
    max_channel_value: float
    mean_luminance: float

    @classmethod
    def from_histograms(
        cls,
        index: int,
        histogram: LuminanceHistogram,
        channel_histogram: LuminanceHistogram,
    ) -> "FrameStats":
        """Derive the scalar summary fields from the two histograms."""
        occupied = np.nonzero(histogram.counts)[0]
        chan_occupied = np.nonzero(channel_histogram.counts)[0]
        return cls(
            index=index,
            histogram=histogram,
            channel_histogram=channel_histogram,
            max_luminance=float(occupied[-1]) / (NUM_BINS - 1),
            max_channel_value=float(chan_occupied[-1]) / (NUM_BINS - 1),
            mean_luminance=histogram.average_point / (NUM_BINS - 1),
        )

    @classmethod
    def of(cls, frame: Frame) -> "FrameStats":
        """Per-frame reference path: histogram one frame's planes."""
        return cls.from_histograms(
            index=frame.index,
            histogram=LuminanceHistogram.of(frame),
            channel_histogram=LuminanceHistogram.of(frame.peak_channel),
        )

    # ------------------------------------------------------------------
    def max_value(self, color_safe: bool = True) -> float:
        """The frame maximum that drives scene detection and backlight.

        Color-safe mode uses the peak channel value; paper-literal mode
        uses the luminance.
        """
        return self.max_channel_value if color_safe else self.max_luminance

    def effective_max(self, clip_fraction: float, color_safe: bool = True) -> float:
        """Max value after allowing ``clip_fraction`` of pixels to clip.

        The fixed-percent heuristic of Section 4.3, evaluated on the
        appropriate histogram; normalized to [0, 1].
        """
        hist = self.channel_histogram if color_safe else self.histogram
        return hist.clip_point(clip_fraction) / (NUM_BINS - 1)

    def effective_max_luminance(self, clip_fraction: float) -> float:
        """Paper-literal (luminance) form of :meth:`effective_max`."""
        return self.effective_max(clip_fraction, color_safe=False)


def chunk_frame_stats(
    chunk: FrameChunk, indices: Optional[Sequence[int]] = None
) -> List[FrameStats]:
    """Batched :class:`FrameStats` for every frame of a chunk.

    Bit-identical to mapping :meth:`FrameStats.of` over the frames: the
    luminance codes come from the chunk's table-driven kernel (same float
    math as ``rgb_to_luminance`` + histogram quantization), and both
    histogram families are produced by one offset ``np.bincount`` each —
    frame ``i``'s codes are shifted by ``i * NUM_BINS`` so a single flat
    count covers the whole batch.

    ``indices`` overrides the global frame indices (used when profiling a
    frame stream whose indices do not start at ``chunk.start``).
    """
    n = len(chunk)
    offsets = (np.arange(n, dtype=np.int32) * NUM_BINS)[:, None, None]

    lum_codes = chunk.luminance_codes()
    lum_codes += offsets  # freshly owned array: offset in place
    lum_counts = (
        np.bincount(lum_codes.ravel(), minlength=n * NUM_BINS)
        .reshape(n, NUM_BINS)
        .astype(np.float64)
    )
    # uint8 + int32 broadcasts straight to int32 — no explicit cast pass.
    peak_counts = (
        np.bincount((chunk.peak_channel_u8 + offsets).ravel(), minlength=n * NUM_BINS)
        .reshape(n, NUM_BINS)
        .astype(np.float64)
    )

    # Last occupied bin per frame, vectorized: argmax of the reversed
    # occupancy mask finds the first non-empty bin from the top.
    lum_max = (NUM_BINS - 1) - np.argmax(lum_counts[:, ::-1] > 0, axis=1)
    peak_max = (NUM_BINS - 1) - np.argmax(peak_counts[:, ::-1] > 0, axis=1)

    if indices is None:
        indices = chunk.indices
    stats: List[FrameStats] = []
    for k in range(n):
        hist = LuminanceHistogram._trusted(lum_counts[k])
        chan_hist = LuminanceHistogram._trusted(peak_counts[k])
        stats.append(
            FrameStats(
                index=indices[k],
                histogram=hist,
                channel_histogram=chan_hist,
                max_luminance=float(lum_max[k]) / (NUM_BINS - 1),
                max_channel_value=float(peak_max[k]) / (NUM_BINS - 1),
                mean_luminance=hist.average_point / (NUM_BINS - 1),
            )
        )
    return stats


class StreamAnalyzer:
    """Single-pass analyzer producing per-frame statistics for a clip.

    This is the server/proxy profiling step ("the video clips available for
    streaming at the servers are first profiled, processed and annotated").
    For proxy-style on-the-fly operation, :meth:`analyze_frames` accepts an
    incremental frame iterator instead of a whole clip.

    Parameters
    ----------
    engine:
        Execution engine: ``None`` (default, chunked), an engine kind name
        (``"perframe"``, ``"chunked"``, ``"threads"``, ``"processes"``) or
        a full :class:`~repro.core.engine.EngineConfig`.  Every engine
        produces bit-identical statistics; clips that mix frame
        resolutions fall back to the per-frame path automatically, and
        ``"processes"`` degrades to chunked where process pools are
        unavailable.
    """

    def __init__(self, engine: EngineSpec = None):
        self.engine = resolve_engine(engine)

    def analyze(self, clip: ClipBase) -> List[FrameStats]:
        """Profile every frame of a clip."""
        if self.engine.kind == "perframe":
            return self.analyze_perframe(clip)
        if self.engine.kind == "processes":
            from .procpool import ProcessEngineUnavailable, analyze_clip_processes

            try:
                return analyze_clip_processes(clip, self.engine)
            except HeterogeneousFrameError:
                return self.analyze_perframe(clip)
            except ProcessEngineUnavailable:
                pass  # degrade to the inline chunked path below
        try:
            chunked = map_chunks(
                self.engine,
                chunk_frame_stats,
                clip.iter_chunks(self.engine.resolved_chunk_size(clip.frame_shape())),
            )
        except HeterogeneousFrameError:
            return self.analyze_perframe(clip)
        stats = [s for chunk_stats in chunked for s in chunk_stats]
        if not stats:
            raise ValueError("stream produced no frames to analyze")
        return stats

    def analyze_frames(self, frames: Iterable[Frame]) -> List[FrameStats]:
        """Profile an arbitrary frame stream."""
        if self.engine.kind == "perframe":
            return self.analyze_perframe(frames)
        stats: List[FrameStats] = []
        buffer: List[Frame] = []
        target = 0
        for frame in frames:
            buffer.append(frame)
            if target == 0:
                shape = frame.pixels.shape
                target = self.engine.resolved_chunk_size((shape[0], shape[1]))
            if len(buffer) >= target:
                stats.extend(self._buffered_stats(buffer))
                buffer = []
        if buffer:
            stats.extend(self._buffered_stats(buffer))
        if not stats:
            raise ValueError("stream produced no frames to analyze")
        return stats

    def analyze_perframe(self, frames: Iterable[Frame]) -> List[FrameStats]:
        """Reference implementation: one :class:`Frame` at a time."""
        stats = [FrameStats.of(frame) for frame in frames]
        if not stats:
            raise ValueError("stream produced no frames to analyze")
        return stats

    def _buffered_stats(self, buffer: List[Frame]) -> List[FrameStats]:
        # A buffer mixing resolutions cannot be batched; profile it with
        # the reference path instead (same results, just slower).
        try:
            chunk = FrameChunk.from_frames(buffer)
        except HeterogeneousFrameError:
            return [FrameStats.of(frame) for frame in buffer]
        return chunk_frame_stats(chunk, indices=[frame.index for frame in buffer])

    @staticmethod
    def max_luminance_series(stats: Sequence[FrameStats]) -> np.ndarray:
        """Per-frame max luminance — the Figure 6 'Max. Luminance' curve."""
        return np.array([s.max_luminance for s in stats])

    @staticmethod
    def max_value_series(stats: Sequence[FrameStats], color_safe: bool = True) -> np.ndarray:
        """Per-frame max value in the selected analysis mode."""
        return np.array([s.max_value(color_safe) for s in stats])

    @staticmethod
    def effective_max_series(
        stats: Sequence[FrameStats], clip_fraction: float, color_safe: bool = True
    ) -> np.ndarray:
        """Per-frame clipped max value for a quality level."""
        return np.array([s.effective_max(clip_fraction, color_safe) for s in stats])
