"""Backlight controller: applying annotated levels safely.

Section 4 warns that per-frame backlight changes "may introduce some
flicker", and the related QABS work adds smoothing "that prevents frequent
backlight switching".  Our scheme avoids a post-processing step by limiting
backlight changes at annotation time (the scene rate limiter), but the
client still enforces a hardware-motivated floor: switches cannot come
faster than the backlight's response time, and an optional
minimum-switch-interval guard protects against malformed or adversarial
annotation tracks.

The controller also keeps the switch statistics (count, min interval) that
the flicker ablation benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..display.backlight import BacklightModel
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..telemetry import registry as telemetry_registry


@dataclass
class SwitchEvent:
    """One applied backlight change."""

    time_s: float
    level: int


class BacklightController:
    """Rate-limited backlight level applier.

    Parameters
    ----------
    backlight:
        Hardware model; its response time sets the absolute floor on the
        switch interval.
    min_switch_interval_s:
        Additional policy floor.  A change requested sooner than this
        after the last applied switch is ignored for now; annotated
        playback re-requests the scene level every frame, so the change
        lands on the first frame after the guard expires.
    """

    def __init__(self, backlight: BacklightModel, min_switch_interval_s: float = 0.0):
        if min_switch_interval_s < 0:
            raise ValueError("min_switch_interval_s must be non-negative")
        self.backlight = backlight
        self.min_switch_interval_s = max(
            min_switch_interval_s, backlight.response_time_ms / 1000.0
        )
        self.current_level = MAX_BACKLIGHT_LEVEL
        self._last_switch_time: float = -np.inf
        self.events: List[SwitchEvent] = []
        self._switch_counter = telemetry_registry().counter(
            "repro_backlight_switches_total",
            help="Backlight level changes applied during playback.",
        )

    # ------------------------------------------------------------------
    def request(self, time_s: float, level: int) -> int:
        """Request ``level`` at ``time_s``; returns the level actually set.

        Identical requests are free.  A change inside the guard interval
        is dropped; the caller re-requests on subsequent frames, so the
        change takes effect once the guard expires.
        """
        if not 0 <= level <= MAX_BACKLIGHT_LEVEL:
            raise ValueError(f"backlight level out of range: {level}")
        if level == self.current_level:
            return self.current_level
        if time_s - self._last_switch_time >= self.min_switch_interval_s:
            self._apply(time_s, level)
        return self.current_level

    def _apply(self, time_s: float, level: int) -> None:
        if level != self.current_level:
            self.current_level = level
            self._last_switch_time = time_s
            self.events.append(SwitchEvent(time_s=time_s, level=level))
            self._switch_counter.inc()

    # ------------------------------------------------------------------
    @property
    def switch_count(self) -> int:
        return len(self.events)

    def min_observed_interval(self) -> float:
        """Smallest gap between applied switches (inf when < 2 switches)."""
        if len(self.events) < 2:
            return float("inf")
        times = np.array([e.time_s for e in self.events])
        return float(np.diff(times).min())

    def switches_per_second(self, duration_s: float) -> float:
        """Applied switch rate over a playback duration."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self.switch_count / duration_s
