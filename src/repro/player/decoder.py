"""Decoder timing model.

The paper's client runs "a video player (from Berkeley MPEG tools)" on a
400 MHz XScale.  For power purposes all that matters is how busy the
decoder keeps the CPU; this model estimates per-frame decode time from
frame size and content complexity, yielding the CPU duty cycle the power
model consumes.  It deliberately stops short of bitstream-level detail —
the annotation technique is independent of the codec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..video.frame import Frame


@dataclass(frozen=True)
class DecoderModel:
    """A fixed-point software decoder on a given CPU.

    Attributes
    ----------
    cycles_per_pixel:
        Average decode cost per pixel for typical content.
    complexity_cycles_per_pixel:
        Extra per-pixel cost at maximal spatial complexity (busy frames
        take longer to decode: more coefficients, more motion vectors).
    cpu_hz:
        Clock rate of the client CPU.
    reference_pixels:
        Optional pixel count to charge per frame regardless of the
        simulated frame size (see field comment).
    """

    cycles_per_pixel: float = 150.0
    complexity_cycles_per_pixel: float = 120.0
    cpu_hz: float = 400e6  # iPAQ 5555: 400 MHz Intel XScale
    #: When set, decode cost is charged for this many pixels per frame
    #: instead of the frame's actual size.  Simulations shrink frames for
    #: compute efficiency; this models the CPU as if frames were still at
    #: the device's native resolution (e.g. 320*240 for the iPAQ).
    reference_pixels: Optional[int] = None

    def __post_init__(self):
        if self.cycles_per_pixel <= 0:
            raise ValueError("cycles_per_pixel must be positive")
        if self.complexity_cycles_per_pixel < 0:
            raise ValueError("complexity_cycles_per_pixel must be non-negative")
        if self.cpu_hz <= 0:
            raise ValueError("cpu_hz must be positive")
        if self.reference_pixels is not None and self.reference_pixels <= 0:
            raise ValueError("reference_pixels must be positive when set")

    # ------------------------------------------------------------------
    @staticmethod
    def spatial_complexity(frame: Frame) -> float:
        """Cheap 0-1 complexity proxy: mean absolute luminance gradient."""
        lum = frame.luminance
        gx = np.abs(np.diff(lum, axis=1)).mean() if lum.shape[1] > 1 else 0.0
        gy = np.abs(np.diff(lum, axis=0)).mean() if lum.shape[0] > 1 else 0.0
        # 0.25 mean gradient is already extremely busy content.
        return float(min((gx + gy) / 0.25, 1.0))

    def decode_time_s(self, frame: Frame) -> float:
        """Wall time to decode one frame."""
        per_pixel = self.cycles_per_pixel + self.complexity_cycles_per_pixel * (
            self.spatial_complexity(frame)
        )
        pixels = self.reference_pixels if self.reference_pixels else frame.pixel_count
        return pixels * per_pixel / self.cpu_hz

    def cpu_load(self, frame: Frame, frame_period_s: float) -> float:
        """CPU duty cycle while playing at the given frame period, 0-1."""
        if frame_period_s <= 0:
            raise ValueError("frame period must be positive")
        return min(self.decode_time_s(frame) / frame_period_s, 1.0)

    def can_sustain(self, frame: Frame, fps: float) -> bool:
        """Whether real-time decode is feasible at ``fps``."""
        return self.decode_time_s(frame) <= 1.0 / fps
