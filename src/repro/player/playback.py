"""Playback engine: the client-side loop of the system.

Plays an :class:`~repro.core.pipeline.AnnotatedStream` on a device: each
frame period the engine asks the backlight controller for the annotated
level ("the only extra operation that the device has to perform during
playback is to adjust the backlight level periodically, according to the
annotations in the video stream"), charges the decoder's CPU time, and
accumulates the ground-truth power waveform that the DAQ simulator samples
for the Figure 10 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.pipeline import AnnotatedStream
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..power.daq import DAQSimulator, PowerTrace
from ..power.measurement import simulated_backlight_savings
from ..power.model import ActivityState, DevicePowerModel
from .backlight_control import BacklightController
from .decoder import DecoderModel


@dataclass(frozen=True)
class PlaybackResult:
    """Everything observed during one playback run."""

    device_name: str
    clip_name: str
    fps: float
    applied_levels: np.ndarray
    cpu_loads: np.ndarray
    per_frame_power_w: np.ndarray
    baseline_power_w: np.ndarray
    switch_count: int
    dropped_deadline_count: int

    def __post_init__(self):
        n = self.applied_levels.size
        for name in ("cpu_loads", "per_frame_power_w", "baseline_power_w"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} length mismatch")

    @property
    def duration_s(self) -> float:
        return self.applied_levels.size / self.fps

    @property
    def mean_power_w(self) -> float:
        return float(self.per_frame_power_w.mean())

    @property
    def baseline_mean_power_w(self) -> float:
        return float(self.baseline_power_w.mean())

    @property
    def total_savings(self) -> float:
        """Whole-device power savings vs full backlight (ground truth)."""
        return 1.0 - self.mean_power_w / self.baseline_mean_power_w

    def measure(self, daq: Optional[DAQSimulator] = None, run_id: int = 0) -> PowerTrace:
        """Sample this run's power waveform through a DAQ."""
        daq = daq if daq is not None else DAQSimulator(seed=run_id)
        power = self.per_frame_power_w

        def power_at(t: np.ndarray) -> np.ndarray:
            idx = np.clip((np.asarray(t) * self.fps).astype(np.int64), 0, power.size - 1)
            return power[idx]

        return daq.measure(power_at, self.duration_s)

    def measure_baseline(self, daq: Optional[DAQSimulator] = None, run_id: int = 1) -> PowerTrace:
        """Sample the full-backlight reference run's waveform."""
        daq = daq if daq is not None else DAQSimulator(seed=run_id)
        power = self.baseline_power_w

        def power_at(t: np.ndarray) -> np.ndarray:
            idx = np.clip((np.asarray(t) * self.fps).astype(np.int64), 0, power.size - 1)
            return power[idx]

        return daq.measure(power_at, self.duration_s)


class PlaybackEngine:
    """Drives annotated playback on one device.

    Parameters
    ----------
    device:
        The client device.
    decoder:
        Decoder timing model (defaults to the XScale MPEG profile).
    network_duty:
        WLAN receive duty cycle while streaming.
    min_switch_interval_s:
        Extra policy floor handed to the backlight controller.
    """

    def __init__(
        self,
        device: DeviceProfile,
        decoder: Optional[DecoderModel] = None,
        network_duty: float = 0.8,
        min_switch_interval_s: float = 0.0,
    ):
        if not 0.0 <= network_duty <= 1.0:
            raise ValueError("network_duty must be in [0, 1]")
        self.device = device
        self.decoder = decoder if decoder is not None else DecoderModel()
        self.network_duty = network_duty
        self.min_switch_interval_s = min_switch_interval_s
        self.power_model = DevicePowerModel(device)

    # ------------------------------------------------------------------
    def play(self, stream: AnnotatedStream) -> PlaybackResult:
        """Play an annotated stream to completion."""
        if stream.device.name != self.device.name:
            raise ValueError(
                f"stream was annotated for {stream.device.name!r}, "
                f"engine device is {self.device.name!r}"
            )
        controller = BacklightController(
            self.device.backlight, min_switch_interval_s=self.min_switch_interval_s
        )
        fps = stream.fps
        period = 1.0 / fps
        n = stream.frame_count
        requested = stream.backlight_levels()

        applied = np.empty(n, dtype=np.int64)
        cpu_loads = np.empty(n)
        power = np.empty(n)
        baseline_power = np.empty(n)
        dropped = 0
        for i in range(n):
            t = i * period
            frame, _level = stream.compensated_frame(i).frame, int(requested[i])
            applied[i] = controller.request(t, int(requested[i]))
            cpu_loads[i] = self.decoder.cpu_load(frame, period)
            if not self.decoder.can_sustain(frame, fps):
                dropped += 1
            activity = ActivityState(cpu_load=float(cpu_loads[i]), network_duty=self.network_duty)
            power[i] = float(self.power_model.total_power(activity, int(applied[i])))
            baseline_power[i] = float(
                self.power_model.total_power(activity, MAX_BACKLIGHT_LEVEL)
            )
        return PlaybackResult(
            device_name=self.device.name,
            clip_name=stream.clip.name,
            fps=fps,
            applied_levels=applied,
            cpu_loads=cpu_loads,
            per_frame_power_w=power,
            baseline_power_w=baseline_power,
            switch_count=controller.switch_count,
            dropped_deadline_count=dropped,
        )

    def backlight_savings(self, result: PlaybackResult) -> float:
        """Backlight-only savings for a playback run (Figure 9 metric)."""
        return simulated_backlight_savings(result.applied_levels, self.device)
