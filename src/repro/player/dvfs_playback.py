"""Playback with annotation-driven CPU frequency scaling.

Combines both annotation consumers of Section 3: the backlight track dims
the display per scene, and the DVFS track slows the CPU to the lowest
operating point that still decodes every frame of the scene on time.  The
result quantifies how much the *same* annotation infrastructure saves
beyond the backlight alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.dvfs_annotation import DvfsTrack
from ..core.pipeline import AnnotatedStream
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..power.dvfs import DvfsCpuModel
from ..power.model import ActivityState, DevicePowerModel
from .decoder import DecoderModel


@dataclass(frozen=True)
class DvfsPlaybackResult:
    """Power traces of one combined backlight + DVFS playback run.

    Three waveforms are kept so each optimization's contribution can be
    separated:

    * ``power_combined_w`` — annotated backlight + annotated DVFS;
    * ``power_backlight_only_w`` — annotated backlight, CPU pinned at the
      fastest operating point;
    * ``power_reference_w`` — full backlight, fastest operating point (the
      unoptimized player).
    """

    clip_name: str
    fps: float
    applied_levels: np.ndarray
    frequencies_hz: np.ndarray
    power_combined_w: np.ndarray
    power_backlight_only_w: np.ndarray
    power_reference_w: np.ndarray
    late_frames: int

    @property
    def combined_savings(self) -> float:
        """Total savings of backlight + DVFS vs the unoptimized player."""
        return 1.0 - self.power_combined_w.mean() / self.power_reference_w.mean()

    @property
    def backlight_only_savings(self) -> float:
        return 1.0 - self.power_backlight_only_w.mean() / self.power_reference_w.mean()

    @property
    def dvfs_extra_savings(self) -> float:
        """What DVFS adds on top of the backlight optimization."""
        return self.combined_savings - self.backlight_only_savings

    @property
    def mean_frequency_hz(self) -> float:
        return float(self.frequencies_hz.mean())


class DvfsPlaybackEngine:
    """Plays an annotated stream with a DVFS track on a device.

    Parameters
    ----------
    device:
        Client device profile; its power budget calibrates the CPU model
        unless one is supplied.
    cpu:
        DVFS CPU model (operating points + power law).
    decoder:
        Decode-cost model; must match the one the server used to annotate
        (the annotator's headroom absorbs small mismatches).
    network_duty:
        WLAN receive duty cycle while streaming.
    """

    def __init__(
        self,
        device,
        cpu: Optional[DvfsCpuModel] = None,
        decoder: Optional[DecoderModel] = None,
        network_duty: float = 0.8,
    ):
        if not 0.0 <= network_duty <= 1.0:
            raise ValueError("network_duty must be in [0, 1]")
        self.device = device
        self.cpu = cpu if cpu is not None else DvfsCpuModel(
            active_power_at_max_w=device.power.cpu_active_w,
            idle_power_w=device.power.cpu_idle_w,
        )
        self.decoder = decoder if decoder is not None else DecoderModel()
        self.network_duty = network_duty
        self.power_model = DevicePowerModel(device)

    # ------------------------------------------------------------------
    def _non_cpu_power(self, backlight_level: int) -> float:
        parts = self.power_model.component_power(
            ActivityState(cpu_load=0.0, network_duty=self.network_duty), backlight_level
        )
        return float(
            parts["base"] + parts["network"] + parts["panel"] + np.asarray(parts["backlight"])
        )

    def play(self, stream: AnnotatedStream, dvfs_track: DvfsTrack) -> DvfsPlaybackResult:
        """Run the combined playback and account power per frame."""
        if dvfs_track.frame_count != stream.frame_count:
            raise ValueError(
                f"DVFS track covers {dvfs_track.frame_count} frames, stream has "
                f"{stream.frame_count}"
            )
        fps = stream.fps
        period = 1.0 / fps
        levels = stream.backlight_levels()
        schedule = dvfs_track.frequency_schedule(self.cpu)
        cycles = dvfs_track.per_frame_cycles()
        max_level = self.cpu.max_level

        n = stream.frame_count
        freqs = np.empty(n)
        combined = np.empty(n)
        backlight_only = np.empty(n)
        reference = np.empty(n)
        late = 0
        for i in range(n):
            frame = stream.compensated_frame(i).frame
            true_cycles = self.decoder.decode_time_s(frame) * self.decoder.cpu_hz
            point = schedule[i]
            freqs[i] = point.hz
            if true_cycles > point.hz * period + 1e-9:
                late += 1
            cpu_combined = self.cpu.energy_per_frame_j(point, true_cycles, period) / period
            cpu_max = self.cpu.energy_per_frame_j(max_level, true_cycles, period) / period
            combined[i] = self._non_cpu_power(int(levels[i])) + cpu_combined
            backlight_only[i] = self._non_cpu_power(int(levels[i])) + cpu_max
            reference[i] = self._non_cpu_power(MAX_BACKLIGHT_LEVEL) + cpu_max
        return DvfsPlaybackResult(
            clip_name=stream.clip.name,
            fps=fps,
            applied_levels=levels,
            frequencies_hz=freqs,
            power_combined_w=combined,
            power_backlight_only_w=backlight_only,
            power_reference_w=reference,
            late_frames=late,
        )
