"""Player substrate: decoder timing, backlight control, playback loop."""

from .decoder import DecoderModel
from .backlight_control import BacklightController, SwitchEvent
from .playback import PlaybackEngine, PlaybackResult
from .dvfs_playback import DvfsPlaybackEngine, DvfsPlaybackResult

__all__ = [
    "DecoderModel",
    "BacklightController",
    "SwitchEvent",
    "PlaybackEngine",
    "PlaybackResult",
    "DvfsPlaybackEngine",
    "DvfsPlaybackResult",
]
