"""Static strategies: the do-nothing and blunt-instrument baselines.

Section 2: "there is a limited gain that can be achieved from a static
perspective" — these two strategies are that static perspective, and every
content-adaptive scheme is measured against them.
"""

from __future__ import annotations

import numpy as np

from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


class FullBacklight(BacklightStrategy):
    """No power management: backlight pinned at maximum.

    The reference every savings percentage in the paper is computed
    against.
    """

    name = "full-backlight"

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        n = clip.frame_count
        return SchedulePlan(
            strategy=self.name,
            levels=np.full(n, MAX_BACKLIGHT_LEVEL, dtype=np.int64),
            mode=CompensationMode.NONE,
            params=np.ones(n),
        )


class StaticDim(BacklightStrategy):
    """Content-blind dimming to a fixed level, with fixed compensation.

    Saves a predictable amount of power but pays for it on bright content:
    the clipped fraction is unbounded because no content analysis guards
    the compensation gain.  ``compensate=False`` models naive OS-level
    dimming with no image adjustment at all.
    """

    def __init__(self, level: int, compensate: bool = True):
        if not 0 < level <= MAX_BACKLIGHT_LEVEL:
            raise ValueError(
                f"static level must be in (0, {MAX_BACKLIGHT_LEVEL}], got {level}"
            )
        self.level = level
        self.compensate = compensate
        self.name = f"static-dim-{level}" + ("" if compensate else "-raw")

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        n = clip.frame_count
        if self.compensate:
            gain = device.transfer.compensation_gain_for_level(self.level)
            mode = CompensationMode.CONTRAST
            params = np.full(n, max(gain, 1.0))
        else:
            mode = CompensationMode.NONE
            params = np.ones(n)
        return SchedulePlan(
            strategy=self.name,
            levels=np.full(n, self.level, dtype=np.int64),
            mode=mode,
            params=params,
        )
