"""QABS-style baseline: PSNR-driven backlight scaling with smoothing.

Models the approach of Cheng et al., "Quality Adapted Backlight Scaling
(QABS) for Video Streaming to Mobile Handheld Devices" (reference [4]):
"the backlight scaling technique proposed tries to minimize quality
degradation (PSNR) while dimming the backlight.  Additionally a smoothing
technique is presented that prevents frequent backlight switching."

Per frame the strategy picks the deepest dimming whose compensated image
stays above a PSNR floor, then smooths the schedule: dimming follows an
exponential moving average (slow), while brightening is immediate so the
PSNR floor is never violated by the smoothing itself.  Contrast with the
annotation scheme, which "avoids a post-processing step by limiting
backlight changes" at annotation time.
"""

from __future__ import annotations

import numpy as np

from ..core.analyzer import FrameStats, StreamAnalyzer
from ..display.devices import DeviceProfile
from ..quality.histogram import NUM_BINS
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


def psnr_per_clip_code(stats: FrameStats, white_gamma: float = 1.0) -> np.ndarray:
    """PSNR (dB) of clipping a frame at every luminance code.

    Clipping at code ``c`` perfectly preserves pixels with ``y <= c`` (the
    compensation restores their perceived intensity) and replaces the
    perceived intensity of brighter pixels with that of code ``c``.  The
    per-code MSE is computed from histogram suffix sums in O(bins).
    Returns an array of length 256; entry 255 is +inf (no clipping).
    """
    pmf = stats.histogram.normalized()
    codes = np.arange(NUM_BINS) / (NUM_BINS - 1)
    w = codes**white_gamma  # perceived intensity of each code at full range
    # Suffix sums over codes strictly greater than c.
    s0 = np.concatenate((np.cumsum((pmf)[::-1])[::-1][1:], [0.0]))
    s1 = np.concatenate((np.cumsum((pmf * w)[::-1])[::-1][1:], [0.0]))
    s2 = np.concatenate((np.cumsum((pmf * w * w)[::-1])[::-1][1:], [0.0]))
    mse = s2 - 2.0 * w * s1 + w * w * s0
    mse = np.maximum(mse, 0.0)
    with np.errstate(divide="ignore"):
        return np.where(mse > 0, -10.0 * np.log10(mse), np.inf)


class QABSScaling(BacklightStrategy):
    """PSNR-floor backlight scaling with asymmetric smoothing.

    Parameters
    ----------
    psnr_floor_db:
        Minimum acceptable compensated-frame PSNR.
    alpha:
        EMA coefficient for the dimming direction (0 < alpha <= 1; 1
        disables smoothing).
    min_step:
        Hysteresis: a smoothed change smaller than this many backlight
        codes is not applied.
    """

    def __init__(self, psnr_floor_db: float = 35.0, alpha: float = 0.15, min_step: int = 4):
        if psnr_floor_db <= 0:
            raise ValueError("psnr_floor_db must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_step < 0:
            raise ValueError("min_step must be non-negative")
        self.psnr_floor_db = psnr_floor_db
        self.alpha = alpha
        self.min_step = min_step
        self.name = f"qabs-{round(psnr_floor_db)}dB"

    # ------------------------------------------------------------------
    def _target_levels(self, stats, device: DeviceProfile) -> np.ndarray:
        """Per-frame deepest level honoring the PSNR floor."""
        transfer = device.transfer
        gamma = transfer.white.gamma
        targets = np.empty(len(stats), dtype=np.int64)
        for i, s in enumerate(stats):
            psnr = psnr_per_clip_code(s, white_gamma=gamma)
            ok = np.nonzero(psnr >= self.psnr_floor_db)[0]
            # ok is never empty: code 255 clips nothing (PSNR = inf).
            clip_code = int(ok[0])
            targets[i] = transfer.level_for_scene(clip_code / (NUM_BINS - 1))
        return targets

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        stats = StreamAnalyzer().analyze(clip)
        targets = self._target_levels(stats, device)
        n = targets.size
        levels = np.empty(n, dtype=np.int64)
        ema = float(targets[0])
        current = int(targets[0])
        for i in range(n):
            target = int(targets[i])
            if target > current:
                # Brightening is immediate: the floor must hold now.
                current = target
                ema = float(target)
            else:
                ema = self.alpha * target + (1.0 - self.alpha) * ema
                candidate = int(round(ema))
                if current - candidate >= self.min_step:
                    current = max(candidate, target)
            levels[i] = current
        transfer = device.transfer
        gains = np.array(
            [
                max(transfer.compensation_gain_for_level(int(l)), 1.0) if l > 0 else 1.0
                for l in levels
            ]
        )
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.CONTRAST,
            params=gains,
        )
