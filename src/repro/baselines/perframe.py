"""Per-frame backlight scaling: maximum savings, maximum flicker.

Section 4.3: "Sometimes, better results are obtained if we allow backlight
changes for each frame (but it may introduce some flicker)."  This
strategy is the annotation scheme with scene grouping switched off — it
bounds from above what any grouping can save, and its switch count is what
the scene rate limiter exists to avoid.
"""

from __future__ import annotations

import numpy as np

from ..core.analyzer import StreamAnalyzer
from ..display.devices import DeviceProfile
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


class PerFrameScaling(BacklightStrategy):
    """Oracle per-frame adaptation at a given quality level."""

    def __init__(self, quality: float = 0.05):
        if not 0.0 <= quality <= 1.0:
            raise ValueError("quality must be in [0, 1]")
        self.quality = quality
        self.name = f"per-frame-q{round(quality * 100)}"

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        stats = StreamAnalyzer().analyze(clip)
        transfer = device.transfer
        n = len(stats)
        levels = np.empty(n, dtype=np.int64)
        gains = np.empty(n)
        for i, s in enumerate(stats):
            eff = s.effective_max(self.quality)
            level = transfer.level_for_scene(eff)
            levels[i] = level
            gains[i] = max(transfer.compensation_gain_for_level(level), 1.0) if level > 0 else 1.0
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.CONTRAST,
            params=gains,
        )
