"""Baseline backlight-scaling strategies and the common evaluator."""

from .base import (
    BacklightStrategy,
    CompensationMode,
    PlanEvaluation,
    SchedulePlan,
    evaluate_plan,
)
from .static import FullBacklight, StaticDim
from .history import HistoryPrediction
from .perframe import PerFrameScaling
from .qabs import QABSScaling, psnr_per_clip_code
from .dls import DLSScaling
from .dtm import DTMScaling, clipped_equalization_curve
from .annotated import AnnotatedBrightnessScaling, AnnotatedScaling

__all__ = [
    "BacklightStrategy",
    "SchedulePlan",
    "CompensationMode",
    "PlanEvaluation",
    "evaluate_plan",
    "FullBacklight",
    "StaticDim",
    "HistoryPrediction",
    "PerFrameScaling",
    "QABSScaling",
    "psnr_per_clip_code",
    "DLSScaling",
    "DTMScaling",
    "clipped_equalization_curve",
    "AnnotatedScaling",
    "AnnotatedBrightnessScaling",
]
