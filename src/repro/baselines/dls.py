"""DLS-style baseline: brightness-compensated luminance scaling.

Models the dynamic-luminance-scaling family (Chang/Choi/Shim, reference
[3], and the concurrent brightness-contrast scaling of Cheng/Hou/Pedram,
reference [5]): per *frame*, dim the backlight and compensate with a
constant *additive* brightness shift, choosing the deepest dimming whose
clipped-pixel fraction stays under a budget.

The paper notes these techniques are computation-heavy on the client
("because of the computation involved ... a hardware approach is
preferred") — here the cost shows up as a per-frame histogram search the
annotation scheme performs offline instead.  Comparing this plan against
the annotation pipeline isolates the two design differences: additive vs
multiplicative compensation, and per-frame vs per-scene adaptation.
"""

from __future__ import annotations

import numpy as np

from ..core.analyzer import FrameStats, StreamAnalyzer
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..quality.histogram import NUM_BINS
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


class DLSScaling(BacklightStrategy):
    """Brightness-compensation backlight scaling with a clip budget.

    Parameters
    ----------
    clip_budget:
        Maximum fraction of pixels allowed to saturate per frame.
    level_step:
        Candidate backlight levels are searched on this grid (finer =
        slower + closer to optimal).
    """

    def __init__(self, clip_budget: float = 0.05, level_step: int = 8):
        if not 0.0 <= clip_budget <= 1.0:
            raise ValueError("clip_budget must be in [0, 1]")
        if level_step < 1:
            raise ValueError("level_step must be >= 1")
        self.clip_budget = clip_budget
        self.level_step = level_step
        self.name = f"dls-b{round(clip_budget * 100)}"

    # ------------------------------------------------------------------
    def _delta_for_level(self, stats: FrameStats, backlight_luminance: float) -> float:
        """Additive shift restoring the frame's mean perceived intensity.

        DLS preserves the image's average brightness: with the backlight
        at relative output ``B``, displayed intensity is ``B * (Y + d)``;
        matching the original mean requires ``d = mean(Y) * (1/B - 1)``.
        """
        return stats.mean_luminance * (1.0 / backlight_luminance - 1.0)

    def _clipped_fraction(self, stats: FrameStats, delta: float) -> float:
        """Histogram estimate of pixels saturating under shift ``delta``."""
        threshold = 1.0 - delta
        code = int(np.floor(threshold * (NUM_BINS - 1)))
        if code >= NUM_BINS - 1:
            return 0.0
        if code < 0:
            return 1.0
        # The additive shift saturates a pixel once its *largest channel*
        # passes the ceiling, so the budget is checked on that histogram.
        return stats.channel_histogram.tail_mass_above(code)

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        stats = StreamAnalyzer().analyze(clip)
        transfer = device.transfer
        n = len(stats)
        levels = np.empty(n, dtype=np.int64)
        deltas = np.empty(n)
        candidates = list(range(self.level_step, MAX_BACKLIGHT_LEVEL, self.level_step))
        candidates.append(MAX_BACKLIGHT_LEVEL)
        for i, s in enumerate(stats):
            chosen_level = MAX_BACKLIGHT_LEVEL
            chosen_delta = 0.0
            for level in candidates:  # ascending: first feasible = deepest dim
                bl = float(np.asarray(transfer.backlight.luminance(level)))
                if bl <= 0:
                    continue
                delta = self._delta_for_level(s, bl)
                if self._clipped_fraction(s, delta) <= self.clip_budget:
                    chosen_level = level
                    chosen_delta = delta
                    break
            levels[i] = chosen_level
            deltas[i] = chosen_delta
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.BRIGHTNESS,
            params=deltas,
        )
