"""Adapters: the paper's annotation scheme as BacklightStrategy variants.

:class:`AnnotatedScaling` wraps the pipeline with its contrast-enhancement
compensation ("We use this method in our work", Section 4.1).
:class:`AnnotatedBrightnessScaling` keeps the identical scenes and
backlight schedule but compensates additively instead — the Section 4.1
alternative — so the two compensation operators can be compared on equal
power terms.
"""

from __future__ import annotations

import numpy as np

from ..core.analyzer import StreamAnalyzer
from ..core.pipeline import AnnotationPipeline
from ..core.policy import SchemeParameters
from ..display.devices import DeviceProfile
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


class AnnotatedScaling(BacklightStrategy):
    """Scene-grouped, annotation-driven scaling (the paper's technique)."""

    def __init__(self, params: SchemeParameters = SchemeParameters(quality=0.05),
                 per_scene_clipping: bool = False):
        self.params = params
        self.pipeline = AnnotationPipeline(params, per_scene_clipping=per_scene_clipping)
        self.name = f"annotated-q{round(params.quality * 100)}"

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        track = self.pipeline.annotate_for_device(clip, device)
        return SchedulePlan(
            strategy=self.name,
            levels=track.per_frame_levels(),
            mode=CompensationMode.CONTRAST,
            params=track.per_frame_gains(),
        )


class AnnotatedBrightnessScaling(BacklightStrategy):
    """The annotation scheme with additive (brightness) compensation.

    Scenes and backlight levels are identical to
    :class:`AnnotatedScaling`; only the per-frame image adjustment
    differs: ``C' = min(1, C + delta)`` with ``delta`` chosen to restore
    the frame's *mean* perceived intensity at the dimmed backlight (an
    additive shift cannot restore all pixels at once — the reason the
    paper chose the multiplicative form).
    """

    def __init__(self, params: SchemeParameters = SchemeParameters(quality=0.05)):
        self.params = params
        self.pipeline = AnnotationPipeline(params)
        self.name = f"annotated-bright-q{round(params.quality * 100)}"

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        track = self.pipeline.annotate_for_device(clip, device)
        levels = track.per_frame_levels()
        stats = StreamAnalyzer().analyze(clip)
        backlight = device.transfer.backlight
        deltas = np.empty(levels.size)
        for i, s in enumerate(stats):
            bl = float(np.asarray(backlight.luminance(int(levels[i]))))
            if bl <= 0:
                deltas[i] = 1.0  # black scene: push everything to ceiling
            else:
                deltas[i] = min(max(s.mean_luminance * (1.0 / bl - 1.0), 0.0), 1.0)
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.BRIGHTNESS,
            params=deltas,
        )
