"""History-based prediction: the no-annotation client-side alternative.

Section 3 argues that without annotations the client must either decode
first and analyze (too expensive) or "use a history-based prediction
(where the limited knowledge can have serious consequences on quality
degradation if prediction proves wrong)".  This baseline implements that
alternative so the claim is measurable: the client predicts the next
frame's effective maximum luminance from a sliding window of past frames
and sets the backlight accordingly — occasionally underestimating and
clipping far more than the quality budget allows.
"""

from __future__ import annotations

import numpy as np

from ..core.analyzer import StreamAnalyzer
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..video.clip import ClipBase
from .base import BacklightStrategy, CompensationMode, SchedulePlan


class HistoryPrediction(BacklightStrategy):
    """Sliding-window max-luminance predictor.

    Parameters
    ----------
    quality:
        Intended clip fraction (same meaning as the annotation scheme's
        quality level).
    window:
        Number of past frames the prediction looks at.
    margin:
        Multiplicative safety headroom on the prediction (1.05 = 5 %
        extra luminance budget).  More margin = fewer violations, less
        savings — the knob the ablation sweeps.
    """

    def __init__(self, quality: float = 0.05, window: int = 8, margin: float = 1.05):
        if not 0.0 <= quality <= 1.0:
            raise ValueError("quality must be in [0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        self.quality = quality
        self.window = window
        self.margin = margin
        self.name = f"history-w{window}"

    # ------------------------------------------------------------------
    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        stats = StreamAnalyzer().analyze(clip)
        eff = np.array([s.effective_max(self.quality) for s in stats])
        n = len(stats)
        levels = np.empty(n, dtype=np.int64)
        gains = np.empty(n)
        transfer = device.transfer
        for i in range(n):
            if i == 0:
                predicted = 1.0  # nothing seen yet: play safe
            else:
                lo = max(0, i - self.window)
                predicted = min(float(eff[lo:i].max()) * self.margin, 1.0)
            level = transfer.level_for_scene(predicted)
            levels[i] = level
            gains[i] = max(transfer.compensation_gain_for_level(level), 1.0) if level > 0 else 1.0
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.CONTRAST,
            params=gains,
        )

    # ------------------------------------------------------------------
    def misprediction_stats(self, clip: ClipBase, device: DeviceProfile) -> dict:
        """Quantify prediction failures for a clip.

        Returns the fraction of frames whose *actual* effective maximum
        exceeded the luminance the chosen backlight can supply (quality
        violations) and the worst luminance shortfall.
        """
        stats = StreamAnalyzer().analyze(clip)
        eff = np.array([s.effective_max(self.quality) for s in stats])
        plan = self.plan(clip, device)
        supplied = np.asarray(
            device.transfer.backlight.luminance(plan.levels), dtype=np.float64
        )
        needed = np.asarray(device.transfer.white.luminance(eff))
        shortfall = np.maximum(needed - supplied, 0.0)
        violations = shortfall > 1e-9
        return {
            "violation_fraction": float(violations.mean()),
            "worst_shortfall": float(shortfall.max()),
        }
