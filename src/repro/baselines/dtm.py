"""DTM-style baseline: tone mapping + backlight scaling.

Models Iranli & Pedram, "DTM: Dynamic tone mapping for backlight scaling"
(DAC 2005, reference [11]): instead of a single multiplicative gain, a
*tone-mapping curve* (a constrained histogram equalization) reshapes the
image so that a dimmer backlight preserves perceived brightness where the
histogram mass lives, exploiting "how the human eye perceives brightness".

The implementation per frame:

1. build the clipped-histogram-equalization curve (contrast-limited so
   flat regions are not over-stretched);
2. pick the deepest backlight whose tone-mapped image keeps the mean
   perceived brightness within ``brightness_tolerance`` of the original.

Because the curve is per-frame and non-linear, the client-side cost is a
full LUT application per frame — the kind of computation the paper says
pushes these techniques toward hardware.  The plan's compensation mode is
``NONE`` with the tone map folded into a per-frame equivalent gain for
the shared evaluator; exact tone-mapped frames are produced by
:meth:`DTMScaling.tone_map`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.analyzer import FrameStats, StreamAnalyzer
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..quality.histogram import NUM_BINS
from ..video.clip import ClipBase
from ..video.frame import Frame
from .base import BacklightStrategy, CompensationMode, SchedulePlan


def clipped_equalization_curve(pmf: np.ndarray, clip_limit: float = 4.0) -> np.ndarray:
    """Contrast-limited histogram-equalization LUT (length 256, in [0, 1]).

    Histogram mass above ``clip_limit`` times the uniform level is clipped
    and redistributed evenly (the CLAHE redistribution step, 1-D).
    """
    if clip_limit <= 1.0:
        raise ValueError("clip_limit must exceed 1")
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.shape != (NUM_BINS,):
        raise ValueError("pmf must have 256 bins")
    uniform = 1.0 / NUM_BINS
    ceiling = clip_limit * uniform
    clipped = np.minimum(pmf, ceiling)
    excess = pmf.sum() - clipped.sum()
    clipped += excess / NUM_BINS
    cdf = np.cumsum(clipped)
    if cdf[-1] <= 0:
        raise ValueError("empty histogram")
    return cdf / cdf[-1]


class DTMScaling(BacklightStrategy):
    """Per-frame dynamic tone mapping with backlight scaling.

    Parameters
    ----------
    brightness_tolerance:
        Allowed relative drop of mean perceived brightness (0.1 = 10 %).
    clip_limit:
        Contrast limit of the equalization curve.
    level_step:
        Granularity of the backlight search.
    """

    def __init__(self, brightness_tolerance: float = 0.10, clip_limit: float = 4.0,
                 level_step: int = 8):
        if not 0.0 <= brightness_tolerance < 1.0:
            raise ValueError("brightness_tolerance must be in [0, 1)")
        if level_step < 1:
            raise ValueError("level_step must be >= 1")
        self.brightness_tolerance = brightness_tolerance
        self.clip_limit = clip_limit
        self.level_step = level_step
        self.name = f"dtm-{round(brightness_tolerance * 100)}"

    # ------------------------------------------------------------------
    def _frame_curve(self, stats: FrameStats) -> np.ndarray:
        return clipped_equalization_curve(
            stats.histogram.normalized(), clip_limit=self.clip_limit
        )

    def _choose_level(self, stats: FrameStats, device: DeviceProfile) -> Tuple[int, np.ndarray]:
        """Deepest level meeting the mean-brightness constraint."""
        curve = self._frame_curve(stats)
        pmf = stats.histogram.normalized()
        codes = np.arange(NUM_BINS) / (NUM_BINS - 1)
        white = device.transfer.white
        original_mean = float(np.dot(pmf, np.asarray(white.luminance(codes))))
        mapped_lum = np.asarray(white.luminance(curve))
        mapped_mean_unit = float(np.dot(pmf, mapped_lum))
        floor = original_mean * (1.0 - self.brightness_tolerance)
        candidates = list(range(self.level_step, MAX_BACKLIGHT_LEVEL, self.level_step))
        candidates.append(MAX_BACKLIGHT_LEVEL)
        for level in candidates:
            bl = float(np.asarray(device.transfer.backlight.luminance(level)))
            if bl * mapped_mean_unit >= floor:
                return level, curve
        return MAX_BACKLIGHT_LEVEL, curve

    def tone_map(self, frame: Frame, curve: np.ndarray) -> Frame:
        """Apply a tone-mapping LUT to a frame's luminance.

        Channels are scaled by the per-pixel luminance ratio so hue is
        approximately preserved.
        """
        lum = frame.luminance
        codes = np.clip(np.round(lum * (NUM_BINS - 1)).astype(int), 0, NUM_BINS - 1)
        mapped = curve[codes]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(lum > 1e-6, mapped / np.maximum(lum, 1e-6), 1.0)
        rgb = np.clip(frame.normalized() * ratio[..., None], 0.0, 1.0)
        return Frame(rgb, index=frame.index)

    # ------------------------------------------------------------------
    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        stats = StreamAnalyzer().analyze(clip)
        n = len(stats)
        levels = np.empty(n, dtype=np.int64)
        for i, s in enumerate(stats):
            levels[i], _curve = self._choose_level(s, device)
        # The tone map replaces gain compensation; the shared evaluator
        # sees no multiplicative clipping (the curve saturates at 1.0 by
        # construction), so the plan carries unit params.
        return SchedulePlan(
            strategy=self.name,
            levels=levels,
            mode=CompensationMode.NONE,
            params=np.ones(n),
        )

    def client_luts_per_second(self, fps: float) -> float:
        """Client-side LUT applications per second (the hardware-push cost)."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        return fps
