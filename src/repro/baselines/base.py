"""Common interface for backlight-scaling strategies.

Every strategy — the paper's annotation scheme and the baselines it is
compared against (history prediction, per-frame scaling, QABS-style
smoothing, DLS-style brightness compensation, static dimming) — reduces to
the same artifact: a per-frame backlight schedule plus a per-frame
compensation directive.  Sharing that artifact lets one evaluator score
power, flicker and quality identically across all of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.compensation import (
    CompensationResult,
    brightness_compensation,
    contrast_enhancement,
)
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..power.measurement import simulated_backlight_savings
from ..video.clip import ClipBase
from ..video.frame import Frame


class CompensationMode(enum.Enum):
    """How displayed frames are adjusted for the dimmed backlight."""

    NONE = "none"
    CONTRAST = "contrast"      # C' = min(1, C * k)     (Section 4.1, ours)
    BRIGHTNESS = "brightness"  # C' = min(1, C + delta) (Section 4.1, DLS-style)


@dataclass(frozen=True)
class SchedulePlan:
    """A strategy's output for one clip on one device."""

    strategy: str
    levels: np.ndarray
    mode: CompensationMode
    params: np.ndarray  # per-frame gain (contrast) or delta (brightness)

    def __post_init__(self):
        levels = np.asarray(self.levels, dtype=np.int64)
        params = np.asarray(self.params, dtype=np.float64)
        if levels.ndim != 1 or levels.size == 0:
            raise ValueError("levels must be a non-empty 1-D array")
        if params.shape != levels.shape:
            raise ValueError("params must match levels in shape")
        if levels.min() < 0 or levels.max() > MAX_BACKLIGHT_LEVEL:
            raise ValueError("backlight levels out of range")
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "params", params)

    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return self.levels.size

    def switch_count(self) -> int:
        """Backlight level changes over the schedule (flicker measure)."""
        return int(np.count_nonzero(np.diff(self.levels)))

    def backlight_savings(self, device: DeviceProfile) -> float:
        """Figure 9 metric for this plan."""
        return simulated_backlight_savings(self.levels, device)

    def compensate(self, frame: Frame, index: int) -> CompensationResult:
        """Apply this plan's compensation to one frame."""
        if not 0 <= index < self.frame_count:
            raise IndexError(f"frame {index} out of plan range")
        param = float(self.params[index])
        if self.mode is CompensationMode.NONE:
            return CompensationResult(frame=frame.copy(), clipped_fraction=0.0)
        if self.mode is CompensationMode.CONTRAST:
            if param <= 1.0:
                return CompensationResult(frame=frame.copy(), clipped_fraction=0.0)
            return contrast_enhancement(frame, param)
        return brightness_compensation(frame, param)


class BacklightStrategy:
    """Interface: (clip, device) -> SchedulePlan."""

    name: str = "strategy"

    def plan(self, clip: ClipBase, device: DeviceProfile) -> SchedulePlan:
        """Compute this strategy's schedule for ``clip`` on ``device``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PlanEvaluation:
    """Cross-strategy scorecard for one plan on one clip/device."""

    strategy: str
    backlight_savings: float
    switch_count: int
    mean_clipped_fraction: float
    max_clipped_fraction: float


def evaluate_plan(
    plan: SchedulePlan,
    clip: ClipBase,
    device: DeviceProfile,
    sample_every: int = 1,
) -> PlanEvaluation:
    """Score a plan: power saved, flicker, quality damage.

    ``sample_every`` subsamples frames for the (pixel-touching) clipping
    measurement; power and switching always use the full schedule.
    """
    if plan.frame_count != clip.frame_count:
        raise ValueError(
            f"plan covers {plan.frame_count} frames, clip has {clip.frame_count}"
        )
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    clipped = [
        plan.compensate(clip.frame(i), i).clipped_fraction
        for i in range(0, clip.frame_count, sample_every)
    ]
    return PlanEvaluation(
        strategy=plan.strategy,
        backlight_savings=plan.backlight_savings(device),
        switch_count=plan.switch_count(),
        mean_clipped_fraction=float(np.mean(clipped)),
        max_clipped_fraction=float(np.max(clipped)),
    )
