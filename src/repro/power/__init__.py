"""Power substrate: component models, DAQ measurement, batteries."""

from .model import (
    IDLE_ACTIVITY,
    PLAYBACK_ACTIVITY,
    ActivityState,
    DevicePowerModel,
)
from .daq import DAQConfig, DAQSimulator, PowerTrace
from .battery import Battery, LoadTrace
from .dvfs import DvfsCpuModel, FrequencyLevel, XSCALE_LEVELS
from .trace_analysis import (
    PowerPlateau,
    ScheduleAudit,
    audit_schedule,
    estimate_backlight_level,
    segment_plateaus,
    supply_power_from_device_power,
)
from .measurement import (
    MeasurementResult,
    MeasurementSession,
    schedule_power_fn,
    simulated_backlight_savings,
)

__all__ = [
    "ActivityState",
    "DevicePowerModel",
    "PLAYBACK_ACTIVITY",
    "IDLE_ACTIVITY",
    "DAQConfig",
    "DAQSimulator",
    "PowerTrace",
    "Battery",
    "LoadTrace",
    "DvfsCpuModel",
    "FrequencyLevel",
    "XSCALE_LEVELS",
    "PowerPlateau",
    "segment_plateaus",
    "estimate_backlight_level",
    "ScheduleAudit",
    "audit_schedule",
    "supply_power_from_device_power",
    "MeasurementSession",
    "MeasurementResult",
    "schedule_power_fn",
    "simulated_backlight_savings",
]
