"""Whole-device power model.

Section 1: "The main power consuming components of a mobile device are the
CPU, display and network interface."  Section 4: "On a typical PDA the
backlight dominates other components, with about 25-30 % of total power
consumption."  This module composes the per-component draws into the
instantaneous device power that the DAQ simulator samples, which is what
Figure 10's whole-device measurements integrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class ActivityState:
    """Activity of the non-display components at an instant.

    Attributes
    ----------
    cpu_load:
        Fraction of time the CPU is busy (decoder + player), 0-1.
    network_duty:
        Fraction of time the WLAN is actively receiving, 0-1.
    """

    cpu_load: float = 0.0
    network_duty: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.cpu_load <= 1.0:
            raise ValueError(f"cpu_load must be in [0, 1], got {self.cpu_load}")
        if not 0.0 <= self.network_duty <= 1.0:
            raise ValueError(f"network_duty must be in [0, 1], got {self.network_duty}")


#: Activity during steady-state streaming playback: decoder keeps the CPU
#: mostly busy and the radio mostly receiving.
PLAYBACK_ACTIVITY = ActivityState(cpu_load=0.85, network_duty=0.8)

#: Device idle at the home screen (for battery-life comparisons).
IDLE_ACTIVITY = ActivityState(cpu_load=0.0, network_duty=0.0)


class DevicePowerModel:
    """Instantaneous power of a device given activity and backlight level."""

    def __init__(self, device: DeviceProfile):
        self.device = device

    # ------------------------------------------------------------------
    def component_power(self, activity: ActivityState, backlight_level: ArrayLike) -> dict:
        """Per-component power (W) as a dict — the Figure-style breakdown."""
        budget = self.device.power
        cpu = budget.cpu_idle_w + (budget.cpu_active_w - budget.cpu_idle_w) * activity.cpu_load
        net = (
            budget.network_idle_w
            + (budget.network_active_w - budget.network_idle_w) * activity.network_duty
        )
        return {
            "base": budget.base_w,
            "cpu": cpu,
            "network": net,
            "panel": self.device.panel.power_w,
            "backlight": self.device.backlight.power(backlight_level),
        }

    def total_power(self, activity: ActivityState, backlight_level: ArrayLike) -> np.ndarray:
        """Total instantaneous power (W); vectorized over backlight levels."""
        parts = self.component_power(activity, backlight_level)
        return (
            parts["base"] + parts["cpu"] + parts["network"] + parts["panel"]
            + np.asarray(parts["backlight"])
        )

    # ------------------------------------------------------------------
    def backlight_share(self, activity: ActivityState = PLAYBACK_ACTIVITY) -> float:
        """Backlight fraction of total power at full backlight.

        The paper's "about 25-30 % of total power consumption" claim,
        evaluated for this device under the given activity.
        """
        total = float(self.total_power(activity, MAX_BACKLIGHT_LEVEL))
        backlight = float(self.device.backlight.power(MAX_BACKLIGHT_LEVEL))
        return backlight / total

    def playback_power_trace(
        self, backlight_levels: np.ndarray, activity: ActivityState = PLAYBACK_ACTIVITY
    ) -> np.ndarray:
        """Total power at each frame of a playback backlight schedule."""
        levels = np.asarray(backlight_levels)
        if levels.ndim != 1:
            raise ValueError("backlight_levels must be a 1-D per-frame array")
        return self.total_power(activity, levels)
