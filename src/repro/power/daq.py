"""DAQ-board power measurement simulator.

Section 5.1: "The batteries were removed from the iPAQ during the
experiment.  A PCI DAQ board was used to sample voltage drops across a
resistor and the iPAQ, and sampled the voltages at 2K samples/sec."

:class:`DAQSimulator` reproduces that measurement chain: a known supply
voltage, a sense resistor, two ADC channels with finite resolution and
noise, sampled at 2 kS/s.  Given a ground-truth power waveform it returns
the power trace the instrument would report; integrating that trace is how
the "measured" columns of Figure 10 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class DAQConfig:
    """Measurement chain parameters.

    Attributes
    ----------
    sample_rate_hz:
        ADC sampling rate (the paper uses 2000).
    supply_voltage_v:
        Bench supply replacing the battery.
    sense_resistor_ohm:
        Shunt resistor the current flows through.
    adc_bits:
        ADC resolution per channel.
    adc_range_v:
        Full-scale input range of the device-voltage channel.
    shunt_adc_range_v:
        Full-scale input range of the shunt channel.  Shunt drops are tens
        of millivolts, so this channel runs through an instrumentation
        amplifier with a much smaller range.
    noise_sigma_v:
        RMS input-referred voltage noise per sample.
    """

    sample_rate_hz: float = 2000.0
    supply_voltage_v: float = 5.0
    sense_resistor_ohm: float = 0.1
    adc_bits: int = 12
    adc_range_v: float = 10.0
    shunt_adc_range_v: float = 0.5
    noise_sigma_v: float = 0.002

    def __post_init__(self):
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.supply_voltage_v <= 0:
            raise ValueError("supply_voltage_v must be positive")
        if self.sense_resistor_ohm <= 0:
            raise ValueError("sense_resistor_ohm must be positive")
        if not 4 <= self.adc_bits <= 24:
            raise ValueError("adc_bits must be in [4, 24]")
        if self.adc_range_v <= 0:
            raise ValueError("adc_range_v must be positive")
        if self.shunt_adc_range_v <= 0:
            raise ValueError("shunt_adc_range_v must be positive")
        if self.noise_sigma_v < 0:
            raise ValueError("noise_sigma_v must be non-negative")


class DAQSimulator:
    """Samples a ground-truth power waveform through the measurement chain."""

    def __init__(self, config: DAQConfig = DAQConfig(), seed: int = 0):
        self.config = config
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _quantize(self, volts: np.ndarray, full_scale_v: float) -> np.ndarray:
        step = full_scale_v / (2**self.config.adc_bits)
        clipped = np.clip(volts, 0.0, full_scale_v)
        return np.round(clipped / step) * step

    def sample_times(self, duration_s: float) -> np.ndarray:
        """Sample instants covering ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        n = max(1, int(round(duration_s * self.config.sample_rate_hz)))
        return np.arange(n) / self.config.sample_rate_hz

    def measure(self, power_fn: Callable[[np.ndarray], np.ndarray], duration_s: float) -> "PowerTrace":
        """Measure a power waveform for ``duration_s`` seconds.

        Parameters
        ----------
        power_fn:
            Vectorized ground-truth power in watts as a function of time
            (seconds).
        duration_s:
            Measurement length.
        """
        cfg = self.config
        t = self.sample_times(duration_s)
        true_power = np.asarray(power_fn(t), dtype=np.float64)
        if true_power.shape != t.shape:
            raise ValueError("power_fn must return one power value per sample time")
        if np.any(true_power < 0):
            raise ValueError("ground-truth power must be non-negative")
        # Current through the shunt, then the two measured voltages.
        current = true_power / cfg.supply_voltage_v
        v_shunt = current * cfg.sense_resistor_ohm
        v_device = cfg.supply_voltage_v - v_shunt
        noise = self._rng.normal(0.0, cfg.noise_sigma_v, size=(2, t.size))
        v_shunt_meas = self._quantize(v_shunt + noise[0], cfg.shunt_adc_range_v)
        v_device_meas = self._quantize(v_device + noise[1], cfg.adc_range_v)
        measured_power = (v_shunt_meas / cfg.sense_resistor_ohm) * v_device_meas
        return PowerTrace(times=t, power_w=np.maximum(measured_power, 0.0))


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power waveform with integration helpers."""

    times: np.ndarray
    power_w: np.ndarray

    def __post_init__(self):
        t = np.asarray(self.times, dtype=np.float64)
        p = np.asarray(self.power_w, dtype=np.float64)
        if t.ndim != 1 or t.shape != p.shape or t.size == 0:
            raise ValueError("times and power_w must be equal-length non-empty 1-D arrays")
        if np.any(np.diff(t) <= 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "power_w", p)

    @property
    def duration_s(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    def energy_j(self) -> float:
        """Trapezoidal energy integral over the trace (joules)."""
        if self.times.size == 1:
            return 0.0
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(self.power_w, self.times))

    def savings_vs(self, baseline: "PowerTrace") -> float:
        """Fractional mean-power savings relative to a baseline trace."""
        base = baseline.mean_power_w
        if base <= 0:
            raise ValueError("baseline mean power must be positive")
        return 1.0 - self.mean_power_w / base
