"""Power-trace analysis: reading annotations back out of a DAQ trace.

The paper's measurement setup (Section 5.1) sees the device only through
its power draw.  This module closes that loop in reverse: from a sampled
whole-device power trace it segments the backlight plateaus, estimates
the backlight level of each, and reconstructs the effective schedule —
so a measured run can be audited against the annotation track that
supposedly drove it, with no access to the device's internals.

This is also the practical tooling a lab would want around the rig:
plateau segmentation, level estimation through the inverse power model,
and a comparison report against the expected schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from .daq import DAQConfig, PowerTrace


def supply_power_from_device_power(device_power_w: float,
                                   config: DAQConfig = DAQConfig()) -> float:
    """Convert a measured device-side power to supply-side power.

    The DAQ reports ``P_dev = I * (V - I*R)`` — the device's share, which
    excludes the shunt's own ``I^2 R`` dissipation.  Solving the quadratic
    for the current recovers the supply power ``V * I`` that the ground
    truth (and the power models) speak in.
    """
    if device_power_w < 0:
        raise ValueError("device power must be non-negative")
    v = config.supply_voltage_v
    r = config.sense_resistor_ohm
    discriminant = v * v - 4.0 * r * device_power_w
    if discriminant < 0:
        raise ValueError("device power exceeds what the supply can deliver")
    current = (v - np.sqrt(discriminant)) / (2.0 * r)
    return float(v * current)


@dataclass(frozen=True)
class PowerPlateau:
    """A run of samples with (approximately) constant power."""

    start_s: float
    end_s: float
    mean_power_w: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def segment_plateaus(
    trace: PowerTrace,
    min_step_w: float = 0.05,
    min_duration_s: float = 0.1,
    smooth_samples: int = 25,
) -> List[PowerPlateau]:
    """Split a power trace into constant-power plateaus.

    A moving-average filter suppresses DAQ noise; a new plateau opens when
    the smoothed power moves by at least ``min_step_w`` from the current
    plateau's running mean, rate-limited by ``min_duration_s`` (the same
    debouncing idea as the scene detector, applied to watts).
    """
    if min_step_w <= 0:
        raise ValueError("min_step_w must be positive")
    if min_duration_s <= 0:
        raise ValueError("min_duration_s must be positive")
    if smooth_samples < 1:
        raise ValueError("smooth_samples must be >= 1")
    power = trace.power_w
    if smooth_samples > 1:
        # Edge-padded moving average: plain 'same'-mode convolution would
        # droop at both ends (zero padding) and fake a final plateau.
        k = min(smooth_samples, power.size)
        pad_left = k // 2
        padded = np.pad(power, (pad_left, k - 1 - pad_left), mode="edge")
        power = np.convolve(padded, np.ones(k) / k, mode="valid")
    times = trace.times

    plateaus: List[PowerPlateau] = []
    start = 0
    total = power[0]
    count = 1
    for i in range(1, power.size):
        mean = total / count
        long_enough = times[i] - times[start] >= min_duration_s
        if abs(power[i] - mean) >= min_step_w and long_enough:
            plateaus.append(PowerPlateau(float(times[start]), float(times[i]),
                                         float(mean)))
            start = i
            total = power[i]
            count = 1
        else:
            total += power[i]
            count += 1
    plateaus.append(
        PowerPlateau(float(times[start]), float(times[-1]), float(total / count))
    )
    return plateaus


def estimate_backlight_level(
    plateau_power_w: float,
    device: DeviceProfile,
    non_backlight_power_w: float,
) -> int:
    """Invert the affine backlight power model for one plateau.

    ``non_backlight_power_w`` is the draw of everything else (estimated
    from a backlight-off or full-backlight calibration run).  The result
    is clamped to the valid register range.
    """
    if non_backlight_power_w < 0:
        raise ValueError("non-backlight power must be non-negative")
    backlight = device.backlight
    bl_power = plateau_power_w - non_backlight_power_w
    span = backlight.power_max_w - backlight.power_floor_w
    frac = (bl_power - backlight.power_floor_w) / span
    level = int(round(frac * MAX_BACKLIGHT_LEVEL))
    return min(max(level, 0), MAX_BACKLIGHT_LEVEL)


@dataclass(frozen=True)
class ScheduleAudit:
    """Comparison of a recovered schedule against the expected one."""

    expected_levels: np.ndarray
    recovered_levels: np.ndarray
    mean_abs_error: float
    max_abs_error: float

    @property
    def matches(self) -> bool:
        """Agreement within DAQ noise + quantization (~10 levels)."""
        return self.max_abs_error <= 12.0


def audit_schedule(
    trace: PowerTrace,
    expected_levels: np.ndarray,
    fps: float,
    device: DeviceProfile,
    non_backlight_power_w: float,
    daq_config: DAQConfig = DAQConfig(),
) -> ScheduleAudit:
    """Recover the per-frame backlight schedule from a trace and compare.

    Parameters
    ----------
    trace:
        The measured playback run.
    expected_levels:
        The annotation track's per-frame levels.
    fps:
        Playback frame rate (to align samples to frames).
    device:
        Device under test (for the inverse power model).
    non_backlight_power_w:
        Everything-but-backlight draw during the run (supply side).
    daq_config:
        The measurement chain the trace came from; used to undo the
        shunt's own dissipation before inverting the power model.
    """
    expected = np.asarray(expected_levels)
    if expected.ndim != 1 or expected.size == 0:
        raise ValueError("expected_levels must be a non-empty 1-D array")
    if fps <= 0:
        raise ValueError("fps must be positive")
    # Per-frame robust power -> per-frame recovered level.  The median
    # rejects samples that straddle a backlight switch at frame edges.
    frame_idx = np.clip((trace.times * fps).astype(np.int64), 0, expected.size - 1)
    recovered = np.empty(expected.size)
    for f in range(expected.size):
        mask = frame_idx == f
        if not mask.any():
            recovered[f] = recovered[f - 1] if f > 0 else expected[0]
            continue
        device_side = float(np.median(trace.power_w[mask]))
        recovered[f] = estimate_backlight_level(
            supply_power_from_device_power(device_side, daq_config),
            device, non_backlight_power_w,
        )
    errors = np.abs(recovered - expected)
    return ScheduleAudit(
        expected_levels=expected,
        recovered_levels=recovered.astype(np.int64),
        mean_abs_error=float(errors.mean()),
        max_abs_error=float(errors.max()),
    )
