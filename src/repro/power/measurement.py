"""Measurement sessions: from backlight schedules to savings numbers.

Bridges the per-frame backlight schedule produced by the annotation
pipeline (or a baseline controller) to the two power figures the paper
reports:

* **Simulated backlight savings** (Figure 9): the affine backlight power
  model evaluated analytically over the schedule — "the power consumption
  of the LCD is almost proportional to backlight level ... allowing us to
  analytically estimate the power savings through simulation".
* **Measured total savings** (Figure 10): the whole-device power waveform
  sampled through the DAQ simulator and integrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from .daq import DAQConfig, DAQSimulator, PowerTrace
from .model import PLAYBACK_ACTIVITY, ActivityState, DevicePowerModel


def schedule_power_fn(
    levels: np.ndarray,
    fps: float,
    model: DevicePowerModel,
    activity: ActivityState = PLAYBACK_ACTIVITY,
) -> Callable[[np.ndarray], np.ndarray]:
    """Ground-truth device power as a step function of time.

    Each frame holds its backlight level for one frame period; the DAQ
    samples this waveform asynchronously at its own rate.
    """
    levels = np.asarray(levels)
    if levels.ndim != 1 or levels.size == 0:
        raise ValueError("levels must be a non-empty 1-D per-frame array")
    if np.any(levels < 0) or np.any(levels > MAX_BACKLIGHT_LEVEL):
        raise ValueError("backlight levels out of range")
    if fps <= 0:
        raise ValueError("fps must be positive")
    per_frame_power = model.playback_power_trace(levels, activity=activity)

    def power_at(t: np.ndarray) -> np.ndarray:
        idx = np.clip((np.asarray(t) * fps).astype(np.int64), 0, levels.size - 1)
        return per_frame_power[idx]

    return power_at


def simulated_backlight_savings(levels: np.ndarray, device: DeviceProfile) -> float:
    """Backlight power saved by a schedule relative to full backlight.

    This is the Figure 9 quantity: mean backlight power over the schedule
    versus constant full backlight, using the affine power model directly
    (no sampling involved).
    """
    levels = np.asarray(levels)
    if levels.ndim != 1 or levels.size == 0:
        raise ValueError("levels must be a non-empty 1-D per-frame array")
    backlight = device.backlight
    mean_power = float(np.mean(backlight.power(levels)))
    full_power = float(backlight.power(MAX_BACKLIGHT_LEVEL))
    # Clamp float dust: a constant full-backlight schedule must report
    # exactly zero savings.
    return min(max(1.0 - mean_power / full_power, 0.0), 1.0)


@dataclass(frozen=True)
class MeasurementResult:
    """Outcome of one measured playback run."""

    trace: PowerTrace
    baseline_trace: PowerTrace

    @property
    def mean_power_w(self) -> float:
        return self.trace.mean_power_w

    @property
    def baseline_power_w(self) -> float:
        return self.baseline_trace.mean_power_w

    @property
    def total_savings(self) -> float:
        """Whole-device fractional power savings (the Figure 10 number)."""
        return self.trace.savings_vs(self.baseline_trace)

    @property
    def energy_saved_j(self) -> float:
        return self.baseline_trace.energy_j() - self.trace.energy_j()


class MeasurementSession:
    """Runs DAQ-measured playback comparisons on one device.

    Parameters
    ----------
    device:
        Device under test.
    daq_config:
        Measurement chain parameters (defaults to the paper's 2 kS/s).
    seed:
        Seed for the DAQ noise; optimized and baseline runs use distinct
        sub-seeds, as two physical runs would.
    """

    def __init__(
        self,
        device: DeviceProfile,
        daq_config: Optional[DAQConfig] = None,
        seed: int = 0,
    ):
        self.device = device
        self.model = DevicePowerModel(device)
        self._config = daq_config if daq_config is not None else DAQConfig()
        self._seed = seed

    def measure_schedule(
        self,
        levels: np.ndarray,
        fps: float,
        activity: ActivityState = PLAYBACK_ACTIVITY,
        run_id: int = 0,
    ) -> PowerTrace:
        """Measure one playback run of a backlight schedule."""
        daq = DAQSimulator(self._config, seed=self._seed * 7919 + run_id)
        power_fn = schedule_power_fn(levels, fps, self.model, activity=activity)
        duration = len(np.asarray(levels)) / fps
        return daq.measure(power_fn, duration)

    def compare(
        self,
        levels: np.ndarray,
        fps: float,
        activity: ActivityState = PLAYBACK_ACTIVITY,
    ) -> MeasurementResult:
        """Measure a schedule against the full-backlight baseline run."""
        levels = np.asarray(levels)
        optimized = self.measure_schedule(levels, fps, activity=activity, run_id=1)
        baseline_levels = np.full(levels.size, MAX_BACKLIGHT_LEVEL)
        baseline = self.measure_schedule(baseline_levels, fps, activity=activity, run_id=2)
        return MeasurementResult(trace=optimized, baseline_trace=baseline)
