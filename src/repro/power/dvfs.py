"""DVFS CPU model: frequency/voltage scaling for the client CPU.

Section 3 names frequency/voltage scaling as a second consumer of stream
annotations: "Optimizations like frequency/voltage scaling can be applied
before decoding is finished, because the annotated information is
available early from the data stream."  This module provides the CPU-side
substrate: a table of (frequency, voltage) operating points modeled on the
XScale PXA-series, with active power scaling as ``C * f * V^2``.

The model is calibrated so that full-speed active power matches the device
power budget's ``cpu_active_w`` — swapping DVFS in does not change the
baseline power story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class FrequencyLevel:
    """One CPU operating point."""

    hz: float
    voltage_v: float

    def __post_init__(self):
        if self.hz <= 0:
            raise ValueError("frequency must be positive")
        if self.voltage_v <= 0:
            raise ValueError("voltage must be positive")


#: XScale PXA255-style operating points (100-400 MHz).
XSCALE_LEVELS: Tuple[FrequencyLevel, ...] = (
    FrequencyLevel(100e6, 0.85),
    FrequencyLevel(200e6, 1.00),
    FrequencyLevel(300e6, 1.10),
    FrequencyLevel(400e6, 1.30),
)


class DvfsCpuModel:
    """CPU power across operating points, calibrated to a device budget.

    Parameters
    ----------
    levels:
        Available operating points, any order; stored sorted by frequency.
    active_power_at_max_w:
        Active power at the fastest point (ties the model to the device's
        ``cpu_active_w``).
    idle_power_w:
        Power when the CPU idles (clock-gated; frequency-independent to
        first order).
    """

    def __init__(
        self,
        levels: Sequence[FrequencyLevel] = XSCALE_LEVELS,
        active_power_at_max_w: float = 0.75,
        idle_power_w: float = 0.15,
    ):
        if not levels:
            raise ValueError("need at least one frequency level")
        if active_power_at_max_w <= 0:
            raise ValueError("active power must be positive")
        if not 0 <= idle_power_w < active_power_at_max_w:
            raise ValueError("idle power must be in [0, active_power_at_max_w)")
        self.levels = tuple(sorted(levels, key=lambda l: l.hz))
        self.idle_power_w = idle_power_w
        top = self.levels[-1]
        # P_active(f, V) = k * f * V^2, with k set by the top point.
        self._k = active_power_at_max_w / (top.hz * top.voltage_v**2)

    # ------------------------------------------------------------------
    @property
    def max_level(self) -> FrequencyLevel:
        return self.levels[-1]

    @property
    def min_level(self) -> FrequencyLevel:
        return self.levels[0]

    def active_power_w(self, level: FrequencyLevel) -> float:
        """Power while executing at an operating point."""
        return self._k * level.hz * level.voltage_v**2

    def power_w(self, level: FrequencyLevel, busy_fraction: float) -> float:
        """Average power at a duty cycle between active and idle."""
        if not 0.0 <= busy_fraction <= 1.0:
            raise ValueError("busy_fraction must be in [0, 1]")
        return (
            busy_fraction * self.active_power_w(level)
            + (1.0 - busy_fraction) * self.idle_power_w
        )

    def slowest_level_for(self, cycles: float, deadline_s: float) -> FrequencyLevel:
        """Slowest point that retires ``cycles`` within ``deadline_s``.

        Falls back to the fastest point when even it cannot make the
        deadline (the frame will be late; the caller counts it).
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        for level in self.levels:
            if cycles <= level.hz * deadline_s:
                return level
        return self.levels[-1]

    def energy_per_frame_j(self, level: FrequencyLevel, cycles: float,
                           frame_period_s: float) -> float:
        """Energy of one frame: active burst + idle remainder."""
        busy_time = min(cycles / level.hz, frame_period_s)
        idle_time = frame_period_s - busy_time
        return self.active_power_w(level) * busy_time + self.idle_power_w * idle_time
