"""Battery model: what the power savings buy in runtime.

The paper motivates everything with battery life ("battery life still
remains a major limitation of portable devices").  This module turns mean
power numbers into playback-runtime estimates, including the mild rate
dependence of usable capacity (a simplified Peukert effect) so aggressive
loads pay a small extra penalty.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Battery:
    """A rechargeable pack characterized by energy capacity.

    Attributes
    ----------
    capacity_wh:
        Nominal energy at the rated discharge power.
    rated_power_w:
        Discharge power at which the nominal capacity is specified.
    peukert_exponent:
        Capacity derating exponent; 1.0 disables rate dependence.  Usable
        energy at power ``P`` is ``capacity * (rated/P) ** (k - 1)`` for
        ``P > rated``.
    """

    capacity_wh: float = 7.4  # iPAQ h5550 pack: 3.7 V x 2000 mAh
    rated_power_w: float = 1.5
    peukert_exponent: float = 1.05

    def __post_init__(self):
        if self.capacity_wh <= 0:
            raise ValueError("capacity_wh must be positive")
        if self.rated_power_w <= 0:
            raise ValueError("rated_power_w must be positive")
        if self.peukert_exponent < 1.0:
            raise ValueError("peukert_exponent must be >= 1.0")

    # ------------------------------------------------------------------
    def usable_energy_wh(self, load_power_w: float) -> float:
        """Usable energy at a constant load power."""
        if load_power_w <= 0:
            raise ValueError("load power must be positive")
        if load_power_w <= self.rated_power_w or self.peukert_exponent == 1.0:
            return self.capacity_wh
        derate = (self.rated_power_w / load_power_w) ** (self.peukert_exponent - 1.0)
        return self.capacity_wh * derate

    def runtime_hours(self, load_power_w: float) -> float:
        """Playback hours at a constant load power."""
        return self.usable_energy_wh(load_power_w) / load_power_w

    def runtime_extension(self, baseline_power_w: float, optimized_power_w: float) -> float:
        """Fractional runtime gained by dropping the load power.

        E.g. a 20 % total-power saving yields a ~25 % longer runtime
        (1/(1-0.2) - 1), slightly more with the Peukert derating.
        """
        if optimized_power_w > baseline_power_w:
            raise ValueError("optimized power exceeds the baseline")
        base = self.runtime_hours(baseline_power_w)
        opt = self.runtime_hours(optimized_power_w)
        return opt / base - 1.0
