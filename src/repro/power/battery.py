"""Battery model: what the power savings buy in runtime.

The paper motivates everything with battery life ("battery life still
remains a major limitation of portable devices").  This module turns mean
power numbers into playback-runtime estimates, including the mild rate
dependence of usable capacity (a simplified Peukert effect) so aggressive
loads pay a small extra penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Battery:
    """A rechargeable pack characterized by energy capacity.

    Attributes
    ----------
    capacity_wh:
        Nominal energy at the rated discharge power.
    rated_power_w:
        Discharge power at which the nominal capacity is specified.
    peukert_exponent:
        Capacity derating exponent; 1.0 disables rate dependence.  Usable
        energy at power ``P`` is ``capacity * (rated/P) ** (k - 1)`` for
        ``P > rated``.
    """

    capacity_wh: float = 7.4  # iPAQ h5550 pack: 3.7 V x 2000 mAh
    rated_power_w: float = 1.5
    peukert_exponent: float = 1.05

    def __post_init__(self):
        if self.capacity_wh <= 0:
            raise ValueError("capacity_wh must be positive")
        if self.rated_power_w <= 0:
            raise ValueError("rated_power_w must be positive")
        if self.peukert_exponent < 1.0:
            raise ValueError("peukert_exponent must be >= 1.0")

    # ------------------------------------------------------------------
    def usable_energy_wh(self, load_power_w: float) -> float:
        """Usable energy at a constant load power."""
        if load_power_w <= 0:
            raise ValueError("load power must be positive")
        if load_power_w <= self.rated_power_w or self.peukert_exponent == 1.0:
            return self.capacity_wh
        derate = (self.rated_power_w / load_power_w) ** (self.peukert_exponent - 1.0)
        return self.capacity_wh * derate

    def runtime_hours(self, load_power_w: float) -> float:
        """Playback hours at a constant load power."""
        return self.usable_energy_wh(load_power_w) / load_power_w

    def runtime_extension(self, baseline_power_w: float, optimized_power_w: float) -> float:
        """Fractional runtime gained by dropping the load power.

        E.g. a 20 % total-power saving yields a ~25 % longer runtime
        (1/(1-0.2) - 1), slightly more with the Peukert derating.
        """
        if optimized_power_w > baseline_power_w:
            raise ValueError("optimized power exceeds the baseline")
        base = self.runtime_hours(baseline_power_w)
        opt = self.runtime_hours(optimized_power_w)
        return opt / base - 1.0


@dataclass(frozen=True)
class LoadTrace:
    """A device load trace: draw in watts over time (step function).

    ``steps`` is a sorted tuple of ``(time_s, watts)`` pairs; the load at
    time ``t`` is the last step at or before ``t``, held forever after
    the final step.  The battery-aware streaming client integrates this
    against a :class:`Battery` to model state-of-charge during playback.
    (Distinct from :class:`repro.power.daq.PowerTrace`, which is a
    *sampled* waveform; this is a declarative spec.)
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("a power trace needs at least one step")
        times = [t for t, _ in self.steps]
        if times[0] < 0:
            raise ValueError("trace times must be non-negative")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be strictly increasing")
        if any(w <= 0 for _, w in self.steps):
            raise ValueError("trace loads must be positive watts")

    @classmethod
    def constant(cls, watts: float) -> "LoadTrace":
        """A trace holding one load for the whole session."""
        return cls(steps=((0.0, float(watts)),))

    @classmethod
    def parse(cls, spec: str) -> "LoadTrace":
        """Parse ``"t:watts,t:watts,..."`` (or a bare number).

        Times are seconds, loads are watts; ``"2.5"`` alone means a
        constant 2.5 W draw.
        """
        text = str(spec).strip()
        if not text:
            raise ValueError("empty power trace spec")
        if ":" not in text:
            return cls.constant(float(text))
        steps = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            time_text, _, watts_text = part.partition(":")
            try:
                t = float(time_text)
                w = float(watts_text)
            except ValueError:
                raise ValueError(
                    f"bad power trace step {part!r}: expected time:watts"
                ) from None
            steps.append((t, w))
        if not steps:
            raise ValueError(f"no steps in power trace spec {spec!r}")
        steps.sort(key=lambda step: step[0])
        if steps[0][0] > 0:
            steps.insert(0, (0.0, steps[0][1]))
            if steps[1][0] == 0.0:
                steps.pop(0)
        return cls(steps=tuple(steps))

    def power_at(self, time_s: float) -> float:
        """The load in watts at ``time_s``."""
        if time_s < 0:
            raise ValueError(f"time must be non-negative, got {time_s}")
        current = self.steps[0][1]
        for t, watts in self.steps:
            if t > time_s:
                break
            current = watts
        return current

    def energy_wh(self, duration_s: float) -> float:
        """Energy drawn over ``[0, duration_s]`` in watt-hours."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        total = 0.0
        for k, (t, watts) in enumerate(self.steps):
            if t >= duration_s:
                break
            stop = self.steps[k + 1][0] if k + 1 < len(self.steps) else duration_s
            total += watts * (min(stop, duration_s) - t)
        return total / 3600.0
