"""`repro.api`: the unified service facade — the supported entry surface.

Historically the library grew several scattered entry points: build an
:class:`~repro.core.pipeline.AnnotationPipeline` by hand, construct a
:class:`~repro.streaming.server.MediaServer` ad hoc, call
:func:`~repro.core.pipeline.sweep_quality_levels`, wire archives and
engines yourself.  The building blocks remain importable from their
home modules, but the pre-facade top-level aliases (and the one-shot
``run_pipeline`` helper) are gone after a full deprecation cycle; the
**supported** way in is this module plus the names re-exported in
``repro.__all__``:

* :class:`AnnotationService` — the offline side: profile a clip, produce
  annotation tracks, build playable annotated streams, sweep quality
  levels.
* :class:`StreamingService` — the serving side: a catalog fronted by one
  object, streamable in-process (sync) or over asyncio TCP via
  :meth:`StreamingService.serve` / :meth:`StreamingService.fetch`.
* :func:`configure_engine` — a process-wide default execution engine
  picked up by every service (and the CLI) when no explicit ``engine=``
  is given.

The CLI routes every subcommand through this facade, so ``repro serve``
and ``python -c "from repro.api import StreamingService"`` exercise the
same code path.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import warnings
from typing import List, Optional, Sequence, Tuple

from .core.annotation import AnnotationTrack, DeviceAnnotationTrack
from .core.dvfs_annotation import DvfsAnnotator
from .core.engine import EngineConfig, EngineSpec, resolve_engine
from .core.pipeline import (
    AnnotatedStream,
    AnnotationPipeline,
    ProfileResult,
    sweep_quality_levels,
)
from .core.policies import PolicySpec
from .core.policy import QUALITY_LEVELS, SchemeParameters
from .core.profile_cache import ProfileCache
from .display.devices import DeviceProfile, get_device
from .net.config import FetchOptions, ServeConfig
from .player.playback import PlaybackResult
from .streaming.client import MobileClient
from .streaming.network import NetworkPath
from .streaming.packets import MediaPacket
from .streaming.server import MediaServer
from .streaming.session import SessionDescription
from .video.clip import ClipBase

__all__ = [
    "AnnotationService",
    "FetchOptions",
    "ServeConfig",
    "StreamingService",
    "configure_engine",
    "default_engine",
    "fetch_stream",
    "fetch_stream_sync",
    "server_status",
    "server_status_sync",
    "server_stats",
    "server_stats_sync",
]

#: Keyword names accepted by the legacy per-call fetch spelling.
_LEGACY_FETCH_KWARGS = frozenset(
    f.name for f in dataclasses.fields(FetchOptions)
)


def _resolve_fetch_options(options, legacy_kwargs) -> FetchOptions:
    """Fold deprecated loose fetch kwargs into a :class:`FetchOptions`."""
    if legacy_kwargs:
        unknown = set(legacy_kwargs) - _LEGACY_FETCH_KWARGS
        if unknown:
            raise TypeError(
                "unknown fetch parameter(s): " + ", ".join(sorted(unknown))
            )
        warnings.warn(
            "passing fetch knobs as loose keyword arguments is deprecated; "
            "build a repro.FetchOptions and pass it as options=",
            DeprecationWarning,
            stacklevel=3,
        )
        options = (options if options is not None else FetchOptions()).replace(
            **legacy_kwargs
        )
    return options if options is not None else FetchOptions()

#: Process-wide default engine, set by :func:`configure_engine`.
_default_engine: EngineSpec = None
_default_engine_lock = threading.Lock()


def configure_engine(
    engine: EngineSpec = None,
    chunk_size: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> EngineSpec:
    """Set the process-wide default execution engine; returns the previous.

    ``engine`` is a kind name (``"perframe"``, ``"chunked"``,
    ``"threads"``, ``"processes"``), an
    :class:`~repro.core.engine.EngineConfig`, or ``None`` to reset to the
    library default.  ``chunk_size`` / ``max_workers`` refine a kind name
    into a full config.  Every facade service (and the CLI) resolves
    ``engine=None`` against this default.
    """
    global _default_engine
    if engine is not None and (chunk_size is not None or max_workers is not None):
        resolved = resolve_engine(engine)
        engine = EngineConfig(
            kind=resolved.kind,
            chunk_size=chunk_size if chunk_size is not None else resolved.chunk_size,
            max_workers=max_workers if max_workers is not None else resolved.max_workers,
        )
    elif engine is not None:
        resolve_engine(engine)  # validate eagerly
    with _default_engine_lock:
        previous = _default_engine
        _default_engine = engine
    return previous


def default_engine() -> EngineSpec:
    """The engine used when a facade call passes ``engine=None``."""
    return _default_engine


def _effective_engine(engine: EngineSpec) -> EngineSpec:
    return engine if engine is not None else _default_engine


def _resolve_device(device) -> DeviceProfile:
    """Accept a device profile object or a registry name."""
    if isinstance(device, DeviceProfile):
        return device
    return get_device(device)


class AnnotationService:
    """Offline annotation workflows behind one object.

    Wraps :class:`~repro.core.pipeline.AnnotationPipeline` with the
    engine default from :func:`configure_engine` and device-name
    resolution, so callers hold clips and strings, not pipeline plumbing.

    Parameters
    ----------
    params:
        Scheme parameters (quality level, scene thresholds).
    engine:
        Execution engine override; ``None`` uses the
        :func:`configure_engine` default.
    profile_cache:
        Optional content-keyed profile cache shared across calls.
    policy:
        Backlight policy used for annotation (``None``, a registered
        name such as ``"hebs"``, or a
        :class:`~repro.core.policies.BacklightPolicy` instance).
    """

    def __init__(
        self,
        params: SchemeParameters = SchemeParameters(),
        engine: EngineSpec = None,
        profile_cache: Optional[ProfileCache] = None,
        policy: PolicySpec = None,
    ):
        self.params = params
        self.engine = _effective_engine(engine)
        self.profile_cache = profile_cache
        self.policy = policy

    def _pipeline(self, params: Optional[SchemeParameters] = None) -> AnnotationPipeline:
        return AnnotationPipeline(
            params if params is not None else self.params,
            engine=self.engine,
            profile_cache=self.profile_cache,
            policy=self.policy,
        )

    def profile(self, clip: ClipBase) -> ProfileResult:
        """Run the analysis + scene-detection stages for one clip."""
        return self._pipeline().profile(clip)

    def annotate(
        self, clip: ClipBase, quality: Optional[float] = None
    ) -> AnnotationTrack:
        """Produce the device-independent annotation track for ``clip``.

        ``quality`` overrides the service's clipped-pixel budget for
        this call; ``None`` keeps ``self.params.quality``.  Returns an
        :class:`~repro.core.annotation.AnnotationTrack`.
        """
        params = self.params if quality is None else self.params.with_quality(quality)
        return self._pipeline(params).annotate(clip)

    def annotate_for_device(
        self, clip: ClipBase, device, quality: Optional[float] = None
    ) -> DeviceAnnotationTrack:
        """Annotate ``clip`` and bind the track to ``device``.

        ``device`` is a :class:`~repro.display.devices.DeviceProfile`
        or a registry name; ``quality`` optionally overrides the
        clipped-pixel budget.  Returns a
        :class:`~repro.core.annotation.DeviceAnnotationTrack`.
        """
        return self.annotate(clip, quality=quality).bind(_resolve_device(device))

    def build_stream(self, clip: ClipBase, device) -> AnnotatedStream:
        """Annotate ``clip``, bind it to ``device`` (object or registry
        name) and wrap both as a playable
        :class:`~repro.core.pipeline.AnnotatedStream`."""
        profile_device = _resolve_device(device)
        track = self.annotate(clip).bind(profile_device)
        return AnnotatedStream(clip=clip, track=track, device=profile_device)

    def sweep(
        self,
        clip: ClipBase,
        device,
        qualities: Sequence[float] = QUALITY_LEVELS,
    ) -> List[AnnotatedStream]:
        """Annotate ``clip`` for ``device`` at each quality level in
        ``qualities`` (default: the paper's 0/5/10/15/20 % ladder),
        profiling the pixels only once.  Returns one
        :class:`~repro.core.pipeline.AnnotatedStream` per level.
        """
        return sweep_quality_levels(
            clip,
            _resolve_device(device),
            qualities,
            params=self.params,
            engine=self.engine,
            profile_cache=self.profile_cache,
            policy=self.policy,
        )


class StreamingService:
    """The serving side of Figure 1 behind one object.

    Owns a :class:`~repro.streaming.server.MediaServer` (catalog,
    annotation caches, packet emission) and layers the two delivery
    modes on top:

    * **in-process** — :meth:`stream` / :meth:`play` yield the packet
      sequence directly (the pre-wire behavior);
    * **wire** — :meth:`serve` hosts the catalog on asyncio TCP and
      :meth:`fetch` / :meth:`fetch_sync` pull a stream back through a
      retrying :class:`~repro.net.client.AsyncMobileClient`.

    Parameters
    ----------
    params:
        Scheme parameters (quality level, scene thresholds) used when
        annotating catalog content.
    qualities:
        The quality ladder offered during session negotiation.
    dvfs_annotator:
        Optional :class:`~repro.core.dvfs_annotation.DvfsAnnotator`; when
        set, sessions also carry DVFS annotation packets.
    codec:
        Optional :class:`~repro.video.codec.CodecModel` providing
        compressed wire sizes for frame packets.
    engine:
        Execution engine override; ``None`` uses the
        :func:`configure_engine` default.
    profile_cache:
        Optional content-keyed profile cache shared across sessions.
    policy:
        Backlight policy used when annotating catalog content (``None``,
        a registered name, or an instance).
    ambient:
        Optional serve-time ambient spec: a preset name, numeric
        illuminance, or a simulated light-sensor trace
        (``"0:dark-room,30:office"``).  Sessions are then bound under
        the trace's condition at each scene's start time instead of the
        classic dark-room binding.
    """

    def __init__(
        self,
        params: SchemeParameters = SchemeParameters(),
        qualities: Tuple[float, ...] = QUALITY_LEVELS,
        dvfs_annotator: Optional[DvfsAnnotator] = None,
        codec=None,
        engine: EngineSpec = None,
        profile_cache: Optional[ProfileCache] = None,
        policy: PolicySpec = None,
        ambient=None,
    ):
        self.server = MediaServer(
            params=params,
            qualities=qualities,
            dvfs_annotator=dvfs_annotator,
            codec=codec,
            engine=_effective_engine(engine),
            profile_cache=profile_cache,
            policy=policy,
            ambient=ambient,
        )

    # -- catalog -------------------------------------------------------
    def add_clip(self, clip: ClipBase) -> "StreamingService":
        """Register a clip; returns self for chaining."""
        self.server.add_clip(clip)
        return self

    def add_archive(self, path) -> str:
        """Load an annotated archive from ``path``; returns the clip name."""
        return self.server.add_archive(path)

    def export_archive(self, clip_name: str, path) -> None:
        """Write the clip named ``clip_name`` plus all prepared
        annotation variants to ``path`` as an archive."""
        self.server.export_archive(clip_name, path)

    def catalog(self) -> Tuple[str, ...]:
        """Names of all registered clips, sorted."""
        return self.server.catalog()

    # -- in-process serving --------------------------------------------
    def open_session(self, clip_name: str, device, quality: float) -> SessionDescription:
        """Negotiate a session: ``clip_name`` from the catalog, a
        ``device`` (object or registry name) and a ``quality`` budget.
        Returns the :class:`~repro.streaming.session.SessionDescription`.
        """
        client = MobileClient(_resolve_device(device))
        return self.server.open_session(client.request(clip_name, quality))

    def stream(self, session: SessionDescription) -> "list[MediaPacket]":
        """Materialize a session's packet sequence (annotation + frames)."""
        return list(self.server.stream(session))

    def play(
        self,
        clip_name: str,
        device,
        quality: float,
        network: Optional[NetworkPath] = None,
        **playback_kwargs,
    ) -> PlaybackResult:
        """End-to-end in-process run: negotiate ``clip_name`` at
        ``quality`` for ``device``, stream the packets, deliver them over
        the optional ``network`` path model, and play them back
        (``playback_kwargs`` forward to the playback engine).  Returns
        the :class:`~repro.player.playback.PlaybackResult`.
        """
        profile = _resolve_device(device)
        client = MobileClient(profile)
        session = self.server.open_session(client.request(clip_name, quality))
        packets = list(self.server.stream(session))
        delivery = network.deliver(packets) if network is not None else None
        return client.play_stream(
            session, packets, delivery=delivery, **playback_kwargs
        )

    # -- wire serving --------------------------------------------------
    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServeConfig] = None,
        **legacy_kwargs,
    ):
        """Build an (unstarted) asyncio TCP server for this catalog.

        Use as ``async with service.serve() as srv:`` or call
        ``await srv.start()`` / ``await srv.serve_forever()``.

        Parameters
        ----------
        host / port:
            Bind address; ``port=0`` picks a free port (read the bound
            one from ``srv.address`` after start).
        config:
            The serving policy, a :class:`ServeConfig` (admission,
            resume, drain, batching, compute slots).  ``None`` uses the
            defaults.
        **legacy_kwargs:
            Deprecated: any :class:`ServeConfig` field passed as a
            loose keyword (``queue_depth=...``, ``max_sessions=...``,
            ...).  Folded into ``config`` with a
            :class:`DeprecationWarning`.

        Returns
        -------
        :class:`~repro.net.server.AnnotationStreamServer`
            The unstarted server bound to this catalog.
        """
        from .net.server import AnnotationStreamServer

        return AnnotationStreamServer(
            self.server, host=host, port=port, config=config, **legacy_kwargs
        )

    async def fetch(
        self, host: str, port: int, clip_name: str, quality: float, device,
        options: Optional[FetchOptions] = None, **legacy_kwargs,
    ):
        """Fetch ``clip_name`` at ``quality`` for ``device`` from the wire
        server at ``host``:``port`` (async, with retries); ``options``
        is the :class:`FetchOptions` policy (``legacy_kwargs`` are the
        deprecated loose spelling of its fields)."""
        return await fetch_stream(
            host, port, clip_name, quality, device,
            options=options, **legacy_kwargs,
        )

    def fetch_sync(
        self, host: str, port: int, clip_name: str, quality: float, device,
        options: Optional[FetchOptions] = None, **legacy_kwargs,
    ):
        """Blocking wrapper over :meth:`fetch` for sync callers: same
        ``host`` / ``port`` / ``clip_name`` / ``quality`` / ``device`` /
        ``options`` / ``legacy_kwargs`` arguments and return value."""
        return fetch_stream_sync(
            host, port, clip_name, quality, device,
            options=options, **legacy_kwargs,
        )


async def fetch_stream(
    host: str, port: int, clip_name: str, quality: float, device,
    options: Optional[FetchOptions] = None, **legacy_kwargs,
):
    """Fetch one annotated stream from any wire server (async, retries).

    The single implementation behind the whole facade fetch family —
    :func:`fetch_stream_sync`, :meth:`StreamingService.fetch` and
    :meth:`StreamingService.fetch_sync` are thin wrappers over this.
    Requests ``clip_name`` at the ``quality`` clipping budget from the
    server at ``host``:``port``.  ``device`` is a profile object or
    registry name; ``options`` is a :class:`FetchOptions` (timeouts,
    retry policy, resume, circuit breaker; ``None`` uses the defaults).
    ``legacy_kwargs`` — :class:`FetchOptions` fields passed as loose
    keywords — still work but are deprecated.  Returns a
    :class:`~repro.net.client.FetchResult`.
    """
    opts = _resolve_fetch_options(options, legacy_kwargs)
    client = opts.client(_resolve_device(device))
    return await client.fetch(host, port, clip_name, quality)


def fetch_stream_sync(
    host: str, port: int, clip_name: str, quality: float, device,
    options: Optional[FetchOptions] = None, **legacy_kwargs,
):
    """Blocking wrapper over :func:`fetch_stream` for sync callers.

    Takes the same arguments as :func:`fetch_stream` — ``host``,
    ``port``, ``clip_name``, ``quality``, ``device``, ``options``, and
    any ``legacy_kwargs`` — and returns the same
    :class:`~repro.net.client.FetchResult`; raises whatever the
    underlying fetch raises.
    """
    return asyncio.run(
        fetch_stream(
            host, port, clip_name, quality, device,
            options=options, **legacy_kwargs,
        )
    )


async def server_status(host: str, port: int, timeout_s: float = 5.0):
    """Probe a wire server's health/readiness (async).

    ``host`` / ``port`` locate the server; ``timeout_s`` bounds connect
    and read.  Returns a :class:`~repro.net.messages.StatusInfo` with
    the server's state, accepting flag and session counts.  Health
    probes bypass admission control, so this works against a saturated
    or draining server.  Raises ``OSError`` / ``asyncio.TimeoutError``
    when the server is unreachable.
    """
    from .net.client import fetch_status

    return await fetch_status(host, port, timeout_s=timeout_s)


def server_status_sync(host: str, port: int, timeout_s: float = 5.0):
    """Blocking wrapper over :func:`server_status` for sync callers.

    Same ``host`` / ``port`` / ``timeout_s`` arguments and
    :class:`~repro.net.messages.StatusInfo` return value as
    :func:`server_status`.
    """
    return asyncio.run(server_status(host, port, timeout_s=timeout_s))


async def server_stats(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    format: str = "json",
    include_events: bool = False,
    include_spans: bool = False,
    limit: Optional[int] = None,
):
    """Scrape a wire server's live observability snapshot (async).

    ``host`` / ``port`` locate the server; ``timeout_s`` bounds connect
    and read.  ``format`` selects the metrics rendering (``json``
    embeds the full snapshot dict under ``metrics``; ``prometheus``
    embeds exposition text under ``prometheus``).  ``include_events``
    attaches the server's flight-recorder tail, ``include_spans`` its
    collected trace spans, and ``limit`` caps how many of each come
    back.  Like :func:`server_status`, the probe bypasses admission
    control, so it answers from a saturated or draining server.
    Returns the statsdump payload dict (always includes the server's
    ``health`` snapshot).  Raises ``OSError`` /
    ``asyncio.TimeoutError`` when the server is unreachable.
    """
    from .net.client import fetch_stats

    return await fetch_stats(
        host, port, timeout_s=timeout_s, format=format,
        include_events=include_events, include_spans=include_spans,
        limit=limit,
    )


def server_stats_sync(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    format: str = "json",
    include_events: bool = False,
    include_spans: bool = False,
    limit: Optional[int] = None,
):
    """Blocking wrapper over :func:`server_stats` for sync callers.

    Same ``host`` / ``port`` / ``timeout_s`` / ``format`` /
    ``include_events`` / ``include_spans`` / ``limit`` arguments and
    statsdump payload dict return value as :func:`server_stats`.
    """
    return asyncio.run(server_stats(
        host, port, timeout_s=timeout_s, format=format,
        include_events=include_events, include_spans=include_spans,
        limit=limit,
    ))
