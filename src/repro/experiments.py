"""Programmatic reproduction API: every paper experiment as a function.

The benchmarks under ``benchmarks/`` regenerate the paper's tables inside
pytest; this module exposes the same experiments as plain library calls so
downstream users can rerun them at any scale, from notebooks or scripts:

    from repro import experiments
    fig9 = experiments.figure9(duration_scale=0.5)
    print(fig9.format())

Every result object carries the raw numbers plus a ``format()`` method
producing the paper-style text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .camera import DigitalCamera, SRGBLikeResponse
from .core import (
    QUALITY_LEVELS,
    AnnotationPipeline,
    SchemeParameters,
    quality_label,
    sweep_quality_levels,
)
from .display import (
    DeviceProfile,
    all_devices,
    ipaq_5555,
    measure_backlight_transfer,
)
from .player import DecoderModel, PlaybackEngine
from .power import PLAYBACK_ACTIVITY, DevicePowerModel
from .video import PAPER_CLIP_NAMES, paper_library

#: Default workload scale: small enough for interactive runs, large enough
#: for stable statistics.
DEFAULT_RESOLUTION: Tuple[int, int] = (96, 72)
DEFAULT_DURATION_SCALE = 0.25


def _fmt_percent_table(rows: Dict[str, List[float]], qualities: Sequence[float]) -> str:
    lines = [f"{'clip':<22}" + "".join(f"{quality_label(q):>8}" for q in qualities)]
    for name, values in rows.items():
        lines.append(f"{name:<22}" + "".join(f"{v:>8.1%}" for v in values))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 9
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SavingsTable:
    """Per-clip, per-quality savings (Figures 9 and 10)."""

    kind: str
    device_name: str
    qualities: Tuple[float, ...]
    rows: Dict[str, List[float]]

    def best_clip(self) -> Tuple[str, float]:
        """Clip with the largest savings at the highest quality level."""
        name = max(self.rows, key=lambda n: self.rows[n][-1])
        return name, self.rows[name][-1]

    def format(self) -> str:
        """Paper-style text table."""
        return _fmt_percent_table(self.rows, self.qualities)


def figure9(
    device: Optional[DeviceProfile] = None,
    resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
    duration_scale: float = DEFAULT_DURATION_SCALE,
    qualities: Sequence[float] = QUALITY_LEVELS,
    names: Sequence[str] = PAPER_CLIP_NAMES,
    params: SchemeParameters = SchemeParameters(),
) -> SavingsTable:
    """Simulated LCD backlight power savings (the headline table)."""
    device = device if device is not None else ipaq_5555()
    rows: Dict[str, List[float]] = {}
    for clip in paper_library(resolution=resolution, duration_scale=duration_scale,
                              names=names):
        streams = sweep_quality_levels(clip, device, qualities, params=params)
        rows[clip.name] = [s.predicted_backlight_savings() for s in streams]
    return SavingsTable(kind="backlight", device_name=device.name,
                        qualities=tuple(qualities), rows=rows)


def figure10(
    device: Optional[DeviceProfile] = None,
    resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
    duration_scale: float = DEFAULT_DURATION_SCALE,
    qualities: Sequence[float] = QUALITY_LEVELS,
    names: Sequence[str] = PAPER_CLIP_NAMES,
    params: SchemeParameters = SchemeParameters(),
    reference_pixels: int = 320 * 240,
) -> SavingsTable:
    """DAQ-measured whole-device power savings during playback.

    ``reference_pixels`` charges decode cost at the device's native
    resolution even when simulation frames are smaller.
    """
    device = device if device is not None else ipaq_5555()
    engine = PlaybackEngine(
        device, decoder=DecoderModel(reference_pixels=reference_pixels)
    )
    rows: Dict[str, List[float]] = {}
    run_id = 0
    for clip in paper_library(resolution=resolution, duration_scale=duration_scale,
                              names=names):
        row = []
        streams = sweep_quality_levels(clip, device, qualities, params=params)
        for stream in streams:
            result = engine.play(stream)
            measured = result.measure(run_id=2 * run_id).savings_vs(
                result.measure_baseline(run_id=2 * run_id + 1)
            )
            row.append(measured)
            run_id += 1
        rows[clip.name] = row
    return SavingsTable(kind="total-device", device_name=device.name,
                        qualities=tuple(qualities), rows=rows)


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SceneTrace:
    """The three Figure 6 series for one clip."""

    clip_name: str
    times_s: np.ndarray
    frame_max_luminance: np.ndarray
    scene_max_luminance: np.ndarray
    instantaneous_savings: np.ndarray
    scene_count: int
    switch_count: int

    def format(self, points: int = 24) -> str:
        """Text table of the trace, decimated to ~``points`` rows."""
        step = max(1, self.times_s.size // points)
        lines = ["time_s  frame_max  scene_max  power_saved"]
        for i in range(0, self.times_s.size, step):
            lines.append(
                f"{self.times_s[i]:>6.2f} {self.frame_max_luminance[i]:>10.3f} "
                f"{self.scene_max_luminance[i]:>10.3f} "
                f"{self.instantaneous_savings[i]:>12.1%}"
            )
        return "\n".join(lines)


def figure6(
    clip_name: str = "themovie",
    device: Optional[DeviceProfile] = None,
    quality: float = 0.10,
    resolution: Tuple[int, int] = DEFAULT_RESOLUTION,
    duration_scale: float = DEFAULT_DURATION_SCALE,
    params: Optional[SchemeParameters] = None,
) -> SceneTrace:
    """Scene grouping trace for one clip."""
    from .video import make_clip

    device = device if device is not None else ipaq_5555()
    if params is None:
        params = SchemeParameters(quality=quality, min_scene_interval_frames=8)
    else:
        params = params.with_quality(quality)
    clip = make_clip(clip_name, resolution=resolution, duration_scale=duration_scale)
    pipeline = AnnotationPipeline(params)
    profile = pipeline.profile(clip)
    stream = pipeline.build_stream(clip, device)
    return SceneTrace(
        clip_name=clip_name,
        times_s=clip.timestamps(),
        frame_max_luminance=profile.max_luminance_series(),
        scene_max_luminance=profile.scene_max_series(),
        instantaneous_savings=stream.instantaneous_savings(),
        scene_count=len(profile.scenes),
        switch_count=stream.track.switch_count(),
    )


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransferCurves:
    """Measured backlight transfer per device (Figure 7)."""

    levels: Tuple[int, ...]
    curves: Dict[str, List[float]]

    def format(self) -> str:
        """Text table: one row per level, one column per device."""
        names = list(self.curves)
        lines = ["level  " + "  ".join(f"{n:>14}" for n in names)]
        for i, level in enumerate(self.levels):
            lines.append(
                f"{level:>5}  "
                + "  ".join(f"{self.curves[n][i]:>14.3f}" for n in names)
            )
        return "\n".join(lines)


def figure7(
    devices: Optional[Sequence[DeviceProfile]] = None,
    camera: Optional[DigitalCamera] = None,
    levels: Sequence[int] = tuple(range(0, 256, 32)) + (255,),
) -> TransferCurves:
    """Camera-measured brightness-vs-backlight curves."""
    devices = list(devices) if devices is not None else all_devices()
    camera = camera if camera is not None else DigitalCamera(
        response=SRGBLikeResponse(), noise_sigma=0.002, seed=7
    )
    curves: Dict[str, List[float]] = {}
    for dev in devices:
        transfer = measure_backlight_transfer(dev, camera)
        curves[dev.name] = [float(transfer.luminance(lv)) for lv in levels]
    return TransferCurves(levels=tuple(int(l) for l in levels), curves=curves)


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WhiteSweep:
    """Measured brightness vs white level at two backlights (Figure 8)."""

    device_name: str
    gray_levels: Tuple[int, ...]
    brightness_at_full: Tuple[float, ...]
    brightness_at_half: Tuple[float, ...]
    fitted_gamma: float

    def format(self) -> str:
        """Text table: one row per white level."""
        lines = ["white  brightness@bl255  brightness@bl128"]
        for level, full, half in zip(self.gray_levels, self.brightness_at_full,
                                     self.brightness_at_half):
            lines.append(f"{level:>5} {full:>17.3f} {half:>17.3f}")
        lines.append(f"fitted white gamma: {self.fitted_gamma:.3f}")
        return "\n".join(lines)


def figure8(
    device: Optional[DeviceProfile] = None,
    camera: Optional[DigitalCamera] = None,
    gray_levels: Sequence[int] = tuple(range(0, 256, 32)) + (255,),
) -> WhiteSweep:
    """Camera-measured brightness-vs-white-level curves (Figure 8)."""
    from .display import fit_white_gamma, measure_white_transfer

    device = device if device is not None else ipaq_5555()
    camera = camera if camera is not None else DigitalCamera(
        response=SRGBLikeResponse(), noise_sigma=0.002, seed=8
    )
    full = measure_white_transfer(device, camera, backlight_level=255,
                                  gray_levels=gray_levels)
    half = measure_white_transfer(device, camera, backlight_level=128,
                                  gray_levels=gray_levels)
    return WhiteSweep(
        device_name=device.name,
        gray_levels=tuple(int(g) for g in gray_levels),
        brightness_at_full=tuple(s.measured_brightness for s in full),
        brightness_at_half=tuple(s.measured_brightness for s in half),
        fitted_gamma=fit_white_gamma(full),
    )


# ---------------------------------------------------------------------------
# Section 4: backlight share
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PowerBreakdown:
    """Per-device component power during playback (Section 4's 25-30 %)."""

    rows: Dict[str, Dict[str, float]]

    def share(self, device_name: str) -> float:
        """Backlight fraction of total playback power for one device."""
        row = self.rows[device_name]
        return row["backlight"] / row["total"]

    def format(self) -> str:
        """Text table of the per-component breakdown."""
        parts = ("base", "cpu", "network", "panel", "backlight", "total")
        lines = [f"{'device':<16}" + "".join(f"{p:>10}" for p in parts) + f"{'share':>8}"]
        for name, row in self.rows.items():
            lines.append(
                f"{name:<16}"
                + "".join(f"{row[p]:>10.2f}" for p in parts)
                + f"{self.share(name):>8.1%}"
            )
        return "\n".join(lines)


def backlight_share() -> PowerBreakdown:
    """Component power breakdown for every registered device."""
    rows: Dict[str, Dict[str, float]] = {}
    for dev in all_devices():
        model = DevicePowerModel(dev)
        parts = model.component_power(PLAYBACK_ACTIVITY, 255)
        row = {k: float(np.asarray(v)) for k, v in parts.items()}
        row["total"] = float(model.total_power(PLAYBACK_ACTIVITY, 255))
        rows[dev.name] = row
    return PowerBreakdown(rows=rows)


def run_all(duration_scale: float = DEFAULT_DURATION_SCALE) -> Dict[str, object]:
    """Run the full reproduction sweep; returns {experiment: result}."""
    return {
        "figure6": figure6(duration_scale=duration_scale),
        "figure7": figure7(),
        "figure8": figure8(),
        "figure9": figure9(duration_scale=duration_scale),
        "figure10": figure10(duration_scale=duration_scale),
        "backlight_share": backlight_share(),
    }
