"""Fleet coordinator: spawn shard processes, front them with a router.

:class:`FleetCoordinator` owns the whole topology:

1. fork N worker processes (:mod:`repro.fleet.worker`), each building
   its own :class:`~repro.streaming.server.MediaServer` from the shared
   picklable catalog factory and binding its own port (``port=0`` —
   each worker reports the *actually bound* port back over its
   lifecycle pipe);
2. start a :class:`~repro.fleet.router.FleetRouter` over the reported
   addresses — the single address clients connect to;
3. on shutdown, close the router, ask every live worker to drain, and
   reap the processes.

Chaos testing (and the soak benchmark) uses :meth:`kill_shard`, which
SIGKILLs a worker with no warning — exactly what a crashed shard looks
like.  In-flight clients on that shard see a dead socket, reconnect to
the router with their portable resume tokens, and get re-routed to a
replica shard that replays the remainder byte-identically.

Worker processes are started with the ``fork`` start method when the
platform offers it (cheap, inherits the imported library) and ``spawn``
otherwise; either way the :class:`~repro.fleet.worker.WorkerSpec` must
pickle, which is why the catalog travels as a factory function.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Tuple

from ..net.config import ServeConfig
from ..streaming.server import MediaServer
from ..telemetry import record_event
from .router import FleetRouter
from .worker import WorkerSpec, worker_main

__all__ = ["FleetCoordinator", "FleetError"]


class FleetError(RuntimeError):
    """A fleet worker failed to start or report its bound port."""


def _mp_context():
    """The cheapest available multiprocessing start method."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class _Worker:
    """One spawned shard process plus its lifecycle pipe."""

    def __init__(self, spec: WorkerSpec, ctx):
        self.spec = spec
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"repro-fleet-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.port: Optional[int] = None

    def await_ready(self, timeout_s: float) -> int:
        """Block until the worker reports its bound port."""
        if not self.conn.poll(timeout_s):
            raise FleetError(
                f"shard {self.spec.shard_id!r} did not come up "
                f"within {timeout_s}s"
            )
        kind, value = self.conn.recv()
        if kind != "ready":
            raise FleetError(
                f"shard {self.spec.shard_id!r} failed to start: {value}"
            )
        self.port = int(value)
        return self.port

    def request_stop(self) -> None:
        """Ask the worker to drain and exit (best effort)."""
        try:
            self.conn.send("stop")
        except (OSError, BrokenPipeError):
            pass

    def reap(self, timeout_s: float) -> None:
        """Join the process; SIGKILL it if it overstays."""
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout_s)
        self.conn.close()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class FleetCoordinator:
    """Run N shard servers behind one router address.

    Parameters
    ----------
    catalog_factory:
        Zero-argument picklable callable building one shard's
        :class:`~repro.streaming.server.MediaServer`.  Each worker calls
        it in its own process; every call must produce the same
        deterministic catalog (that equivalence is what makes failover
        byte-identical).
    shards:
        How many worker processes to run.  Must be >= 1.
    config:
        :class:`~repro.net.config.ServeConfig` applied to every shard
        (``portable_tokens`` is forced on).  ``None`` uses defaults.
    host:
        Interface for the router and every shard.
    port:
        Router port; 0 picks a free one.  Shards always pick their own
        free ports (reported in :meth:`status`).
    vnodes / health_interval_s / probe_timeout_s / busy_retry_after_s:
        Forwarded to the :class:`~repro.fleet.router.FleetRouter`.
    startup_timeout_s:
        How long to wait for each worker to report its bound port.

    Raises
    ------
    ValueError
        If ``shards`` < 1.
    FleetError
        From :meth:`start`, when a worker fails to come up.
    """

    def __init__(
        self,
        catalog_factory: Callable[[], MediaServer],
        shards: int = 2,
        config: Optional[ServeConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = 64,
        health_interval_s: float = 1.0,
        probe_timeout_s: float = 2.0,
        busy_retry_after_s: float = 0.25,
        startup_timeout_s: float = 60.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.catalog_factory = catalog_factory
        self.shard_count = shards
        self.config = config if config is not None else ServeConfig()
        self.host = host
        self._port = port
        self.vnodes = vnodes
        self.health_interval_s = health_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.busy_retry_after_s = busy_retry_after_s
        self.startup_timeout_s = startup_timeout_s
        self.router: Optional[FleetRouter] = None
        self._workers: Dict[str, _Worker] = {}

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` of the router front door."""
        if self.router is None:
            raise RuntimeError("fleet is not started")
        return self.router.address

    def shard_ids(self) -> List[str]:
        """The shard names, ``shard-0`` .. ``shard-N-1``."""
        return [f"shard-{i}" for i in range(self.shard_count)]

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Spawn the workers, wait for their ports, start the router.

        Returns the router's bound address.  On any worker failure the
        already-spawned processes are torn down before raising.
        """
        if self.router is not None:
            raise RuntimeError("fleet is already started")
        ctx = _mp_context()
        try:
            for shard_id in self.shard_ids():
                spec = WorkerSpec(
                    shard_id=shard_id,
                    catalog_factory=self.catalog_factory,
                    host=self.host,
                    port=0,
                    config=self.config,
                )
                self._workers[shard_id] = _Worker(spec, ctx)
            for shard_id, worker in self._workers.items():
                worker.await_ready(self.startup_timeout_s)
                record_event("fleet_shard_ready", shard=shard_id,
                             port=worker.port, pid=worker.process.pid)
        except Exception:
            self._teardown_workers()
            raise
        self.router = FleetRouter(
            [(s, self.host, w.port) for s, w in self._workers.items()],
            host=self.host,
            port=self._port,
            vnodes=self.vnodes,
            health_interval_s=self.health_interval_s,
            probe_timeout_s=self.probe_timeout_s,
            busy_retry_after_s=self.busy_retry_after_s,
        )
        try:
            await self.router.start()
            await self.router.probe_shards()
        except Exception:
            self.router = None
            self._teardown_workers()
            raise
        return self.router.address

    async def stop(self) -> None:
        """Graceful shutdown: close the router, drain and reap workers."""
        if self.router is not None:
            await self.router.close()
            self.router = None
        self._teardown_workers()

    def _teardown_workers(self) -> None:
        for worker in self._workers.values():
            if worker.alive:
                worker.request_stop()
        for worker in self._workers.values():
            worker.reap(self.config.drain_timeout_s + 5.0)
        self._workers.clear()

    async def __aenter__(self) -> "FleetCoordinator":
        """Start on ``async with`` entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Stop on ``async with`` exit."""
        await self.stop()

    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: str) -> int:
        """SIGKILL one worker (chaos path); returns its pid.

        No drain, no goodbye: in-flight sessions on the shard die with
        it.  The router notices on its next connect or health probe and
        re-routes resumes to replicas.
        """
        worker = self._workers.get(shard_id)
        if worker is None:
            raise KeyError(f"unknown shard {shard_id!r}")
        pid = worker.process.pid
        worker.process.kill()
        worker.process.join(5.0)
        record_event("fleet_shard_killed", shard=shard_id, pid=pid)
        return pid

    def status(self) -> dict:
        """Topology snapshot: router address plus per-shard process state.

        Includes each shard's *bound* port, pid and process liveness —
        the coordinator-side complement of the router's
        :meth:`~repro.fleet.router.FleetRouter.fleet_snapshot`.
        """
        return {
            "router": {
                "host": self.host,
                "port": self.router.port if self.router else None,
            },
            "shards": [
                {
                    "shard": shard_id,
                    "port": worker.port,
                    "pid": worker.process.pid,
                    "process_alive": worker.alive,
                }
                for shard_id, worker in self._workers.items()
            ],
        }
