"""Fleet front door: an asyncio L7 router over the shard servers.

Clients speak the ordinary wire protocol to one address; the router
reads each connection's *first* control packet, decides which shard
should serve it, and then gets out of the way — the rest of the
connection is a transparent byte relay, so the data plane stays the
shards' fused wire path with no re-encoding in the middle.

Routing policy, per first-packet kind:

* ``hello`` — consistent-hash the clip name onto the ring
  (:class:`~repro.fleet.ring.HashRing`), so every session for a clip
  lands on the shard whose profile/plane caches are already warm for
  it.  If the owner is dead or full (its last ``status`` probe reports
  not-accepting, or the router's own in-flight count has reached the
  shard's session cap), *spill over* to the next distinct shard in ring
  order.
* ``resume`` — shards issue **portable** resume tokens
  (:mod:`repro.net.messages`), so the router decodes the token itself,
  recovers the clip name, and walks the same preference order: the
  owner if it is still alive, otherwise a replica.  The replica has
  never seen the session, but the token carries everything needed to
  rebuild it over the shared deterministic catalog, and the replay is
  byte-identical — this is the fleet's failover path.
* ``health`` / ``stats`` — answered by the router itself: an aggregate
  readiness snapshot, or a ``statsdump`` whose ``fleet`` section lists
  every shard's bound port, liveness and load (what ``repro fleet
  status`` prints).

Failure handling is deliberately *retriable*: when no shard can take a
connection the router answers ``busy`` (clients back off and retry),
never ``error`` (which clients treat as authoritative rejection).  A
connect failure to a shard marks it dead immediately — faster than the
background health loop — and the health loop later revives it when the
``status`` probe answers again.

Telemetry: ``fleet.route`` spans per routed connection,
``repro_fleet_*`` gauges/counters (alive shards, per-shard in-flight
relays, routed/spillover/failover/unroutable totals) and flight-recorder
events for shard death, revival, spillover and failover.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.codec import WireFormatError, encode_packet_bytes, read_packet
from ..net.messages import (
    StatusInfo,
    decode_control,
    decode_portable_token,
    encode_busy,
    encode_error,
    encode_statsdump,
    encode_status,
)
from ..telemetry import (
    flight_events,
    record_event,
    registry as telemetry_registry,
    snapshot as telemetry_snapshot,
    span_events,
    to_prometheus,
    trace,
)
from .ring import HashRing

__all__ = ["FleetRouter", "ShardLink"]

#: Router lifecycle states mirrored from the single-server vocabulary.
_STATE_READY = "ready"
_STATE_STOPPED = "stopped"

_RELAY_CHUNK = 1 << 16


@dataclass
class ShardLink:
    """The router's live view of one shard.

    Parameters
    ----------
    shard_id:
        The shard's stable name (its position on the hash ring).
    host / port:
        Where the shard's :class:`~repro.net.server.AnnotationStreamServer`
        actually listens — the *bound* port reported by the worker, not
        the requested one.
    """

    shard_id: str
    host: str
    port: int
    alive: bool = True
    inflight: int = 0
    status: Optional[StatusInfo] = field(default=None)

    def accepting(self) -> bool:
        """Best-knowledge admission headroom check for spillover.

        False when the last health probe reported not-accepting, or when
        the router itself is already relaying as many sessions into this
        shard as the shard's advertised cap.
        """
        if self.status is not None:
            if not self.status.accepting:
                return False
            if (self.status.max_sessions is not None
                    and self.inflight >= self.status.max_sessions):
                return False
        return True


class FleetRouter:
    """Single-address front door routing wire sessions onto shards.

    Parameters
    ----------
    shards:
        ``(shard_id, host, port)`` triples for every shard, with the
        shard's *bound* port (workers report it after listening).
    host / port:
        Router bind address; ``port=0`` picks a free port.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    health_interval_s:
        Period of the background ``status``-probe loop.
    probe_timeout_s:
        Per-probe connect+read deadline; a shard missing it is marked
        dead (until a later probe answers).
    hello_timeout_s:
        How long a client connection may take to present its first
        control packet.
    busy_retry_after_s:
        Retry-after hint on ``busy`` answers when no shard is routable.

    Raises
    ------
    ValueError
        If ``shards`` is empty or a timing parameter is out of range.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[str, str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = 64,
        health_interval_s: float = 1.0,
        probe_timeout_s: float = 2.0,
        hello_timeout_s: float = 10.0,
        busy_retry_after_s: float = 0.25,
    ):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if health_interval_s <= 0:
            raise ValueError("health_interval_s must be positive")
        if probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive")
        if hello_timeout_s <= 0:
            raise ValueError("hello_timeout_s must be positive")
        if busy_retry_after_s < 0:
            raise ValueError("busy_retry_after_s must be non-negative")
        self.host = host
        self._port = port
        self.health_interval_s = health_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.hello_timeout_s = hello_timeout_s
        self.busy_retry_after_s = busy_retry_after_s
        self._links: Dict[str, ShardLink] = {}
        for shard_id, shard_host, shard_port in shards:
            if shard_id in self._links:
                raise ValueError(f"duplicate shard id {shard_id!r}")
            self._links[shard_id] = ShardLink(shard_id, shard_host, shard_port)
        self.ring = HashRing(tuple(self._links), vnodes=vnodes)
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._tasks: set = set()
        self._state = _STATE_STOPPED
        reg = telemetry_registry()
        self._alive_gauge = reg.gauge(
            "repro_fleet_shards_alive",
            help="Shards currently believed reachable by the router.",
        )
        self._inflight_gauges = {
            shard_id: reg.gauge(
                "repro_fleet_inflight_sessions",
                help="Connections the router is currently relaying, per shard.",
                labels={"shard": shard_id},
            )
            for shard_id in self._links
        }
        self._routed_counters = {
            shard_id: reg.counter(
                "repro_fleet_routed_sessions_total",
                help="Connections relayed onto each shard.",
                labels={"shard": shard_id},
            )
            for shard_id in self._links
        }
        self._spillover_counter = reg.counter(
            "repro_fleet_spillover_sessions_total",
            help="hello connections routed off their ring owner (dead/full).",
        )
        self._failover_counter = reg.counter(
            "repro_fleet_failover_sessions_total",
            help="resume connections re-routed to a replica shard.",
        )
        self._unroutable_counter = reg.counter(
            "repro_fleet_unroutable_total",
            help="Connections answered busy because no shard was routable.",
        )
        self._probe_counter = reg.counter(
            "repro_fleet_health_probes_total",
            help="Aggregate health/stats probes answered by the router.",
        )
        self._alive_gauge.set(len(self._links))

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        if self._server is None:
            raise RuntimeError("router is not started")
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        return self.host, self.port

    @property
    def state(self) -> str:
        """Lifecycle state: ``ready`` or ``stopped``."""
        return self._state

    def links(self) -> List[ShardLink]:
        """Snapshot of every shard link, in ring insertion order."""
        return [self._links[s] for s in self.ring.shards]

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the front door and start the health loop."""
        if self._server is not None:
            raise RuntimeError("router is already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._state = _STATE_READY
        self._health_task = asyncio.ensure_future(self._health_loop())
        return self.address

    async def close(self) -> None:
        """Stop the front door: cancel relays and the health loop."""
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._state = _STATE_STOPPED

    async def serve_forever(self) -> None:
        """Block routing sessions until cancelled (used by ``repro serve``)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "FleetRouter":
        """Start on ``async with`` entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Close on ``async with`` exit."""
        await self.close()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await self.probe_shards()
            await asyncio.sleep(self.health_interval_s)

    async def probe_shards(self) -> Dict[str, bool]:
        """Probe every shard's ``status`` once; returns shard → alive.

        Dead shards are probed too — a shard that answers again is
        revived (the health loop calls this periodically, so a restarted
        or recovered shard rejoins the routable set automatically).
        """
        from ..net.client import fetch_status

        async def probe(link: ShardLink) -> None:
            try:
                link.status = await fetch_status(
                    link.host, link.port, timeout_s=self.probe_timeout_s
                )
            except (OSError, asyncio.TimeoutError, WireFormatError):
                self._mark_dead(link, reason="health_probe")
            else:
                self._mark_alive(link)

        await asyncio.gather(*(probe(l) for l in self._links.values()))
        self._alive_gauge.set(
            sum(1 for l in self._links.values() if l.alive)
        )
        return {s: l.alive for s, l in self._links.items()}

    def _mark_dead(self, link: ShardLink, reason: str) -> None:
        if link.alive:
            link.alive = False
            record_event("fleet_shard_down", shard=link.shard_id,
                         port=link.port, reason=reason)
        link.status = None

    def _mark_alive(self, link: ShardLink) -> None:
        if not link.alive:
            link.alive = True
            record_event("fleet_shard_up", shard=link.shard_id,
                         port=link.port)

    # ------------------------------------------------------------------
    # Aggregate probes
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Aggregate fleet health in the single-server ``healthz`` shape.

        ``state``/``accepting`` reflect whether *any* shard is routable;
        session counts are sums over the live shard statuses.
        """
        statuses = [l.status for l in self._links.values() if l.status]
        accepting = any(
            l.alive and l.accepting() for l in self._links.values()
        )
        max_sessions: Optional[int] = 0
        for status in statuses:
            if status.max_sessions is None:
                max_sessions = None
                break
            max_sessions += status.max_sessions
        if not statuses:
            max_sessions = None
        return {
            "state": _STATE_READY if accepting else "draining",
            "accepting": accepting,
            "active_sessions": sum(s.active_sessions for s in statuses),
            "waiting_sessions": sum(s.waiting_sessions for s in statuses),
            "max_sessions": max_sessions,
            "resumable_sessions": sum(s.resumable_sessions for s in statuses),
        }

    def fleet_snapshot(self) -> dict:
        """The ``fleet`` section of the router's ``statsdump`` answer."""
        return {
            "router": {"host": self.host, "port": self._port},
            "shards": [
                {
                    "shard": link.shard_id,
                    "host": link.host,
                    "port": link.port,
                    "alive": link.alive,
                    "inflight": link.inflight,
                    "active_sessions": (
                        link.status.active_sessions if link.status else None
                    ),
                    "max_sessions": (
                        link.status.max_sessions if link.status else None
                    ),
                    "state": link.status.state if link.status else None,
                }
                for link in self.links()
            ],
        }

    def stats_snapshot(
        self,
        format: str = "json",
        include_events: bool = False,
        include_spans: bool = False,
        limit: Optional[int] = None,
    ) -> dict:
        """The router's answer to a ``stats`` probe.

        Same shape as the single server's
        :meth:`~repro.net.server.AnnotationStreamServer.stats_snapshot`
        (``format`` selects json/prometheus metrics, ``include_events``
        / ``include_spans`` attach the flight tail and spans, ``limit``
        caps both), plus a ``fleet`` section with per-shard bound
        ports, liveness and load.
        """
        if format not in ("json", "prometheus"):
            raise ValueError(f"unknown stats format {format!r}")
        payload: dict = {
            "format": format,
            "health": self.healthz(),
            "fleet": self.fleet_snapshot(),
        }
        if format == "prometheus":
            payload["prometheus"] = to_prometheus()
        else:
            payload["metrics"] = telemetry_snapshot()
        if include_events:
            payload["events"] = flight_events(
                limit=limit if limit is not None else 128
            )
        if include_spans:
            payload["spans"] = span_events(
                limit=limit if limit is not None else 512
            )
        return payload

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            # Router shutdown cancels in-flight relays; the finally
            # blocks have already closed both sockets, so complete
            # quietly instead of tripping asyncio's noisy
            # cancelled-handler logging.
            await self._hangup(writer)
        finally:
            if task is not None:
                self._tasks.discard(task)

    async def _handle_connection(self, reader, writer) -> None:
        try:
            first = await asyncio.wait_for(
                read_packet(reader), timeout=self.hello_timeout_s
            )
        except (asyncio.TimeoutError, WireFormatError, OSError):
            await self._hangup(writer)
            return
        if first is None:
            await self._hangup(writer)
            return
        try:
            message = decode_control(first)
        except WireFormatError as exc:
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(encode_packet_bytes(encode_error(str(exc), seq=0)))
                await writer.drain()
            await self._hangup(writer)
            return
        if message.kind == "health":
            self._probe_counter.inc()
            await self._answer_health(writer)
            return
        if message.kind == "stats":
            self._probe_counter.inc()
            payload = self.stats_snapshot(
                format=message.stats.format,
                include_events=message.stats.include_events,
                include_spans=message.stats.include_spans,
                limit=message.stats.limit,
            )
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(encode_packet_bytes(encode_statsdump(payload, seq=0)))
                await writer.drain()
            await self._hangup(writer)
            return
        if message.kind == "hello":
            clip = message.hello.clip_name
        elif message.kind == "resume":
            info = decode_portable_token(message.resume.token)
            clip = info.clip_name if info is not None else None
        else:
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(encode_packet_bytes(encode_error(
                    f"unroutable first message kind {message.kind!r}", seq=0
                )))
                await writer.drain()
            await self._hangup(writer)
            return
        await self._route(message.kind, clip, encode_packet_bytes(first),
                          reader, writer)

    async def _answer_health(self, writer) -> None:
        health = self.healthz()
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(encode_packet_bytes(encode_status(
                state=health["state"],
                accepting=health["accepting"],
                active_sessions=health["active_sessions"],
                waiting_sessions=health["waiting_sessions"],
                max_sessions=health["max_sessions"],
                resumable_sessions=health["resumable_sessions"],
                seq=0,
            )))
            await writer.drain()
        await self._hangup(writer)

    def _candidates(self, clip: Optional[str]) -> Iterable[str]:
        """Shard preference order for ``clip`` (ring order when unknown).

        ``clip`` is None for resumes whose token the router cannot
        decode (an opaque token from outside the fleet): any live shard
        will answer those authoritatively.
        """
        if clip is not None:
            return self.ring.preference(clip)
        return self.ring.shards

    async def _route(self, kind, clip, raw, reader, writer) -> None:
        owner: Optional[str] = None
        with trace("fleet.route", tags={"kind": kind, "clip": clip}):
            for shard_id in self._candidates(clip):
                if owner is None:
                    owner = shard_id
                link = self._links[shard_id]
                if not link.alive:
                    continue
                if kind == "hello" and not link.accepting():
                    continue
                try:
                    shard_reader, shard_writer = await asyncio.wait_for(
                        asyncio.open_connection(link.host, link.port),
                        timeout=self.probe_timeout_s,
                    )
                except (OSError, asyncio.TimeoutError):
                    # Faster than waiting for the health loop: a shard
                    # refusing connections is dead right now.
                    self._mark_dead(link, reason="connect")
                    self._alive_gauge.set(
                        sum(1 for l in self._links.values() if l.alive)
                    )
                    continue
                if shard_id != owner:
                    if kind == "resume":
                        self._failover_counter.inc()
                        record_event("fleet_failover", shard=shard_id,
                                     owner=owner, clip=clip)
                    else:
                        self._spillover_counter.inc()
                        record_event("fleet_spillover", shard=shard_id,
                                     owner=owner, clip=clip)
                self._routed_counters[shard_id].inc()
                await self._relay(link, raw, reader, writer,
                                  shard_reader, shard_writer)
                return
        # No routable shard: shed retriably, exactly like a saturated
        # single server — clients back off and try again.
        self._unroutable_counter.inc()
        record_event("fleet_unroutable", request=kind, clip=clip)
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(encode_packet_bytes(encode_busy(
                retry_after_s=self.busy_retry_after_s,
                active_sessions=sum(
                    l.inflight for l in self._links.values()
                ),
                seq=0,
            )))
            await writer.drain()
        await self._hangup(writer)

    async def _relay(self, link, raw, client_reader, client_writer,
                     shard_reader, shard_writer) -> None:
        """Forward ``raw`` then pump bytes both ways until either side ends."""
        link.inflight += 1
        self._inflight_gauges[link.shard_id].inc()
        try:
            shard_writer.write(raw)
            await shard_writer.drain()
            upstream = asyncio.ensure_future(
                self._pump(client_reader, shard_writer)
            )
            downstream = asyncio.ensure_future(
                self._pump(shard_reader, client_writer)
            )
            try:
                done, pending = await asyncio.wait(
                    {upstream, downstream},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            finally:
                for task in (upstream, downstream):
                    task.cancel()
        except (ConnectionError, OSError):
            pass
        finally:
            link.inflight -= 1
            self._inflight_gauges[link.shard_id].dec()
            await self._hangup(shard_writer)
            await self._hangup(client_writer)

    @staticmethod
    async def _pump(src_reader, dst_writer) -> None:
        try:
            while True:
                data = await src_reader.read(_RELAY_CHUNK)
                if not data:
                    break
                dst_writer.write(data)
                await dst_writer.drain()
        except (ConnectionError, OSError):
            pass

    @staticmethod
    async def _hangup(writer) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            writer.close()
            await writer.wait_closed()
