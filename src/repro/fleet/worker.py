"""Fleet worker: one :class:`AnnotationStreamServer` in a child process.

A shard is an ordinary wire server over its own copy of the catalog.
Because the catalog is a deterministic function of the clips — and the
clips themselves are deterministic (synthetic generators, archives) —
every shard built from the same :class:`WorkerSpec` serves byte-
identical streams, which is what makes failover trivial: there is no
shard-local state worth replicating.

The spec crosses the process boundary by pickling, so the catalog
travels as a zero-argument *factory* (a module-level function or
``functools.partial``), not as live clip objects: the child calls it
once to build its :class:`~repro.streaming.server.MediaServer`.  The
worker forces ``portable_tokens=True`` regardless of the spec's config —
portable resume tokens are the fleet's failover mechanism
(:mod:`repro.net.messages`), so a shard must never issue a token only it
can honor.

Lifecycle runs over a :class:`multiprocessing.Pipe`: the child reports
``("ready", bound_port)`` once listening (``port=0`` in the spec means
each shard picks its own free port — the parent learns the real one
here), then blocks until the parent sends ``"stop"`` (graceful: drain,
then close) or dies (pipe EOF, same path).  Chaos tests and real crashes
skip the protocol entirely: the coordinator SIGKILLs the process and the
router's health loop notices.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..net.config import ServeConfig
from ..net.server import AnnotationStreamServer
from ..streaming.server import MediaServer

__all__ = ["WorkerSpec"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard process needs, in picklable form.

    Parameters
    ----------
    shard_id:
        Stable name of this shard (the id placed on the router's hash
        ring and stamped on its telemetry labels).
    catalog_factory:
        Zero-argument picklable callable returning the shard's
        :class:`~repro.streaming.server.MediaServer`.  Called once,
        inside the child process.  Every shard of a fleet must be given
        a factory producing the *same* deterministic catalog — that
        equivalence is what failover relies on.
    host:
        Interface the shard binds.
    port:
        Requested port; 0 (default) lets the shard pick a free one and
        report it back through the lifecycle pipe.
    config:
        The shard's :class:`~repro.net.config.ServeConfig`.  ``None``
        uses the defaults.  ``portable_tokens`` is forced on either way.
    """

    shard_id: str
    catalog_factory: Callable[[], MediaServer]
    host: str = "127.0.0.1"
    port: int = 0
    config: Optional[ServeConfig] = field(default=None)

    def effective_config(self) -> ServeConfig:
        """The spec's config with ``portable_tokens`` forced on."""
        base = self.config if self.config is not None else ServeConfig()
        return base.replace(portable_tokens=True)


def worker_main(spec: WorkerSpec, conn) -> None:
    """Child-process entry point: serve ``spec`` until told to stop.

    ``conn`` is the child end of a :class:`multiprocessing.Pipe`; the
    protocol is described in the module docstring.  Never raises — a
    failure to build or bind is reported as ``("error", message)`` and
    the process exits.
    """
    try:
        asyncio.run(_serve(spec, conn))
    except Exception as exc:  # noqa: BLE001 - report, don't traceback-spam
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()


async def _serve(spec: WorkerSpec, conn) -> None:
    media = spec.catalog_factory()
    server = AnnotationStreamServer(
        media, host=spec.host, port=spec.port, config=spec.effective_config()
    )
    await server.start()
    conn.send(("ready", server.port))
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                command = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                command = "stop"  # parent died; shut down with it
            if command == "stop":
                break
    finally:
        await server.drain()
        await server.close()
    try:
        conn.send(("stopped", spec.shard_id))
    except (OSError, BrokenPipeError):
        pass
