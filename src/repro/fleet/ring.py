"""Consistent-hash ring: stable clip → shard placement.

The fleet router must send every request for a given clip to the same
shard, because a shard's value is its warmth: the
:class:`~repro.streaming.server.MediaServer` behind it caches profiles
and compensation planes per clip, so the second session for a clip is
far cheaper than the first — but only on the shard that served the
first.  A modulo hash (``hash(clip) % n``) gives that affinity until the
fleet resizes, at which point *every* clip moves and every cache goes
cold at once.

A consistent-hash ring fixes the resize behavior: each shard is hashed
onto a circle at many pseudo-random points (*virtual nodes*), and a key
is owned by the first shard point clockwise from the key's own hash.
Adding or removing one shard of N only moves the ~1/N of keys whose arc
changed hands; everything else keeps its warm shard.  Virtual nodes
(``vnodes`` per shard, default 64) smooth the arc lengths so load
spreads evenly even with a handful of shards.

Hashing uses :func:`hashlib.blake2b` (stable across processes and
Python runs, unlike builtin ``hash`` under ``PYTHONHASHSEED``), so the
router, tests and any external tooling agree on placement.

:meth:`HashRing.preference` yields the owner followed by the distinct
successor shards in ring order — the replica sequence the router walks
on failover and admission spillover.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Tuple

__all__ = ["HashRing"]


def _hash(value: str) -> int:
    """Stable 64-bit position on the ring for ``value``."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto shard ids.

    Parameters
    ----------
    shards:
        Initial shard ids to place on the ring (order-insensitive — the
        ring's layout depends only on the set of ids and ``vnodes``).
    vnodes:
        Virtual nodes per shard; more vnodes → more even key
        distribution at the cost of a larger ring.  Must be >= 1.

    Raises
    ------
    ValueError
        If ``vnodes`` < 1 or a shard id is added twice.
    """

    def __init__(self, shards: Tuple[str, ...] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []        # sorted vnode positions
        self._owners: Dict[int, str] = {}   # position -> shard id
        self._shards: List[str] = []
        for shard in shards:
            self.add(shard)

    @property
    def shards(self) -> Tuple[str, ...]:
        """The shard ids currently on the ring, in insertion order."""
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        """Place ``shard_id`` on the ring (``vnodes`` points)."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for v in range(self.vnodes):
            point = _hash(f"{shard_id}#{v}")
            # blake2b collisions across distinct vnode labels are
            # vanishingly rare; deterministic re-probe keeps the ring
            # well-defined if one ever occurs.
            while point in self._owners:
                point = (point + 1) % (1 << 64)
            self._owners[point] = shard_id
            bisect.insort(self._points, point)

    def remove(self, shard_id: str) -> None:
        """Take ``shard_id`` off the ring; its arcs fall to successors."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        dropped = [p for p, owner in self._owners.items() if owner == shard_id]
        for point in dropped:
            del self._owners[point]
        dropped_set = set(dropped)
        self._points = [p for p in self._points if p not in dropped_set]

    def lookup(self, key: str) -> str:
        """The shard owning ``key``: first vnode clockwise from its hash."""
        if not self._points:
            raise LookupError("ring is empty")
        idx = bisect.bisect_right(self._points, _hash(key))
        if idx == len(self._points):
            idx = 0  # wrap around the top of the ring
        return self._owners[self._points[idx]]

    def preference(self, key: str) -> Iterator[str]:
        """Yield distinct shards in ring order starting at ``key``'s owner.

        The first shard yielded is :meth:`lookup`'s answer; the rest are
        the successive *distinct* shards walking clockwise — the failover
        / spillover order.  Yields each shard exactly once.
        """
        if not self._points:
            return
        idx = bisect.bisect_right(self._points, _hash(key))
        seen = set()
        for step in range(len(self._points)):
            point = self._points[(idx + step) % len(self._points)]
            owner = self._owners[point]
            if owner not in seen:
                seen.add(owner)
                yield owner
