"""Sharded multi-process serving fleet with failover.

One :class:`~repro.net.server.AnnotationStreamServer` is bounded by a
single Python process (the GIL caps its compute concurrency no matter
how many sessions it admits).  ``repro.fleet`` scales past that by
running N of them as worker processes over the same deterministic
catalog, behind a single-address asyncio router:

* :mod:`repro.fleet.ring` — consistent-hash ring: clip → shard with
  stable placement (cache warmth) and ~1/N movement on resize.
* :mod:`repro.fleet.worker` — the shard process: a picklable
  :class:`~repro.fleet.worker.WorkerSpec` plus the child entry point;
  every shard force-issues *portable* resume tokens.
* :mod:`repro.fleet.router` — the L7 front door: routes hellos by clip,
  re-routes resumes on shard death (failover), spills over on
  admission pressure, answers aggregate ``health``/``stats`` probes.
* :mod:`repro.fleet.coordinator` — process lifecycle: spawn workers,
  collect their bound ports, run the router, drain and reap; plus the
  chaos hook :meth:`~repro.fleet.coordinator.FleetCoordinator.kill_shard`.

Failover needs no replication protocol: annotated streams are
deterministic functions of (clip, quality, device), so a portable resume
token (:mod:`repro.net.messages`) is all the state a replica needs to
continue a dead shard's session byte-identically.

Entry points: ``repro serve --shards N`` runs a fleet from the CLI,
``repro fleet status`` prints a running fleet's topology, and
:class:`FleetCoordinator` is the programmatic API.
"""

from .coordinator import FleetCoordinator, FleetError
from .ring import HashRing
from .router import FleetRouter, ShardLink
from .worker import WorkerSpec

__all__ = [
    "FleetCoordinator",
    "FleetError",
    "FleetRouter",
    "HashRing",
    "ShardLink",
    "WorkerSpec",
]
