"""Command-line interface: ``python -m repro <command>``.

Subcommands map to the library's main workflows, all routed through the
:mod:`repro.api` facade:

* ``catalog``   — list the clip library and device registry;
* ``annotate``  — annotate one clip for a device and show (or save) the track;
* ``savings``   — backlight + total-device savings for one clip;
* ``sweep``     — the Figure 9 table (clips x quality levels);
* ``serve``     — host library clips on an asyncio TCP stream server
  (admission control via ``--max-sessions``/``--accept-queue``, session
  resume via ``--resume-window``, graceful drain via ``--drain-timeout``);
  with ``--shards N`` it runs a sharded multi-process fleet instead —
  N worker servers behind one consistent-hash router address — and
  prints every shard's actually-bound port;
* ``fetch``     — pull a stream from a running server and play it;
  both ``serve`` and ``fetch`` accept ``--profile [FILE]`` to dump a
  sorted-by-cumtime profile of the run (yappi when installed, else
  cProfile);
* ``status``    — probe a running server's health/readiness (exit code 0
  when the server is accepting sessions, 1 otherwise);
* ``fleet``     — fleet operations against a running router;
  ``fleet status`` prints the topology (per-shard bound ports,
  liveness, load) from the router's ``stats`` probe;
* ``stats``     — scrape a running server's live metrics snapshot and
  flight-recorder tail over the admission-bypassing ``stats`` probe
  (``--watch`` re-polls on an interval);
* ``calibrate`` — camera characterization of a device (Figures 7/8);
* ``trace``     — Figure 6 sparklines for one clip, or with ``--wire``
  fetch the clip from a running server and print the linked
  client+server distributed trace (``--jsonl`` for machine output);
* ``telemetry`` — run a demo pipeline and dump the metrics registry.

The annotation workflows (``annotate``, ``savings``, ``sweep``) accept
``--stats`` (human table) and ``--stats-json`` (JSON-lines) to print the
process-wide telemetry snapshot after the run, and ``--policy`` to pick
the backlight policy (``clip-quality``, ``hebs``, ``spatial``).
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import sys
import time
from typing import List, Optional

import numpy as np

from .api import (
    AnnotationService,
    FetchOptions,
    ServeConfig,
    StreamingService,
    fetch_stream_sync,
)
from .core import (
    ENGINE_KINDS,
    POLICY_NAMES,
    QUALITY_LEVELS,
    SchemeParameters,
    quality_label,
)
from .display import DEVICE_REGISTRY, get_device
from .video import EXTENDED_CLIP_NAMES, PAPER_CLIP_NAMES, make_clip
from . import telemetry, viz


ALL_CLIP_NAMES = PAPER_CLIP_NAMES + EXTENDED_CLIP_NAMES

#: Rows printed by ``--profile`` (sorted by cumulative time).
_PROFILE_ROWS = 30


class _maybe_profile:
    """Context manager behind ``--profile``: collect and dump a profile.

    ``destination`` is ``None`` (disabled), ``"-"`` (print the table to
    stderr) or a path.  Prefers ``yappi`` when importable — it follows
    the producer threads the wire server compensates on — and falls back
    to :mod:`cProfile`, which only sees the calling thread (for
    ``serve``/``fetch`` that is the asyncio event loop: the send/receive
    path, not the compensation workers).  Either way the dump is a
    sorted-by-cumulative-time :mod:`pstats` table of the top
    ``_PROFILE_ROWS`` functions.
    """

    def __init__(self, destination: Optional[str]):
        self.destination = destination
        self._yappi = None
        self._profile = None

    def __enter__(self):
        if self.destination is None:
            return self
        try:
            import yappi

            self._yappi = yappi
            yappi.set_clock_type("wall")
            yappi.start()
        except ImportError:
            import cProfile

            self._profile = cProfile.Profile()
            self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.destination is None:
            return False
        import pstats

        if self._yappi is not None:
            self._yappi.stop()
            stats = self._yappi.convert2pstats(self._yappi.get_func_stats())
            engine = "yappi (all threads)"
        else:
            self._profile.disable()
            stats = pstats.Stats(self._profile)
            engine = "cProfile (main thread only)"
        if self.destination == "-":
            stream = sys.stderr
            close = False
        else:
            stream = open(self.destination, "w")
            close = True
        try:
            stream.write(f"profile: {engine}, sorted by cumulative time\n")
            stats.stream = stream
            stats.sort_stats("cumulative").print_stats(_PROFILE_ROWS)
        finally:
            if close:
                stream.close()
                print(f"profile written to {self.destination}", file=sys.stderr)
        return False


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="FILE",
        help="dump a sorted-by-cumtime profile after the run "
             "(to FILE, or stderr when the path is omitted; uses yappi "
             "when installed, else cProfile)",
    )


def _add_clip_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("clip", choices=ALL_CLIP_NAMES, help="library clip name")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device", default="ipaq5555", choices=sorted(DEVICE_REGISTRY),
                        help="client device profile")
    parser.add_argument("--quality", type=float, default=0.10,
                        help="clip fraction allowed to saturate (0-1)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="duration scale for the synthetic clip")
    parser.add_argument("--engine", default=None, choices=ENGINE_KINDS,
                        help="execution engine for the profiling pass "
                             "(default: chunked)")
    parser.add_argument("--policy", default=None, choices=POLICY_NAMES,
                        help="backlight policy for annotation "
                             "(default: clip-quality)")


def _add_stats(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="print the telemetry snapshot after the run")
    parser.add_argument("--stats-json", action="store_true",
                        help="print the telemetry snapshot as JSON-lines")


def cmd_catalog(args: argparse.Namespace) -> int:
    """List the clip library and the device registry."""
    print("clips (paper):")
    for name in PAPER_CLIP_NAMES:
        print(f"  {name}")
    print("clips (extended):")
    for name in EXTENDED_CLIP_NAMES:
        print(f"  {name}")
    print("devices:")
    for name in sorted(DEVICE_REGISTRY):
        device = get_device(name)
        print(f"  {name:<16} {device.backlight.kind:>5} backlight, "
              f"{device.panel.panel_type.value} panel")
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    """Annotate one clip for a device; print or save the track."""
    clip = make_clip(args.clip, duration_scale=args.scale)
    service = AnnotationService(
        SchemeParameters(quality=args.quality), engine=args.engine,
        policy=args.policy,
    )
    track = service.annotate_for_device(clip, args.device)
    print(f"{args.clip} on {args.device} at quality {quality_label(args.quality)}: "
          f"{len(track.scenes)} scenes, {track.nbytes} bytes")
    print(f"{'scene':>5} {'frames':>12} {'backlight':>9} {'gain':>7}")
    for k, scene in enumerate(track.scenes):
        print(f"{k:>5} {f'{scene.start}-{scene.end - 1}':>12} "
              f"{scene.backlight_level:>9} {scene.compensation_gain:>7.2f}")
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(track.to_bytes())
        print(f"track written to {args.output}")
    return 0


def cmd_savings(args: argparse.Namespace) -> int:
    """Backlight and total-device savings for one clip."""
    clip = make_clip(args.clip, duration_scale=args.scale)
    device = get_device(args.device)
    service = AnnotationService(
        SchemeParameters(quality=args.quality), engine=args.engine,
        policy=args.policy,
    )
    stream = service.build_stream(clip, device)

    from .player import PlaybackEngine
    result = PlaybackEngine(device).play(stream)
    print(f"{args.clip} on {args.device} at quality {quality_label(args.quality)}:")
    print(f"  backlight savings : {stream.predicted_backlight_savings():.1%}")
    print(f"  total savings     : {result.total_savings:.1%}")
    print(f"  clipped pixels    : {stream.mean_clipped_fraction(sample_every=5):.2%}")
    print(f"  backlight switches: {result.switch_count}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Print the Figure 9 savings table.

    With ``--stats``/``--stats-json`` the sweep also streams each clip's
    most aggressive variant through the batched compensation path, so
    the telemetry snapshot covers the full profile → clip → compensate
    hot path and the table gains a clipped-pixels column.
    """
    device = get_device(args.device)
    clips = list(args.clip_names) + list(args.clips or [])
    for name in clips:
        if name not in ALL_CLIP_NAMES:
            print(f"error: unknown clip {name!r}", file=sys.stderr)
            return 2
    if not clips:
        clips = list(PAPER_CLIP_NAMES)
    with_stats = args.stats or args.stats_json
    header = f"{'clip':<22}" + "".join(f"{quality_label(q):>8}" for q in QUALITY_LEVELS)
    if with_stats:
        header += f"{'clipped':>9}"
    print(header)
    service = AnnotationService(engine=args.engine, policy=args.policy)
    for name in clips:
        clip = make_clip(name, duration_scale=args.scale)
        streams = service.sweep(clip, device, QUALITY_LEVELS)
        row = [s.predicted_backlight_savings() for s in streams]
        line = f"{name:<22}" + "".join(f"{v:>8.1%}" for v in row)
        if with_stats:
            line += f"{_mean_clipped_fraction(streams[-1]):>9.2%}"
        print(line)
    return 0


def _mean_clipped_fraction(stream) -> float:
    """Clipped-pixel fraction via the batched compensation pass."""
    from repro.video.chunks import HeterogeneousFrameError

    try:
        fractions = [chunk.clipped_fractions for chunk in stream.iter_chunks()]
        return float(np.mean(np.concatenate(fractions)))
    except HeterogeneousFrameError:
        return stream.mean_clipped_fraction()


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Exercise the pipeline end to end, then dump the metrics registry."""
    from .core import shared_profile_cache
    from .player import PlaybackEngine

    clip = make_clip(args.clip, duration_scale=args.scale)
    device = get_device(args.device)
    service = AnnotationService(
        SchemeParameters(quality=args.quality),
        engine=args.engine,
        profile_cache=shared_profile_cache(),
        policy=args.policy,
    )
    stream = service.build_stream(clip, device)
    for _chunk in stream.iter_chunks():
        pass
    PlaybackEngine(device).play(stream)
    if args.format == "jsonl":
        sys.stdout.write(telemetry.to_jsonl())
    elif args.format == "prometheus":
        sys.stdout.write(telemetry.to_prometheus())
    else:
        print(telemetry.format_table())
    return 0


def _build_catalog(names: List[str], scale: float, engine, policy):
    """Build the MediaServer behind ``repro serve`` / every fleet shard.

    Module-level (used through :func:`functools.partial`) so the fleet's
    :class:`~repro.fleet.worker.WorkerSpec` can pickle it into worker
    processes.
    """
    service = StreamingService(engine=engine, policy=policy)
    for name in names:
        service.add_clip(make_clip(name, duration_scale=scale))
    return service.server


def _flight_tail_dump(limit: int) -> None:
    """Print the flight-recorder tail after a serve run."""
    tail = telemetry.flight_events(limit=limit) if limit > 0 else []
    if tail:
        print(f"flight recorder (last {len(tail)} events):", flush=True)
        for event in tail:
            print(f"  {_format_flight_event(event)}", flush=True)


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    """The :class:`ServeConfig` shared by single-serve and fleet paths."""
    return ServeConfig(
        queue_depth=args.queue_depth,
        max_sessions=args.max_sessions,
        accept_queue=args.accept_queue,
        resume_window_s=args.resume_window,
        drain_timeout_s=args.drain_timeout,
        ambient=args.ambient,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Host library clips on an asyncio TCP annotation-stream server.

    With ``--shards N`` (N >= 2) this runs the multi-process fleet:
    N worker servers over the same catalog behind one consistent-hash
    router address.
    """
    names = list(args.clip_names) or ["themovie"]
    for name in names:
        if name not in ALL_CLIP_NAMES:
            print(f"error: unknown clip {name!r}", file=sys.stderr)
            return 2
    if args.max_sessions is not None and args.max_sessions < 1:
        print("error: --max-sessions must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    try:
        config = _serve_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.shards > 1:
        return _serve_fleet(args, names, config)
    service = StreamingService(engine=args.engine, policy=args.policy)
    for name in names:
        service.add_clip(make_clip(name, duration_scale=args.scale))

    async def run() -> None:
        srv = service.serve(host=args.host, port=args.port, config=config)
        await srv.start()
        host, port = srv.address
        cap = args.max_sessions if args.max_sessions is not None else "unlimited"
        print(f"serving {len(names)} clip(s) on {host}:{port} "
              f"(queue depth {args.queue_depth}, max sessions {cap})",
              flush=True)
        try:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(srv.serve_forever(), timeout=args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await srv.serve_forever()
        finally:
            completed = await srv.drain(args.drain_timeout)
            print("drained cleanly" if completed
                  else "drain deadline hit; stragglers cancelled", flush=True)
            _flight_tail_dump(args.flight_tail)

    try:
        with _maybe_profile(args.profile):
            asyncio.run(run())
    except KeyboardInterrupt:
        print("server stopped")
    return 0


def _serve_fleet(args: argparse.Namespace, names: List[str],
                 config: ServeConfig) -> int:
    """The ``repro serve --shards N`` path: coordinator + router."""
    from .fleet import FleetCoordinator, FleetError

    factory = functools.partial(
        _build_catalog, names, args.scale, args.engine, args.policy
    )
    coordinator = FleetCoordinator(
        factory,
        shards=args.shards,
        config=config,
        host=args.host,
        port=args.port,
    )

    async def run() -> None:
        host, port = await coordinator.start()
        try:
            print(f"fleet of {args.shards} shard(s) serving {len(names)} "
                  f"clip(s); router on {host}:{port}", flush=True)
            for shard in coordinator.status()["shards"]:
                print(f"  {shard['shard']}: {host}:{shard['port']} "
                      f"(pid {shard['pid']})", flush=True)
            if args.duration is not None:
                try:
                    await asyncio.wait_for(
                        coordinator.router.serve_forever(),
                        timeout=args.duration,
                    )
                except asyncio.TimeoutError:
                    pass
            else:
                await coordinator.router.serve_forever()
        finally:
            await coordinator.stop()
            print("fleet stopped", flush=True)
            _flight_tail_dump(args.flight_tail)

    try:
        with _maybe_profile(args.profile):
            asyncio.run(run())
    except KeyboardInterrupt:
        print("fleet stopped")
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """Print a running fleet's topology from the router's stats probe.

    Exit code 0 when at least one shard is alive and the fleet is
    accepting sessions, 1 otherwise (or when the router is unreachable).
    """
    from .api import server_stats_sync

    try:
        payload = server_stats_sync(args.host, args.port,
                                    timeout_s=args.timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        print(f"error: router unreachable: {exc}", file=sys.stderr)
        return 1
    fleet = payload.get("fleet")
    if fleet is None:
        print("error: server did not report a fleet section "
              "(single-process server?)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(fleet, sort_keys=True))
        health = payload.get("health", {})
        return 0 if health.get("accepting") else 1
    router = fleet.get("router", {})
    health = payload.get("health", {})
    print(f"router    : {router.get('host')}:{router.get('port')}")
    print(f"accepting : {'yes' if health.get('accepting') else 'no'}")
    print(f"active    : {health.get('active_sessions', 0)} session(s)")
    print(f"{'shard':<12} {'address':<22} {'alive':<6} {'state':<9} "
          f"{'inflight':>8} {'active':>7}")
    for shard in fleet.get("shards", []):
        address = f"{shard.get('host')}:{shard.get('port')}"
        active = shard.get("active_sessions")
        print(f"{shard.get('shard', '?'):<12} {address:<22} "
              f"{'yes' if shard.get('alive') else 'no':<6} "
              f"{str(shard.get('state')):<9} "
              f"{shard.get('inflight', 0):>8} "
              f"{'-' if active is None else active:>7}")
    return 0 if health.get("accepting") else 1


def cmd_status(args: argparse.Namespace) -> int:
    """Probe a running server's health/readiness (/healthz over the wire)."""
    from .api import server_status_sync

    try:
        status = server_status_sync(args.host, args.port, timeout_s=args.timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        print(f"error: server unreachable: {exc}", file=sys.stderr)
        return 1
    cap = status.max_sessions if status.max_sessions is not None else "unlimited"
    print(f"state             : {status.state}")
    print(f"accepting         : {'yes' if status.accepting else 'no'}")
    print(f"active sessions   : {status.active_sessions} (cap {cap})")
    print(f"waiting sessions  : {status.waiting_sessions}")
    print(f"resumable sessions: {status.resumable_sessions}")
    return 0 if status.accepting else 1


def _format_flight_event(event: dict) -> str:
    """One flight-recorder event as a single log-style line."""
    fields = {k: v for k, v in event.items() if k not in ("ts", "kind")}
    detail = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
    return f"{event.get('ts', 0.0):.3f} {event.get('kind', '?'):<18} {detail}".rstrip()


def _print_stats_payload(payload: dict, fmt: str) -> None:
    """Render one statsdump payload in the selected format."""
    if fmt == "prometheus":
        sys.stdout.write(payload.get("prometheus", ""))
        return
    if fmt == "json":
        print(json.dumps(payload, sort_keys=True))
        return
    health = payload.get("health", {})
    print("server health:")
    for key in sorted(health):
        print(f"  {key:<18}: {health[key]}")
    metrics = payload.get("metrics")
    if metrics is not None:
        print(telemetry.format_table(telemetry.registry_from_snapshot(metrics)))
    events = payload.get("events")
    if events:
        print(f"flight recorder (last {len(events)} events):")
        for event in events:
            print(f"  {_format_flight_event(event)}")


def cmd_stats(args: argparse.Namespace) -> int:
    """Scrape a running server's live observability snapshot."""
    from .api import server_stats_sync

    wire_format = "prometheus" if args.format == "prometheus" else "json"
    polls = 0
    while True:
        try:
            payload = server_stats_sync(
                args.host, args.port, timeout_s=args.timeout,
                format=wire_format, include_events=args.events,
                include_spans=args.spans, limit=args.limit,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            print(f"error: server unreachable: {exc}", file=sys.stderr)
            return 1
        polls += 1
        if args.watch is not None and polls > 1:
            print()
        _print_stats_payload(payload, args.format)
        if args.watch is None or (args.count is not None and polls >= args.count):
            return 0
        sys.stdout.flush()
        time.sleep(args.watch)


def cmd_fetch(args: argparse.Namespace) -> int:
    """Fetch one stream from a running server and play it back."""
    from .net import StreamFetchError
    from .streaming import MobileClient, NegotiationError

    try:
        options = FetchOptions(
            max_retries=args.retries,
            battery_trace=args.battery_trace,
            ambient_trace=args.ambient_trace,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _maybe_profile(args.profile):
            fetched = fetch_stream_sync(
                args.host, args.port, args.clip, args.quality, args.device,
                options=options,
            )
    except (StreamFetchError, NegotiationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = MobileClient(get_device(args.device)).play_stream(
        fetched.session, fetched.packets
    )
    session = fetched.session
    print(f"{session.clip_name} on {args.device} at quality "
          f"{quality_label(session.quality)} (session #{session.session_id}):")
    print(f"  fetched           : {len(fetched.packets)} packets, "
          f"{fetched.frame_count} frames, {fetched.attempts} attempt(s)")
    for req in fetched.requalities:
        if req.applied:
            what = []
            if req.quality is not None:
                what.append(f"quality {quality_label(req.quality)}")
            if req.ambient is not None:
                what.append(f"ambient {req.ambient}")
            print(f"  requality         : {' + '.join(what)} "
                  f"applied at frame {req.frame}")
        else:
            print(f"  requality         : rejected ({req.error})")
    print(f"  total savings     : {result.total_savings:.1%}")
    print(f"  backlight switches: {result.switch_count}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Camera characterization of a device (Figures 7/8)."""
    from .camera import DigitalCamera, SRGBLikeResponse
    from .display import measure_backlight_transfer, measure_white_transfer, fit_white_gamma

    device = get_device(args.device)
    camera = DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.002, seed=7)
    transfer = measure_backlight_transfer(device, camera)
    print(f"{args.device}: measured backlight transfer (Figure 7)")
    for level in list(range(0, 256, 32)) + [255]:
        lum = float(transfer.luminance(level))
        print(f"  {level:>3} {viz.bar(lum)} {lum:.3f}")
    samples = measure_white_transfer(device, camera)
    print(f"white-transfer gamma (Figure 8 fit): {fit_white_gamma(samples):.3f}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run the full reproduction sweep and print every table."""
    from . import experiments

    print("=== backlight share (Section 4) ===")
    print(experiments.backlight_share().format())
    print("\n=== Figure 7: backlight transfer curves ===")
    print(experiments.figure7().format())
    print("\n=== Figure 9: simulated backlight savings ===")
    fig9 = experiments.figure9(duration_scale=args.scale)
    print(fig9.format())
    print("\n=== Figure 10: measured total-device savings ===")
    print(experiments.figure10(duration_scale=args.scale).format())
    name, value = fig9.best_clip()
    print(f"\nheadline: best clip {name} saves {value:.1%} backlight power at 20%")
    return 0


def _cmd_trace_wire(args: argparse.Namespace) -> int:
    """Fetch a clip over the wire and print the linked distributed trace.

    One fetch yields one trace: the client's ``net.fetch`` tree plus the
    server-side spans scraped back over the ``stats`` probe, merged by
    trace id into a single parent→child tree (or JSON-lines with
    ``--jsonl``).
    """
    from .api import server_stats_sync
    from .net import StreamFetchError
    from .streaming import NegotiationError

    try:
        fetched = fetch_stream_sync(
            args.host, args.port, args.clip, args.quality, args.device,
            options=FetchOptions(max_retries=args.retries),
        )
    except (StreamFetchError, NegotiationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    trace_id = fetched.trace_id
    if trace_id is None:
        print("error: tracing is disabled; enable telemetry to record a "
              "wire trace", file=sys.stderr)
        return 1
    events = list(telemetry.span_events(trace_id=trace_id))
    try:
        payload = server_stats_sync(
            args.host, args.port, timeout_s=5.0, include_spans=True,
        )
    except (OSError, asyncio.TimeoutError) as exc:
        print(f"warning: stats probe failed ({exc}); showing client spans only",
              file=sys.stderr)
        payload = {}
    seen = {event.get("span_id") for event in events}
    for event in payload.get("spans", []):
        if event.get("trace_id") == trace_id and event.get("span_id") not in seen:
            events.append(event)
    if args.jsonl:
        sys.stdout.write(telemetry.spans_to_jsonl(events, trace_id=trace_id))
    else:
        print(f"{args.clip} fetched in {fetched.attempts} attempt(s), "
              f"{len(events)} spans:")
        print(telemetry.format_trace_tree(events, trace_id=trace_id))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print the Figure 6 series as sparklines (or, with ``--wire``,
    fetch the clip from a server and print the distributed trace)."""
    if args.wire:
        return _cmd_trace_wire(args)
    clip = make_clip(args.clip, duration_scale=args.scale)
    device = get_device(args.device)
    service = AnnotationService(
        SchemeParameters(quality=args.quality), engine=args.engine,
        policy=args.policy,
    )
    profile = service.profile(clip)
    stream = service.build_stream(clip, device)
    print(f"{args.clip} at quality {quality_label(args.quality)} (Figure 6 series):")
    print(viz.series_table({
        "frame max lum": profile.max_luminance_series(),
        "scene max lum": profile.scene_max_series(),
        "power saved": stream.instantaneous_savings(),
    }))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Annotation-driven backlight power optimization (DATE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list clips and devices").set_defaults(fn=cmd_catalog)

    p = sub.add_parser("annotate", help="annotate a clip for a device")
    _add_clip_arg(p)
    _add_common(p)
    _add_stats(p)
    p.add_argument("-o", "--output", help="write the binary track to a file")
    p.set_defaults(fn=cmd_annotate)

    p = sub.add_parser("savings", help="power savings for one clip")
    _add_clip_arg(p)
    _add_common(p)
    _add_stats(p)
    p.set_defaults(fn=cmd_savings)

    p = sub.add_parser("sweep", help="Figure 9 table across clips and qualities")
    # no choices= here: argparse rejects the empty default of a positional
    # nargs="*" against a choices list, so cmd_sweep validates names itself
    p.add_argument("clip_names", nargs="*", metavar="clip",
                   help="clips to sweep (default: the paper's ten)")
    _add_common(p)
    _add_stats(p)
    p.add_argument("--clips", nargs="*", choices=ALL_CLIP_NAMES,
                   help="subset of clips (default: the paper's ten)")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("serve", help="host clips on an asyncio TCP stream server")
    p.add_argument("clip_names", nargs="*", metavar="clip",
                   help="clips to serve (default: themovie)")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8765,
                   help="bind port (0 picks a free port)")
    p.add_argument("--queue-depth", type=int, default=32,
                   help="per-session send-queue bound, in records")
    p.add_argument("--max-sessions", type=int, default=None,
                   help="admission-control cap on concurrent sessions "
                        "(default: unlimited)")
    p.add_argument("--accept-queue", type=int, default=8,
                   help="over-cap connections that may wait for a slot "
                        "before being shed with BUSY")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="graceful-drain deadline on shutdown, in seconds")
    p.add_argument("--resume-window", type=float, default=60.0,
                   help="seconds a dropped session stays resumable "
                        "(0 disables resume tokens)")
    p.add_argument("--ambient", default=None, metavar="SPEC",
                   help="serve-time ambient: a preset name (office), an "
                        "illuminance in lux, or a light-sensor trace "
                        "('0:dark-room,30:office'); scenes are bound "
                        "under the trace condition at their start time")
    p.add_argument("--shards", type=int, default=1,
                   help="run N worker server processes behind a "
                        "consistent-hash router (default: 1, no fleet)")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then exit (default: forever)")
    p.add_argument("--flight-tail", type=int, default=16,
                   help="flight-recorder events to dump after drain "
                        "(0 disables the dump)")
    p.add_argument("--scale", type=float, default=0.5,
                   help="duration scale for the synthetic clips")
    p.add_argument("--engine", default=None, choices=ENGINE_KINDS,
                   help="execution engine for the profiling pass")
    p.add_argument("--policy", default=None, choices=POLICY_NAMES,
                   help="backlight policy for annotation "
                        "(default: clip-quality)")
    _add_profile_arg(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("status", help="probe a running server's health/readiness")
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, default=8765, help="server port")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="probe connect/read timeout, in seconds")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("fleet", help="operate on a running serving fleet")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    fp = fleet_sub.add_parser("status",
                              help="print the fleet topology from the router")
    fp.add_argument("--host", default="127.0.0.1", help="router address")
    fp.add_argument("--port", type=int, default=8765, help="router port")
    fp.add_argument("--timeout", type=float, default=5.0,
                    help="probe connect/read timeout, in seconds")
    fp.add_argument("--json", action="store_true",
                    help="emit the fleet section as JSON instead of a table")
    fp.set_defaults(fn=cmd_fleet_status)

    p = sub.add_parser("stats", help="scrape a running server's live metrics")
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, default=8765, help="server port")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="probe connect/read timeout, in seconds")
    p.add_argument("--format", default="table",
                   choices=("table", "json", "prometheus"),
                   help="snapshot rendering (default: table)")
    p.add_argument("--events", action="store_true",
                   help="include the server's flight-recorder tail")
    p.add_argument("--spans", action="store_true",
                   help="include the server's collected trace spans")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the events/spans returned per probe")
    p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="re-poll every SECONDS instead of probing once")
    p.add_argument("--count", type=int, default=None,
                   help="with --watch, stop after N polls (default: forever)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("fetch", help="fetch a stream from a server and play it")
    p.add_argument("clip", help="clip name to request")
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, default=8765, help="server port")
    p.add_argument("--device", default="ipaq5555", choices=sorted(DEVICE_REGISTRY),
                   help="client device profile")
    p.add_argument("--quality", type=float, default=0.10,
                   help="requested quality level (0-1)")
    p.add_argument("--retries", type=int, default=4,
                   help="fetch retries after transient failures")
    p.add_argument("--battery-trace", default=None, metavar="SPEC",
                   help="battery load trace ('t:watts,...' or bare "
                        "wattage); enables the battery-aware client, "
                        "which steps down the quality ladder mid-stream "
                        "as the modeled state of charge drops")
    p.add_argument("--ambient-trace", default=None, metavar="SPEC",
                   help="simulated light-sensor trace "
                        "('0:dark-room,30:office' or a bare ambient); "
                        "the client requests an ambient re-bind when "
                        "the condition changes during playback")
    _add_profile_arg(p)
    p.set_defaults(fn=cmd_fetch)

    p = sub.add_parser("telemetry", help="demo run + metrics registry dump")
    p.add_argument("clip", nargs="?", default="themovie", choices=ALL_CLIP_NAMES,
                   help="library clip name (default: themovie)")
    _add_common(p)
    p.set_defaults(scale=0.15)
    p.add_argument("--format", default="table",
                   choices=("table", "jsonl", "prometheus"),
                   help="registry dump format")
    p.set_defaults(fn=cmd_telemetry)

    p = sub.add_parser("calibrate", help="camera characterization of a device")
    p.add_argument("--device", default="ipaq5555", choices=sorted(DEVICE_REGISTRY))
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("trace",
                       help="Figure 6 sparklines, or --wire distributed trace")
    _add_clip_arg(p)
    _add_common(p)
    p.add_argument("--wire", action="store_true",
                   help="fetch the clip from a running server and print the "
                        "linked client+server trace instead of sparklines")
    p.add_argument("--host", default="127.0.0.1",
                   help="server address (with --wire)")
    p.add_argument("--port", type=int, default=8765,
                   help="server port (with --wire)")
    p.add_argument("--retries", type=int, default=4,
                   help="fetch retries after transient failures (with --wire)")
    p.add_argument("--jsonl", action="store_true",
                   help="emit the trace as JSON-lines instead of a tree "
                        "(with --wire)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("report", help="run the full reproduction sweep")
    p.add_argument("--scale", type=float, default=0.15,
                   help="duration scale for the synthetic clips")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if not 0.0 <= getattr(args, "quality", 0.0) <= 1.0:
        print("error: --quality must be in [0, 1]", file=sys.stderr)
        return 2
    if getattr(args, "scale", 1.0) <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    rc = args.fn(args)
    if rc == 0 and getattr(args, "stats", False):
        print()
        print(telemetry.format_table())
    if rc == 0 and getattr(args, "stats_json", False):
        sys.stdout.write(telemetry.to_jsonl())
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
