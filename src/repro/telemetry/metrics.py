"""Metric primitives and the process-wide registry.

Three primitives cover the stack's needs:

* :class:`Counter` — monotonically increasing event count (cache hits,
  sessions opened, frames streamed).  ``inc`` is a plain attribute add,
  so instrumenting a hot loop costs nanoseconds.
* :class:`Gauge` — a value that goes up and down (cache bytes retained,
  last observed frames/sec).
* :class:`Histogram` — fixed-bucket distribution with numpy-backed
  bucket counts (span durations, per-chunk kernel times).  Buckets are
  cumulative-``le`` compatible with the Prometheus exposition format.

Metrics are identified by a *name* plus a frozen set of *labels*; the
:class:`MetricsRegistry` hands out one instance per ``(name, labels)``
pair, so any number of instrumentation sites share the same series.
Per-instance series (e.g. one cache object's hit counter) use a unique
label value and register themselves into the same registry.

The whole layer is default-on and disabled globally by
:func:`disable` — every record path checks one module-level flag and
returns immediately when it is off.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Process-wide on/off switch; flip through :func:`enable`/:func:`disable`.
_ENABLED = True

#: Default histogram buckets for durations in seconds: a 1-2.5-5 decade
#: ladder from 10 microseconds to 50 seconds (21 finite buckets).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-5, 2) for m in (1.0, 2.5, 5.0)
)


def enable() -> None:
    """Turn telemetry recording on (the default state)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn all telemetry recording off.

    Counters, gauges, histograms and spans stop mutating; existing values
    freeze (including cache hit/miss statistics that read through to
    counters).  Re-enable with :func:`enable`.
    """
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry recording is currently on."""
    return _ENABLED


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named series with frozen labels.

    Parameters
    ----------
    name:
        Prometheus-style metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``).
    help:
        One-line human description, emitted as the ``# HELP`` comment.
    labels:
        Optional mapping of label name to value, frozen at creation.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = _freeze_labels(labels)

    @property
    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """Registry identity: ``(name, frozen labels)``."""
        return (self.name, self.labels)

    def labels_dict(self) -> Dict[str, str]:
        """The labels as a plain dict (copy)."""
        return dict(self.labels)

    def _label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f"{k}={v!r}" for k, v in self.labels)
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}{self._label_suffix()})"


class Counter(Metric):
    """Monotonically increasing event counter.

    ``inc`` is deliberately a plain attribute add (no lock): under
    CPython's GIL increments from one thread are exact, and the
    instrumented hot paths (cache lookups, per-frame adds) cannot afford
    synchronization.  Cross-thread increments are best-effort.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help=help, labels=labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative, got {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def _restore(self, value: int) -> None:
        """Set the raw value (exporter parse-back only)."""
        self._value = value

    def __repr__(self) -> str:
        return f"Counter({self.name}{self._label_suffix()}={self._value})"


class Gauge(Metric):
    """A value that can go up and down (bytes retained, frames/sec)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help=help, labels=labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if not _ENABLED:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        if not _ENABLED:
            return
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def _restore(self, value: float) -> None:
        """Set the raw value (exporter parse-back only)."""
        self._value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}{self._label_suffix()}={self._value:g})"


class Histogram(Metric):
    """Fixed-bucket distribution with numpy-backed counts.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds; an implicit ``+Inf``
        overflow bucket is appended.  Defaults to
        :data:`DEFAULT_TIME_BUCKETS` (seconds).

    Observations also track count, sum, min and max, so exporters can
    report means and extremes without keeping raw samples.  ``observe``
    takes a short lock (it is called per *chunk*, not per pixel);
    ``observe_many`` amortizes it over a whole batch.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help=help, labels=labels)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_TIME_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if not all(np.isfinite(bounds)):
            raise ValueError("bucket bounds must be finite (the +Inf bucket is implicit)")
        self.bounds = bounds
        self._bounds_list = list(bounds)
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._min = np.inf
        self._max = -np.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not _ENABLED:
            return
        value = float(value)
        idx = bisect.bisect_left(self._bounds_list, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (vectorized)."""
        if not _ENABLED:
            return
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=np.float64).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.bounds, arr, side="left")
        batch = np.bincount(idx, minlength=self._counts.size)
        with self._lock:
            self._counts += batch
            self._sum += float(arr.sum())
            self._count += arr.size
            self._min = min(self._min, float(arr.min()))
            self._max = max(self._max, float(arr.max()))

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def bucket_counts(self) -> np.ndarray:
        """Per-bucket counts including the ``+Inf`` overflow (copy)."""
        return self._counts.copy()

    def cumulative_counts(self) -> np.ndarray:
        """Prometheus-style cumulative ``le`` counts (copy)."""
        return np.cumsum(self._counts)

    def _restore(self, counts, total, minimum, maximum) -> None:
        """Set the raw state (exporter parse-back only)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != self._counts.shape:
            raise ValueError("restored bucket counts do not match bucket layout")
        self._counts = counts
        self._count = int(counts.sum())
        self._sum = float(total)
        self._min = float(minimum)
        self._max = float(maximum)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{self._label_suffix()}, "
            f"count={self._count}, mean={self.mean:g})"
        )


class MetricsRegistry:
    """Process-wide catalog of metrics, keyed by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a key creates the metric, later calls return the same object (a
    kind mismatch raises ``TypeError``).  Creation takes a lock; the
    returned metric objects are then used lock-free, so instrumented
    call sites should cache them rather than re-looking them up in hot
    loops.
    """

    def __init__(self):
        self._metrics: "OrderedDict[Tuple, Metric]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labels, **kwargs) -> Metric:
        key = (name, _freeze_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``.

        ``buckets`` applies on first creation only; later calls return
        the existing histogram with its original bucket layout.
        """
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def register(self, metric: Metric) -> Metric:
        """Attach an externally created metric (per-instance series).

        Registering a key that already exists returns the *existing*
        metric unchanged when kinds agree (so idempotent re-registration
        is safe) and raises ``TypeError`` otherwise.
        """
        with self._lock:
            existing = self._metrics.get(metric.key)
            if existing is not None:
                if existing.kind != metric.kind:
                    raise TypeError(
                        f"metric {metric.name!r} already registered as {existing.kind}"
                    )
                return existing
            self._metrics[metric.key] = metric
            return metric

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Optional[Metric]:
        """Look up a metric, or ``None`` when absent."""
        with self._lock:
            return self._metrics.get((name, _freeze_labels(labels)))

    def metrics(self) -> List[Metric]:
        """Every registered metric, in registration order (copy)."""
        with self._lock:
            return list(self._metrics.values())

    def series(self, name: str) -> List[Metric]:
        """All label-variants of one metric name, in registration order."""
        with self._lock:
            return [m for m in self._metrics.values() if m.name == name]

    def reset(self) -> None:
        """Drop every registered metric (used for test isolation)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


_GLOBAL_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation records to."""
    return _GLOBAL_REGISTRY


def reset_registry() -> None:
    """Clear the process-wide registry (test isolation helper).

    Metric objects already held by live instrumented objects (e.g. a
    cache's private counters) keep working; they are simply no longer
    listed until re-registered.
    """
    _GLOBAL_REGISTRY.reset()
