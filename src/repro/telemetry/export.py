"""Exporters: JSON-lines snapshots and Prometheus text exposition.

Two machine formats plus a human table:

* :func:`to_jsonl` / :func:`from_jsonl` — one self-describing JSON
  object per metric per line.  ``from_jsonl`` reconstructs a registry
  from the text, so snapshots round-trip losslessly (the property the
  exporter tests hold).
* :func:`to_prometheus` / :func:`parse_prometheus` — the Prometheus
  text exposition format (``# HELP``/``# TYPE`` comments, cumulative
  ``le`` histogram buckets, ``_sum``/``_count`` series).  The parser
  exists for grammar validation and round-trip tests, not scraping.
* :func:`format_table` — the ``--stats`` rendering: spans first, then
  counters, gauges and histograms.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    registry as _global_registry,
)
from .tracing import SPAN_SECONDS


def _reg(reg: Optional[MetricsRegistry]) -> MetricsRegistry:
    return reg if reg is not None else _global_registry()


# ---------------------------------------------------------------------------
# Dict / JSON-lines snapshot
# ---------------------------------------------------------------------------
def metric_to_dict(metric: Metric) -> Dict:
    """One metric as a plain self-describing dict."""
    base = {
        "name": metric.name,
        "kind": metric.kind,
        "labels": metric.labels_dict(),
        "help": metric.help,
    }
    if isinstance(metric, (Counter, Gauge)):
        base["value"] = metric.value
    elif isinstance(metric, Histogram):
        base.update(
            buckets=list(metric.bounds),
            counts=[int(c) for c in metric.bucket_counts()],
            sum=metric.sum,
            count=metric.count,
            min=None if math.isinf(metric.min) else metric.min,
            max=None if math.isinf(metric.max) else metric.max,
        )
    return base


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict:
    """The whole registry as one JSON-serializable dict."""
    return {"metrics": [metric_to_dict(m) for m in _reg(registry).metrics()]}


def to_jsonl(registry: Optional[MetricsRegistry] = None) -> str:
    """Serialize the registry as JSON-lines (one metric per line)."""
    lines = [json.dumps(metric_to_dict(m), sort_keys=True)
             for m in _reg(registry).metrics()]
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_jsonl` output.

    The inverse of :func:`to_jsonl` up to metric ordering by kind of
    restoration: counters/gauges restore their value, histograms restore
    bucket counts, sum and extremes.
    """
    reg = MetricsRegistry()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        _restore_metric(reg, json.loads(line))
    return reg


def _restore_metric(reg: MetricsRegistry, record: Dict) -> None:
    """Materialize one :func:`metric_to_dict` record into ``reg``."""
    kind = record["kind"]
    name, labels, help_ = record["name"], record["labels"], record.get("help", "")
    if kind == "counter":
        reg.counter(name, help=help_, labels=labels)._restore(record["value"])
    elif kind == "gauge":
        reg.gauge(name, help=help_, labels=labels)._restore(record["value"])
    elif kind == "histogram":
        hist = reg.histogram(name, help=help_, labels=labels,
                             buckets=record["buckets"])
        minimum = record["min"] if record["min"] is not None else math.inf
        maximum = record["max"] if record["max"] is not None else -math.inf
        hist._restore(record["counts"], record["sum"], minimum, maximum)
    else:
        raise ValueError(f"unknown metric kind {kind!r} in snapshot")


def registry_from_snapshot(data: Dict) -> MetricsRegistry:
    """Rebuild a registry from a :func:`snapshot` dict.

    The inverse of :func:`snapshot`: every metric record under
    ``data["metrics"]`` is materialized with its value/bucket state, so
    a snapshot fetched over the wire (the ``stats`` probe) can be
    rendered with :func:`format_table` or :func:`to_prometheus` exactly
    as if it were local.

    Parameters
    ----------
    data:
        A dict of the :func:`snapshot` shape (``{"metrics": [...]}``).
    """
    reg = MetricsRegistry()
    for record in data.get("metrics", []):
        _restore_metric(reg, record)
    return reg


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_str(labels: Tuple[Tuple[str, str], ...], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels) + ([extra] if extra is not None else [])
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Serialize the registry in the Prometheus text exposition format.

    Label-variants of one metric name share a single ``# HELP``/``# TYPE``
    header; histograms emit cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``.
    """
    out: List[str] = []
    seen_headers = set()
    for metric in _reg(registry).metrics():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                out.append(f"# HELP {metric.name} {metric.help}")
            out.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            out.append(
                f"{metric.name}{_label_str(metric.labels)} {_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative[:-1]):
                le = _label_str(metric.labels, extra=("le", _format_value(bound)))
                out.append(f"{metric.name}_bucket{le} {int(count)}")
            le = _label_str(metric.labels, extra=("le", "+Inf"))
            out.append(f"{metric.name}_bucket{le} {int(cumulative[-1])}")
            out.append(
                f"{metric.name}_sum{_label_str(metric.labels)} {_format_value(metric.sum)}"
            )
            out.append(
                f"{metric.name}_count{_label_str(metric.labels)} {metric.count}"
            )
    return "\n".join(out) + ("\n" if out else "")


#: One Prometheus sample line: name, optional label block, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')
_LABELS_BLOCK_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*$'
)


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, labels): value}`` samples.

    Validates every non-comment line against the exposition grammar
    (raising ``ValueError`` on malformed lines), which is what the
    exporter round-trip tests lean on.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            if _LABELS_BLOCK_RE.match(raw) is None:
                raise ValueError(f"malformed label block: {raw!r}")
            for lm in _LABEL_RE.finditer(raw):
                value = lm.group("value").replace(r"\n", "\n")
                value = value.replace(r"\"", '"').replace(r"\\", "\\")
                labels.append((lm.group("key"), value))
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples[(match.group("name"), tuple(labels))] = value
    return samples


# ---------------------------------------------------------------------------
# Human-readable table
# ---------------------------------------------------------------------------
def format_table(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry as the ``--stats`` table.

    Spans lead (count, total, mean, max per stage), followed by
    counters, gauges and any other histograms.
    """
    reg = _reg(registry)
    metrics = reg.metrics()
    if not metrics:
        return "telemetry: no metrics recorded"

    spans = [m for m in metrics if isinstance(m, Histogram) and m.name == SPAN_SECONDS]
    counters = [m for m in metrics if isinstance(m, Counter)]
    gauges = [m for m in metrics if isinstance(m, Gauge)]
    histograms = [
        m for m in metrics if isinstance(m, Histogram) and m.name != SPAN_SECONDS
    ]

    def series_label(metric: Metric) -> str:
        if not metric.labels:
            return metric.name
        inner = ",".join(f"{k}={v}" for k, v in metric.labels)
        return f"{metric.name}{{{inner}}}"

    lines: List[str] = ["telemetry snapshot"]
    if spans:
        lines.append("  spans:")
        lines.append(f"    {'span':<28}{'count':>7}{'total s':>10}{'mean s':>10}{'max s':>10}")
        for span in spans:
            name = dict(span.labels).get("span", "?")
            lines.append(
                f"    {name:<28}{span.count:>7}{span.sum:>10.4f}"
                f"{span.mean:>10.5f}{span.max:>10.5f}"
            )
    hit_series = {
        m.labels_dict().get("cache", ""): m.value
        for m in counters if m.name == "repro_cache_hits_total"
    }
    miss_series = {
        m.labels_dict().get("cache", ""): m.value
        for m in counters if m.name == "repro_cache_misses_total"
    }
    caches = sorted(set(hit_series) | set(miss_series))
    if caches:
        lines.append("  caches:")
        lines.append(f"    {'cache':<28}{'hits':>8}{'misses':>8}{'hit ratio':>11}")
        for cache in caches:
            hits = hit_series.get(cache, 0)
            misses = miss_series.get(cache, 0)
            total = hits + misses
            ratio = f"{hits / total:>10.1%}" if total else f"{'n/a':>10}"
            lines.append(f"    {cache:<28}{hits:>8}{misses:>8} {ratio}")
    if counters:
        lines.append("  counters:")
        for counter in counters:
            lines.append(f"    {series_label(counter):<52}{counter.value:>12}")
    if gauges:
        lines.append("  gauges:")
        for gauge in gauges:
            lines.append(f"    {series_label(gauge):<52}{gauge.value:>12.2f}")
    if histograms:
        lines.append("  histograms:")
        for hist in histograms:
            lines.append(
                f"    {series_label(hist):<52}"
                f"count={hist.count} mean={hist.mean:.5f} max={hist.max:.5f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trace tree rendering
# ---------------------------------------------------------------------------
def format_trace_tree(events: List[Dict], trace_id: Optional[str] = None) -> str:
    """Render span events as an indented parent→child tree.

    Spans whose ``parent_id`` is absent from the event set (the trace
    root, or spans whose parent lives in an unreachable process) become
    top-level rows.  Children sort by wall-clock start, so the tree
    reads in causal order.  Each row shows the span name, duration,
    and any tags; one fetch's client and server spans interleave into
    a single tree when both halves are present.

    Parameters
    ----------
    events:
        Span event dicts (the :func:`~repro.telemetry.tracing.span_events`
        / ``Span.to_dict`` shape).
    trace_id:
        Filter to one trace before rendering, or ``None`` for all.
    """
    if trace_id is not None:
        events = [e for e in events if e.get("trace_id") == trace_id]
    if not events:
        return "trace: no spans recorded"

    by_id = {e["span_id"]: e for e in events if e.get("span_id")}
    children: Dict[Optional[str], List[Dict]] = {}
    for event in events:
        parent = event.get("parent_id")
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(event)
    for bucket in children.values():
        bucket.sort(key=lambda e: (e.get("start_time") or 0.0, e.get("name", "")))

    lines: List[str] = []
    trace_ids = sorted({e.get("trace_id") for e in events if e.get("trace_id")})
    for tid in trace_ids:
        lines.append(f"trace {tid}")

    def walk(event: Dict, depth: int) -> None:
        dur = event.get("duration_s")
        dur_text = f"{dur * 1e3:9.3f} ms" if dur is not None else "     open"
        tags = event.get("tags") or {}
        tag_text = ""
        if tags:
            inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
            tag_text = f"  [{inner}]"
        lines.append(f"  {'  ' * depth}{event.get('name', '?'):<{max(4, 30 - 2 * depth)}}"
                     f"{dur_text}{tag_text}")
        for child in children.get(event.get("span_id"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
