"""Telemetry: metrics registry, span tracing, exporters.

The observability layer for the annotation/streaming stack.  Everything
records into one process-wide :class:`~repro.telemetry.metrics.MetricsRegistry`:

* the annotation pipeline emits stage spans (``pipeline.profile``,
  ``pipeline.scene_grouping``, ``pipeline.clip``, ``pipeline.compensate``);
* the execution engine times every chunk kernel and publishes frames/sec;
* the profile and plane caches expose hit/miss/eviction/byte-size series;
* the streaming stack counts sessions, track requests, proxy windows,
  middleware renegotiations and applied backlight switches.

Snapshots export as JSON-lines (:func:`~repro.telemetry.export.to_jsonl`),
Prometheus text (:func:`~repro.telemetry.export.to_prometheus`) or a human
table (:func:`~repro.telemetry.export.format_table`) — the ``--stats`` CLI
flag and the ``telemetry`` subcommand wire these up.

The layer is on by default and engineered for near-zero overhead
(counters are plain attribute adds; spans pay two ``perf_counter`` calls);
:func:`disable` turns every record path into a single flag check.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    registry,
    reset_registry,
)
from .tracing import (
    SPAN_ERRORS,
    SPAN_SECONDS,
    Span,
    active_span,
    span_stack,
    trace,
)
from .export import (
    format_table,
    from_jsonl,
    metric_to_dict,
    parse_prometheus,
    snapshot,
    to_jsonl,
    to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "enable",
    "disable",
    "enabled",
    "registry",
    "reset_registry",
    "Span",
    "trace",
    "active_span",
    "span_stack",
    "SPAN_SECONDS",
    "SPAN_ERRORS",
    "snapshot",
    "metric_to_dict",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "parse_prometheus",
    "format_table",
]
