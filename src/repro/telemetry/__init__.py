"""Telemetry: metrics registry, span tracing, flight recorder, exporters.

The observability layer for the annotation/streaming stack.  Everything
records into one process-wide :class:`~repro.telemetry.metrics.MetricsRegistry`:

* the annotation pipeline emits stage spans (``pipeline.profile``,
  ``pipeline.scene_grouping``, ``pipeline.clip``, ``pipeline.compensate``);
* the execution engine times every chunk kernel and publishes frames/sec;
* the profile and plane caches expose hit/miss/eviction/byte-size series;
* the streaming stack counts sessions, track requests, proxy windows,
  middleware renegotiations and applied backlight switches.

Three layers stack on the registry:

* **Spans** (:class:`~repro.telemetry.tracing.trace`) time nested stages
  on a :mod:`contextvars` stack, carry ``trace_id``/``parent_id`` links
  across threads, asyncio tasks and the wire, and land in a bounded
  :class:`~repro.telemetry.tracing.SpanCollector` for JSON-lines export.
* The **flight recorder** (:mod:`~repro.telemetry.flight`) keeps a
  bounded ring of structured operational events (session lifecycle,
  breaker trips, codec errors) for post-mortems of live servers.
* **Exporters** render snapshots as JSON-lines
  (:func:`~repro.telemetry.export.to_jsonl`), Prometheus text
  (:func:`~repro.telemetry.export.to_prometheus`) or a human table
  (:func:`~repro.telemetry.export.format_table`) — the ``--stats`` CLI
  flag and the ``telemetry``/``stats`` subcommands wire these up.

The layer is on by default and engineered for near-zero overhead
(counters are plain attribute adds; spans pay two ``perf_counter`` calls);
:func:`disable` turns every record path into a single flag check.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    registry,
    reset_registry,
)
from .tracing import (
    SPAN_ERRORS,
    SPAN_SECONDS,
    Span,
    SpanCollector,
    active_span,
    clear_spans,
    current_span_id,
    current_trace_id,
    emit_span,
    new_span_id,
    new_trace_id,
    span_collector,
    span_events,
    span_stack,
    spans_to_jsonl,
    trace,
    trace_context,
)
from .flight import (
    FlightRecorder,
    clear_flight_events,
    flight_events,
    flight_recorder,
    record_event,
)
from .export import (
    format_table,
    format_trace_tree,
    from_jsonl,
    metric_to_dict,
    parse_prometheus,
    registry_from_snapshot,
    snapshot,
    to_jsonl,
    to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "enable",
    "disable",
    "enabled",
    "registry",
    "reset_registry",
    "Span",
    "SpanCollector",
    "trace",
    "trace_context",
    "emit_span",
    "active_span",
    "span_stack",
    "span_collector",
    "span_events",
    "spans_to_jsonl",
    "clear_spans",
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
    "new_span_id",
    "SPAN_SECONDS",
    "SPAN_ERRORS",
    "FlightRecorder",
    "flight_recorder",
    "record_event",
    "flight_events",
    "clear_flight_events",
    "snapshot",
    "metric_to_dict",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "parse_prometheus",
    "registry_from_snapshot",
    "format_table",
    "format_trace_tree",
]
