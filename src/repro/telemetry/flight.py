"""Flight recorder: a bounded ring of structured operational events.

Metrics aggregate (how many sessions were shed?); the flight recorder
remembers *which* (session ids, clip names, reasons, timestamps).  It
is the post-mortem complement to the metrics registry: a fixed-size
in-memory ring of small dict events — session opens/resumes/sheds,
drain transitions, policy binds, breaker trips, codec errors — cheap
enough to leave on in production and dumpable from a *running* server
over the ``stats`` wire probe or on drain.

Events are plain dicts ``{"ts": <posix>, "kind": <str>, ...fields}``.
Recording is a no-op while telemetry is disabled, mirroring metrics
and spans.  The ring is process-wide (like the metrics registry) and
guarded by a short lock; capacity bounds memory for arbitrarily
long-running servers.
"""

from __future__ import annotations

import threading
from collections import deque
from time import time as wall_time
from typing import Dict, List, Optional

from . import metrics as _metrics

#: Default number of retained events.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of structured events, oldest dropped first.

    Parameters
    ----------
    capacity:
        Maximum retained events (must be >= 1).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: "deque[Dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def capacity(self) -> int:
        """Maximum retained events."""
        return self._events.maxlen

    @property
    def recorded_total(self) -> int:
        """Events recorded over the recorder's lifetime (incl. evicted)."""
        with self._lock:
            return self._recorded

    def record(self, kind: str, **fields) -> Optional[Dict]:
        """Append one event; returns it, or ``None`` if telemetry is off.

        Parameters
        ----------
        kind:
            Short event type tag (``session_open``, ``breaker_open`` ...).
        **fields:
            JSON-serializable context (session ids, clip names, reasons).
        """
        if not _metrics._ENABLED:
            return None
        event = {"ts": wall_time(), "kind": str(kind)}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self._recorded += 1
        return event

    def events(self, kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict]:
        """Retained events, oldest first (copies).

        Parameters
        ----------
        kind:
            Filter to one event type, or ``None`` for all.
        limit:
            Keep only the newest N after filtering, or ``None`` for all.
        """
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        if limit is not None:
            events = events[-limit:] if limit > 0 else []
        return [dict(e) for e in events]

    def clear(self) -> None:
        """Drop every retained event (lifetime counter is kept)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"FlightRecorder({len(self)}/{self.capacity} events)"


_RECORDER = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _RECORDER


def record_event(kind: str, **fields) -> Optional[Dict]:
    """Record one event into the process-wide flight recorder.

    Parameters
    ----------
    kind:
        Short event type tag (``session_open``, ``breaker_open`` ...).
    **fields:
        JSON-serializable context fields.
    """
    return _RECORDER.record(kind, **fields)


def flight_events(kind: Optional[str] = None,
                  limit: Optional[int] = None) -> List[Dict]:
    """Retained events from the process-wide recorder, oldest first.

    Parameters
    ----------
    kind:
        Filter to one event type, or ``None`` for all.
    limit:
        Keep only the newest N after filtering, or ``None`` for all.
    """
    return _RECORDER.events(kind=kind, limit=limit)


def clear_flight_events() -> None:
    """Drop all recorded events (test isolation helper)."""
    _RECORDER.clear()
