"""Span tracing: nested, thread-safe timing of pipeline stages.

A :class:`trace` context manager times one stage with the monotonic
clock (``time.perf_counter``) and records the duration into the
process-wide registry as the ``repro_span_seconds`` histogram, labeled
by span name.  Each thread keeps its own active-span stack, so the
``threads`` execution engine and concurrent servers nest correctly
without locks: a span's parent is whatever span is active *on the same
thread* when it opens.

Span names are dotted stage identifiers (``pipeline.profile``,
``engine.chunk``, ``server.stream``); the hierarchy of one particular
run is captured on the :class:`Span` objects (``parent``, ``path``)
while the registry aggregates by name, keeping label cardinality
bounded no matter how deep traces nest.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import List, Optional

from .metrics import MetricsRegistry, registry
from . import metrics as _metrics

#: Histogram receiving every span duration, labeled ``span=<name>``.
SPAN_SECONDS = "repro_span_seconds"

#: Counter of spans that exited with an exception, labeled ``span=<name>``.
SPAN_ERRORS = "repro_span_errors_total"

_STACKS = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_STACKS, "spans", None)
    if stack is None:
        stack = []
        _STACKS.spans = stack
    return stack


class Span:
    """One timed region: name, hierarchy position, and duration.

    Attributes
    ----------
    name:
        The stage identifier given to :class:`trace`.
    parent:
        The span active on this thread when this one opened (or ``None``).
    path:
        ``/``-joined names from the root span down to this one.
    duration_s:
        Elapsed monotonic seconds; ``None`` until the span closes.
    """

    __slots__ = ("name", "parent", "path", "duration_s", "_started")

    def __init__(self, name: str, parent: Optional["Span"] = None):
        self.name = name
        self.parent = parent
        self.path = name if parent is None else f"{parent.path}/{name}"
        self.duration_s: Optional[float] = None
        self._started = 0.0

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root span)."""
        depth, span = 0, self.parent
        while span is not None:
            depth, span = depth + 1, span.parent
        return depth

    def __repr__(self) -> str:
        dur = f"{self.duration_s:.6f}s" if self.duration_s is not None else "open"
        return f"Span({self.path}, {dur})"


class trace:
    """Context manager timing one stage as a :class:`Span`.

    ``with trace("pipeline.profile") as span:`` opens a span on the
    current thread's stack, times the body with ``perf_counter``, and on
    exit records the duration into ``repro_span_seconds{span=<name>}``.
    When telemetry is disabled the body runs untimed and untracked
    (``span`` is ``None``), so a disabled trace costs one flag check.

    Parameters
    ----------
    name:
        Dotted stage identifier; becomes the ``span`` label value.
    registry:
        Registry to record into (the process-wide one by default).
    """

    __slots__ = ("name", "span", "_registry")

    def __init__(self, name: str, registry: Optional[MetricsRegistry] = None):
        self.name = name
        self.span: Optional[Span] = None
        self._registry = registry

    def __enter__(self) -> Optional[Span]:
        """Open the span; returns ``None`` when telemetry is disabled."""
        if not _metrics._ENABLED:
            return None
        stack = _stack()
        parent = stack[-1] if stack else None
        span = Span(self.name, parent=parent)
        stack.append(span)
        self.span = span
        span._started = perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span, record its duration, and pop the stack."""
        span = self.span
        if span is None:
            return False
        span.duration_s = perf_counter() - span._started
        stack = _stack()
        # Pop back to (and including) this span; spans the body leaked
        # open are discarded so the stack cannot corrupt later traces.
        while stack:
            if stack.pop() is span:
                break
        reg = self._registry if self._registry is not None else registry()
        reg.histogram(
            SPAN_SECONDS, help="Stage span durations in seconds.",
            labels={"span": span.name},
        ).observe(span.duration_s)
        if exc_type is not None:
            reg.counter(
                SPAN_ERRORS, help="Spans that exited with an exception.",
                labels={"span": span.name},
            ).inc()
        self.span = None
        return False


def active_span() -> Optional[Span]:
    """The innermost open span on the current thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def span_stack() -> List[Span]:
    """The current thread's open spans, outermost first (copy)."""
    return list(_stack())
