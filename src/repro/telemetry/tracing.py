"""Span tracing: nested, context-aware timing of pipeline stages.

A :class:`trace` context manager times one stage with the monotonic
clock (``time.perf_counter``) and records the duration into the
process-wide registry as the ``repro_span_seconds`` histogram, labeled
by span name.  The active-span stack lives in a :mod:`contextvars`
context variable, so nesting is correct in every execution model the
stack uses:

* plain synchronous code nests exactly as the old thread-local stack
  did (each thread starts from an empty context);
* concurrent asyncio tasks each get a *copy* of the context at task
  creation, so sessions multiplexed on one event loop can no longer
  interleave their spans;
* a producer thread started through ``contextvars.copy_context().run``
  inherits its parent task's open spans, so server-side production
  nests under the session that spawned it.

Distributed tracing on top of plain timing: every span carries a
``trace_id`` (shared by all spans of one logical operation, carried
across the wire in ``hello``/``resume`` messages), a unique ``span_id``
and a ``parent_id`` link, plus free-form ``tags`` (``session_id``,
``clip`` ...).  :class:`trace_context` plants an ambient trace for root
spans to join — that is how a server session links itself under the
client span that opened it.  Finished spans are appended to a bounded
process-wide :class:`SpanCollector`, exportable as JSON-lines and
served over the ``stats`` wire probe, so one fetch yields one linked
client+server tree.

Span names are dotted stage identifiers (``pipeline.profile``,
``engine.chunk``, ``net.session``); the hierarchy of one particular
run is captured on the :class:`Span` objects (``parent``, ``path``)
while the registry aggregates by name, keeping label cardinality
bounded no matter how deep traces nest.
"""

from __future__ import annotations

import secrets
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter, time as wall_time
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry, registry
from . import metrics as _metrics

#: Histogram receiving every span duration, labeled ``span=<name>``.
SPAN_SECONDS = "repro_span_seconds"

#: Counter of spans that exited with an exception, labeled ``span=<name>``.
SPAN_ERRORS = "repro_span_errors_total"

#: Open spans of the current context, outermost first (immutable tuple —
#: copies across contexts/tasks are therefore always safe).
_STACK: "ContextVar[Tuple[Span, ...]]" = ContextVar("repro_span_stack", default=())

#: Ambient trace joined by root spans (set by :class:`trace_context`).
_AMBIENT: "ContextVar[Optional[Tuple[str, Optional[str]]]]" = ContextVar(
    "repro_trace_context", default=None
)


def new_trace_id() -> str:
    """A fresh 128-bit trace identifier (32 hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span identifier (16 hex chars)."""
    return secrets.token_hex(8)


def current_trace_id() -> Optional[str]:
    """The trace joined by spans opened now, or ``None`` outside a trace.

    Inside an open span this is that span's ``trace_id``; otherwise it
    is the ambient trace planted by :class:`trace_context`, if any.
    """
    stack = _STACK.get()
    if stack:
        return stack[-1].trace_id
    ambient = _AMBIENT.get()
    return ambient[0] if ambient is not None else None


def current_span_id() -> Optional[str]:
    """The innermost open span's ``span_id``, or ``None``."""
    stack = _STACK.get()
    return stack[-1].span_id if stack else None


class Span:
    """One timed region: name, hierarchy position, identity and duration.

    Attributes
    ----------
    name:
        The stage identifier given to :class:`trace`.
    parent:
        The span active in this context when this one opened (or ``None``).
    path:
        ``/``-joined names from the root span down to this one.
    duration_s:
        Elapsed monotonic seconds; ``None`` until the span closes.
    trace_id:
        Identifier shared by every span of one logical operation;
        inherited from the parent span or the ambient
        :class:`trace_context`, freshly generated for a standalone root.
    span_id / parent_id:
        This span's unique id and its parent's (``parent_id`` may name a
        remote span when the trace crossed the wire).
    tags:
        Free-form ``str -> str/num`` annotations (``session_id`` ...);
        ``None`` until the first :meth:`set_tag`.
    start_time:
        Wall-clock POSIX timestamp at open (for cross-process ordering).
    """

    __slots__ = ("name", "parent", "path", "duration_s", "trace_id",
                 "span_id", "parent_id", "tags", "start_time", "_started")

    def __init__(self, name: str, parent: Optional["Span"] = None):
        self.name = name
        self.parent = parent
        self.path = name if parent is None else f"{parent.path}/{name}"
        self.duration_s: Optional[float] = None
        self.span_id = new_span_id()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id: Optional[str] = parent.span_id
        else:
            ambient = _AMBIENT.get()
            if ambient is not None:
                self.trace_id, self.parent_id = ambient
            else:
                self.trace_id = new_trace_id()
                self.parent_id = None
        self.tags: Optional[Dict[str, object]] = None
        self.start_time = 0.0
        self._started = 0.0

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root span)."""
        depth, span = 0, self.parent
        while span is not None:
            depth, span = depth + 1, span.parent
        return depth

    def set_tag(self, key: str, value) -> "Span":
        """Attach one ``key -> value`` annotation; returns self."""
        if self.tags is None:
            self.tags = {}
        self.tags[str(key)] = value
        return self

    def to_dict(self) -> Dict:
        """The span as a flat JSON-serializable event record."""
        record: Dict[str, object] = {
            "name": self.name,
            "path": self.path,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        return record

    def __repr__(self) -> str:
        dur = f"{self.duration_s:.6f}s" if self.duration_s is not None else "open"
        return f"Span({self.path}, {dur})"


class SpanCollector:
    """Bounded ring of finished span events (dicts, oldest dropped first).

    The metrics registry aggregates span durations by name; this
    collector keeps the most recent *individual* spans — identity,
    parentage, tags, timing — so a trace tree can be reassembled after
    the fact (``repro trace --wire``, the ``stats`` probe, e2e tests).
    Appends take a short lock; capacity bounds memory no matter how long
    a server runs.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: "deque[Dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum retained span events."""
        return self._events.maxlen

    def resize(self, capacity: int) -> None:
        """Change capacity, keeping the newest events."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._lock:
            self._events = deque(self._events, maxlen=capacity)

    def record(self, event: Dict) -> None:
        """Append one finished span event."""
        with self._lock:
            self._events.append(event)

    def events(self, trace_id: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict]:
        """Retained events, oldest first (copies).

        ``trace_id`` filters to one trace; ``limit`` keeps only the
        newest N after filtering.
        """
        with self._lock:
            events = list(self._events)
        if trace_id is not None:
            events = [e for e in events if e.get("trace_id") == trace_id]
        if limit is not None:
            events = events[-limit:] if limit > 0 else []
        return [dict(e) for e in events]

    def clear(self) -> None:
        """Drop every retained event."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"SpanCollector({len(self)}/{self.capacity} spans)"


_COLLECTOR = SpanCollector()


def span_collector() -> SpanCollector:
    """The process-wide collector every finished span is appended to."""
    return _COLLECTOR


def span_events(trace_id: Optional[str] = None,
                limit: Optional[int] = None) -> List[Dict]:
    """Finished span events from the process-wide collector.

    ``trace_id`` filters to one trace; ``limit`` keeps the newest N.
    """
    return _COLLECTOR.events(trace_id=trace_id, limit=limit)


def clear_spans() -> None:
    """Drop all collected span events (test isolation helper)."""
    _COLLECTOR.clear()


class trace_context:
    """Plant an ambient trace for root spans opened in the body to join.

    ``with trace_context(trace_id=tid, parent_id=sid):`` makes every
    *root* span opened inside adopt ``tid`` as its trace and ``sid`` as
    its parent — the server-side half of cross-process linking (``tid``
    and ``sid`` arrive in the ``hello``/``resume`` wire message).  A
    ``None`` ``trace_id`` generates a fresh one, so un-traced clients
    still produce linked server-side trees.  Nested open spans are
    unaffected (they inherit from their parent span as always).

    Parameters
    ----------
    trace_id:
        Trace to join (``None`` generates a fresh id).
    parent_id:
        Remote parent span id for root spans, or ``None``.
    """

    __slots__ = ("trace_id", "parent_id", "_token")

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.parent_id = parent_id
        self._token = None

    def __enter__(self) -> "trace_context":
        """Set the ambient trace; returns self (``.trace_id`` resolved)."""
        self._token = _AMBIENT.set((self.trace_id, self.parent_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Restore the previous ambient trace."""
        if self._token is not None:
            _AMBIENT.reset(self._token)
            self._token = None
        return False


class trace:
    """Context manager timing one stage as a :class:`Span`.

    ``with trace("pipeline.profile") as span:`` opens a span on the
    current context's stack, times the body with ``perf_counter``, and
    on exit records the duration into ``repro_span_seconds{span=<name>}``
    and appends the finished span to the process-wide
    :class:`SpanCollector`.  When telemetry is disabled the body runs
    untimed and untracked (``span`` is ``None``), so a disabled trace
    costs one flag check.

    Parameters
    ----------
    name:
        Dotted stage identifier; becomes the ``span`` label value.
    registry:
        Registry to record into (the process-wide one by default).
    tags:
        Optional annotations copied onto the span at open.
    """

    __slots__ = ("name", "span", "_registry", "_tags")

    def __init__(self, name: str, registry: Optional[MetricsRegistry] = None,
                 tags: Optional[Dict[str, object]] = None):
        self.name = name
        self.span: Optional[Span] = None
        self._registry = registry
        self._tags = tags

    def __enter__(self) -> Optional[Span]:
        """Open the span; returns ``None`` when telemetry is disabled."""
        if not _metrics._ENABLED:
            return None
        stack = _STACK.get()
        parent = stack[-1] if stack else None
        span = Span(self.name, parent=parent)
        if self._tags:
            for key, value in self._tags.items():
                span.set_tag(key, value)
        _STACK.set(stack + (span,))
        self.span = span
        span.start_time = wall_time()
        span._started = perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span, record its duration, and pop the stack."""
        span = self.span
        if span is None:
            return False
        span.duration_s = perf_counter() - span._started
        stack = _STACK.get()
        # Truncate back to (and excluding) this span; spans the body
        # leaked open are discarded so the stack cannot corrupt later
        # traces.  A span closed on a foreign context (not on this
        # stack) leaves the stack untouched.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                _STACK.set(stack[:i])
                break
        reg = self._registry if self._registry is not None else registry()
        reg.histogram(
            SPAN_SECONDS, help="Stage span durations in seconds.",
            labels={"span": span.name},
        ).observe(span.duration_s)
        if exc_type is not None:
            span.set_tag("error", True)
            reg.counter(
                SPAN_ERRORS, help="Spans that exited with an exception.",
                labels={"span": span.name},
            ).inc()
        _COLLECTOR.record(span.to_dict())
        self.span = None
        return False


def emit_span(
    name: str,
    duration_s: float,
    tags: Optional[Dict[str, object]] = None,
    registry_: Optional[MetricsRegistry] = None,
    start_time: Optional[float] = None,
) -> Span:
    """Record a pre-timed span without bracketing its body.

    For aggregate stage accounting on hot paths: accumulate
    ``perf_counter`` deltas in a plain float (nanoseconds of overhead
    per record), then emit *one* span per stage per session.  The span
    nests under the currently active span (or ambient
    :class:`trace_context`) exactly as a ``with trace(...)`` would,
    records into ``repro_span_seconds{span=<name>}`` and lands in the
    collector.

    Parameters
    ----------
    name:
        Dotted stage identifier.
    duration_s:
        The pre-measured duration (must be non-negative).
    tags:
        Optional annotations for the emitted span.
    registry_:
        Registry to record into (the process-wide one by default).
    start_time:
        Wall-clock POSIX start; defaults to ``now - duration_s``.

    Returns the emitted :class:`Span` (already closed).
    """
    if duration_s < 0:
        raise ValueError("duration_s must be non-negative")
    stack = _STACK.get()
    parent = stack[-1] if stack else None
    span = Span(name, parent=parent)
    if tags:
        for key, value in tags.items():
            span.set_tag(key, value)
    span.duration_s = float(duration_s)
    span.start_time = (start_time if start_time is not None
                       else wall_time() - duration_s)
    if not _metrics._ENABLED:
        return span
    reg = registry_ if registry_ is not None else registry()
    reg.histogram(
        SPAN_SECONDS, help="Stage span durations in seconds.",
        labels={"span": span.name},
    ).observe(span.duration_s)
    _COLLECTOR.record(span.to_dict())
    return span


def active_span() -> Optional[Span]:
    """The innermost open span of the current context, or ``None``."""
    stack = _STACK.get()
    return stack[-1] if stack else None


def span_stack() -> List[Span]:
    """The current context's open spans, outermost first (copy)."""
    return list(_STACK.get())


def spans_to_jsonl(events: Optional[Iterable[Dict]] = None,
                   trace_id: Optional[str] = None) -> str:
    """Serialize span events as JSON-lines (one span per line).

    ``events`` defaults to the process-wide collector's contents;
    ``trace_id`` filters to one trace.
    """
    import json

    if events is None:
        events = span_events(trace_id=trace_id)
    elif trace_id is not None:
        events = [e for e in events if e.get("trace_id") == trace_id]
    lines = [json.dumps(event, sort_keys=True) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")
