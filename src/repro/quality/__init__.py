"""Quality evaluation: luminance histograms and comparison metrics."""

from .histogram import LuminanceHistogram, NUM_BINS
from .perceptual import (
    PerceptualModel,
    perceptual_playback_report,
)
from .metrics import (
    average_luminance_shift,
    clipped_fraction,
    dynamic_range_change,
    histogram_chi2_distance,
    histogram_emd,
    histogram_l1_distance,
    mse,
    psnr,
)

__all__ = [
    "LuminanceHistogram",
    "NUM_BINS",
    "histogram_l1_distance",
    "histogram_chi2_distance",
    "histogram_emd",
    "average_luminance_shift",
    "dynamic_range_change",
    "mse",
    "psnr",
    "clipped_fraction",
    "PerceptualModel",
    "perceptual_playback_report",
]
