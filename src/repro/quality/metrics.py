"""Image and histogram comparison metrics.

The paper's primary metric is histogram comparison ("which better capture
the overall change without comparing individual pixels", Section 2); PSNR
is implemented as well because the QABS baseline [Cheng et al. 2005]
optimizes it, and clipped-pixel fractions quantify the quality levels.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..video.frame import Frame
from .histogram import LuminanceHistogram, NUM_BINS


def _pmf(hist: LuminanceHistogram) -> np.ndarray:
    return hist.normalized()


def histogram_l1_distance(a: LuminanceHistogram, b: LuminanceHistogram) -> float:
    """Total-variation-style L1 distance between normalized histograms.

    0 for identical distributions, 2 for disjoint ones.
    """
    return float(np.abs(_pmf(a) - _pmf(b)).sum())


def histogram_chi2_distance(a: LuminanceHistogram, b: LuminanceHistogram) -> float:
    """Symmetric chi-squared distance between normalized histograms."""
    pa, pb = _pmf(a), _pmf(b)
    denom = pa + pb
    mask = denom > 0
    return float(0.5 * np.sum((pa[mask] - pb[mask]) ** 2 / denom[mask]))


def histogram_emd(a: LuminanceHistogram, b: LuminanceHistogram) -> float:
    """Earth mover's distance on the 1-D luminance axis, in code units.

    For 1-D distributions the EMD is the L1 distance between CDFs.  This is
    the most faithful "how far did the histogram shift" number: a uniform
    brightness shift of k codes has EMD exactly k.
    """
    ca = np.cumsum(_pmf(a))
    cb = np.cumsum(_pmf(b))
    return float(np.abs(ca - cb).sum())


def average_luminance_shift(a: LuminanceHistogram, b: LuminanceHistogram) -> float:
    """Signed difference of average points (b - a), in code units.

    The Figure 4 comparison boils down to this number: the paper reports
    the reference and compensated snapshots' average brightness (e.g. 190
    vs 170 in the news-clip example).
    """
    return b.average_point - a.average_point


def dynamic_range_change(a: LuminanceHistogram, b: LuminanceHistogram) -> int:
    """Signed change of dynamic-range width (b - a), in code units."""
    return b.dynamic_range_width - a.dynamic_range_width


def _lum_array(image: Union[Frame, np.ndarray]) -> np.ndarray:
    if isinstance(image, Frame):
        return image.luminance
    arr = np.asarray(image, dtype=np.float64)
    if np.issubdtype(np.asarray(image).dtype, np.integer):
        arr = arr / (NUM_BINS - 1)
    return arr


def mse(a: Union[Frame, np.ndarray], b: Union[Frame, np.ndarray]) -> float:
    """Mean squared error between two luminance images (normalized units)."""
    la, lb = _lum_array(a), _lum_array(b)
    if la.shape != lb.shape:
        raise ValueError(f"shape mismatch: {la.shape} vs {lb.shape}")
    return float(np.mean((la - lb) ** 2))


def psnr(a: Union[Frame, np.ndarray], b: Union[Frame, np.ndarray]) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    err = mse(a, b)
    if err == 0:
        return math.inf
    return float(10.0 * math.log10(1.0 / err))


def clipped_fraction(frame: Union[Frame, np.ndarray], gain: float) -> float:
    """Fraction of pixels that saturate when luminance is scaled by ``gain``.

    A pixel clips if ``Y * gain > 1``.  This is the quantity the quality
    levels bound: "The quality determines the maximum percentage of pixels
    that can be clipped" (Section 4.1).
    """
    if gain <= 0:
        raise ValueError(f"gain must be positive, got {gain}")
    lum = _lum_array(frame)
    if lum.size == 0:
        raise ValueError("cannot compute clipped fraction of an empty image")
    return float(np.count_nonzero(lum * gain > 1.0 + 1e-12) / lum.size)
