"""Luminance histograms: the paper's quality-evaluation currency.

Section 4.2: "We estimate the difference between the LCD snapshots by
computing their histograms.  The histogram was chosen as a metric because
it represents both the average luminance and dynamic range for an image."
Figure 3 labels exactly those two properties — the *average point* and the
*dynamic range* — and Figure 5 shows the quality trade-off as clipped
(lost) mass in the high-luminance tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..video.frame import Frame

#: Number of histogram bins — one per 8-bit luminance code.
NUM_BINS = 256


def _as_codes(image: Union[Frame, np.ndarray]) -> np.ndarray:
    """Normalize supported inputs to an integer 0-255 luminance array."""
    if isinstance(image, Frame):
        values = image.luminance
    else:
        values = np.asarray(image)
    if np.issubdtype(values.dtype, np.floating):
        if values.size and (values.min() < -1e-9 or values.max() > 1.0 + 1e-9):
            raise ValueError("float luminance input must be normalized to [0, 1]")
        codes = np.round(np.clip(values, 0.0, 1.0) * (NUM_BINS - 1)).astype(np.int64)
    else:
        codes = values.astype(np.int64)
        if codes.size and (codes.min() < 0 or codes.max() > NUM_BINS - 1):
            raise ValueError("integer luminance input must be in [0, 255]")
    return codes


@dataclass(frozen=True)
class LuminanceHistogram:
    """A 256-bin luminance histogram with the paper's summary statistics.

    Counts are stored as floats so that importance-weighted histograms
    (region-of-interest analysis) share the same machinery; plain pixel
    histograms simply carry integral values.
    """

    counts: np.ndarray

    def __post_init__(self):
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.shape != (NUM_BINS,):
            raise ValueError(f"histogram must have {NUM_BINS} bins, got {counts.shape}")
        if np.any(counts < 0):
            raise ValueError("histogram counts must be non-negative")
        object.__setattr__(self, "counts", counts)

    # ------------------------------------------------------------------
    @classmethod
    def of(
        cls,
        image: Union[Frame, np.ndarray],
        weights: "np.ndarray | None" = None,
    ) -> "LuminanceHistogram":
        """Histogram of a frame, a photo, or a raw luminance array.

        Accepts :class:`Frame` (uses its BT.601 luminance), ``uint8``
        arrays (e.g. camera snapshots) and normalized float arrays.
        ``weights`` (same shape as the image, non-negative) turns the
        result into an importance-weighted histogram: each pixel
        contributes its weight instead of 1.
        """
        codes = _as_codes(image)
        if weights is None:
            counts = np.bincount(codes.ravel(), minlength=NUM_BINS)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != codes.shape:
                raise ValueError(
                    f"weights shape {w.shape} does not match image shape {codes.shape}"
                )
            if np.any(w < 0):
                raise ValueError("importance weights must be non-negative")
            counts = np.bincount(codes.ravel(), weights=w.ravel(), minlength=NUM_BINS)
        return cls(counts)

    @classmethod
    def _trusted(cls, counts: np.ndarray) -> "LuminanceHistogram":
        """Wrap pre-validated float64 counts without re-checking them.

        Internal fast path for the chunked analyzer, which produces
        thousands of histograms per clip from ``np.bincount`` output that
        is non-negative and correctly shaped by construction.  The
        resulting object is indistinguishable from one built normally.
        """
        hist = object.__new__(cls)
        object.__setattr__(hist, "counts", counts)
        return hist

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total pixel count (or importance mass, for weighted histograms)."""
        return float(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts as a probability mass function."""
        total = self.total
        if total == 0:
            raise ValueError("cannot normalize an empty histogram")
        return self.counts / total

    @property
    def average_point(self) -> float:
        """Mean luminance code (Figure 3's 'Average Point'), 0-255."""
        total = self.total
        if total == 0:
            raise ValueError("empty histogram has no average point")
        return float(np.dot(np.arange(NUM_BINS), self.counts) / total)

    def dynamic_range(self, tail: float = 0.0) -> tuple:
        """Occupied luminance span (Figure 3's 'Dynamic Range').

        Parameters
        ----------
        tail:
            Fraction of mass to ignore at *each* end before measuring the
            span, making the measurement robust to isolated outliers.
            0 gives the exact min/max occupied bins.

        Returns
        -------
        (low, high):
            Lowest and highest (surviving) occupied bin indices.
        """
        if not 0.0 <= tail < 0.5:
            raise ValueError(f"tail must be in [0, 0.5), got {tail}")
        total = self.total
        if total == 0:
            raise ValueError("empty histogram has no dynamic range")
        cum = np.cumsum(self.counts)
        lo_mass = tail * total
        hi_mass = (1.0 - tail) * total
        low = int(np.searchsorted(cum, lo_mass, side="right"))
        high = int(np.searchsorted(cum, hi_mass, side="left"))
        return (low, min(high, NUM_BINS - 1))

    @property
    def dynamic_range_width(self) -> int:
        low, high = self.dynamic_range()
        return high - low

    # ------------------------------------------------------------------
    def tail_mass_above(self, code: int) -> float:
        """Fraction of pixels strictly brighter than ``code``."""
        if not 0 <= code <= NUM_BINS - 1:
            raise ValueError(f"code must be in [0, 255], got {code}")
        return float(self.counts[code + 1 :].sum() / self.total)

    def clip_point(self, clip_fraction: float) -> int:
        """Brightest code kept when ``clip_fraction`` of pixels may clip.

        This is the histogram form of the fixed-percent heuristic: find
        the smallest code such that at most ``clip_fraction`` of the mass
        lies above it (Figure 5's 'Clipped (Lost) Luminance Values').
        """
        if not 0.0 <= clip_fraction <= 1.0:
            raise ValueError(f"clip_fraction must be in [0, 1], got {clip_fraction}")
        total = self.total
        if total == 0:
            raise ValueError("empty histogram has no clip point")
        cum = np.cumsum(self.counts)
        keep = (1.0 - clip_fraction) * total
        # Smallest code whose cumulative count reaches the keep threshold.
        # Weighted histograms accumulate float rounding, so clamp against
        # the (theoretically impossible) off-the-end result.
        return min(int(np.searchsorted(cum, keep, side="left")), NUM_BINS - 1)

    def merge(self, other: "LuminanceHistogram") -> "LuminanceHistogram":
        """Histogram of the union of both pixel sets (scene aggregation)."""
        return LuminanceHistogram(self.counts + other.counts)

    def __repr__(self) -> str:
        if self.total == 0:
            return "LuminanceHistogram(empty)"
        low, high = self.dynamic_range()
        return (
            f"LuminanceHistogram(n={self.total}, avg={self.average_point:.1f}, "
            f"range=[{low}, {high}])"
        )
