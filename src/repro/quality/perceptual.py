"""Perceptual visibility metrics (Weber-law contrast thresholds).

Reference [11] (dynamic tone mapping) "takes advantage of how the human
eye perceives brightness": a luminance error is invisible unless it
exceeds a contrast threshold relative to the local adaptation level.
This module provides that lens for evaluating compensated playback — a
stricter question than histogram distance: *which pixels would a viewer
actually notice changed?*

Model: a just-noticeable difference (JND) of ``weber_fraction`` of the
reference luminance, with an absolute floor ``dark_threshold`` below
which the eye cannot discriminate at all (rod-vision floor).  Classic
psychophysics puts the Weber fraction near 1-2 % for bright adapted
vision; the defaults are deliberately conservative (2 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default Weber fraction: luminance errors below 2 % of the reference are
#: invisible to an adapted viewer.
DEFAULT_WEBER_FRACTION = 0.02

#: Absolute discrimination floor in normalized luminance units.
DEFAULT_DARK_THRESHOLD = 0.005


@dataclass(frozen=True)
class PerceptualModel:
    """Threshold model of luminance-difference visibility."""

    weber_fraction: float = DEFAULT_WEBER_FRACTION
    dark_threshold: float = DEFAULT_DARK_THRESHOLD

    def __post_init__(self):
        if self.weber_fraction <= 0:
            raise ValueError("weber_fraction must be positive")
        if self.dark_threshold < 0:
            raise ValueError("dark_threshold must be non-negative")

    # ------------------------------------------------------------------
    def jnd_map(self, reference: np.ndarray) -> np.ndarray:
        """Per-pixel just-noticeable difference for a reference view."""
        ref = np.asarray(reference, dtype=np.float64)
        if np.any(ref < 0):
            raise ValueError("reference luminance must be non-negative")
        return np.maximum(self.weber_fraction * ref, self.dark_threshold)

    def visible_error_map(self, reference: np.ndarray, test: np.ndarray) -> np.ndarray:
        """Boolean map of pixels whose error exceeds one JND."""
        ref = np.asarray(reference, dtype=np.float64)
        t = np.asarray(test, dtype=np.float64)
        if ref.shape != t.shape:
            raise ValueError(f"shape mismatch: {ref.shape} vs {t.shape}")
        return np.abs(ref - t) > self.jnd_map(ref)

    def perceptible_fraction(self, reference: np.ndarray, test: np.ndarray) -> float:
        """Fraction of pixels with a visible luminance change."""
        visible = self.visible_error_map(reference, test)
        if visible.size == 0:
            raise ValueError("cannot evaluate empty images")
        return float(visible.mean())

    def jnd_units(self, reference: np.ndarray, test: np.ndarray) -> np.ndarray:
        """Per-pixel error expressed in JND multiples (0 = identical)."""
        ref = np.asarray(reference, dtype=np.float64)
        t = np.asarray(test, dtype=np.float64)
        if ref.shape != t.shape:
            raise ValueError(f"shape mismatch: {ref.shape} vs {t.shape}")
        return np.abs(ref - t) / self.jnd_map(ref)

    def acceptable(self, reference: np.ndarray, test: np.ndarray,
                   max_visible_fraction: float = 0.05) -> bool:
        """Whether at most ``max_visible_fraction`` of pixels changed
        visibly — a perceptual analogue of the paper's quality levels."""
        if not 0.0 <= max_visible_fraction <= 1.0:
            raise ValueError("max_visible_fraction must be in [0, 1]")
        return self.perceptible_fraction(reference, test) <= max_visible_fraction


def perceptual_playback_report(stream, model: PerceptualModel = PerceptualModel(),
                               sample_every: int = 4) -> dict:
    """Perceptual audit of an annotated stream against full backlight.

    For sampled frames, renders the original at full backlight and the
    compensated frame at the annotated level through the stream's device
    and reports the mean/max fraction of visibly changed pixels.
    """
    from ..display.rendering import render_frame
    from ..display.transfer import MAX_BACKLIGHT_LEVEL

    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    device = stream.device
    levels = stream.backlight_levels()
    fractions = []
    for i in range(0, stream.frame_count, sample_every):
        original = stream.clip.frame(i)
        compensated = stream.compensated_frame(i).frame
        reference = render_frame(original, MAX_BACKLIGHT_LEVEL, device)
        test = render_frame(compensated, int(levels[i]), device)
        fractions.append(model.perceptible_fraction(reference, test))
    return {
        "mean_visible_fraction": float(np.mean(fractions)),
        "max_visible_fraction": float(np.max(fractions)),
        "frames_sampled": len(fractions),
    }
