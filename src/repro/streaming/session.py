"""Session negotiation.

Section 4.3: "client characteristics are sent during the initial
negotiation phase" and "The user specifies the quality level when he
requests the video clip from the server".  A session therefore carries
three things: which clip, which quality variant, and which device profile
the backlight levels should be bound to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.policy import QUALITY_LEVELS
from ..display.devices import DEVICE_REGISTRY


class NegotiationError(ValueError):
    """The server rejected a session request."""


@dataclass(frozen=True)
class ClientCapabilities:
    """What the client tells the server about itself."""

    device_name: str

    def __post_init__(self):
        if self.device_name not in DEVICE_REGISTRY:
            raise NegotiationError(
                f"unknown device {self.device_name!r}; the server has no transfer "
                f"table for it (known: {', '.join(sorted(DEVICE_REGISTRY))})"
            )


@dataclass(frozen=True)
class SessionRequest:
    """A client's request to stream one clip."""

    clip_name: str
    quality: float
    capabilities: ClientCapabilities

    def __post_init__(self):
        if not 0.0 <= self.quality <= 1.0:
            raise NegotiationError(f"quality must be in [0, 1], got {self.quality}")


@dataclass(frozen=True)
class SessionDescription:
    """The server's accepted-session answer.

    ``quality`` may differ from the requested value: the server snaps to
    the nearest of its prepared variants (it "provides a number of
    different video qualities ... 5 in our case").
    """

    session_id: int
    clip_name: str
    quality: float
    device_name: str
    fps: float
    frame_count: int


def snap_quality(requested: float, available: Tuple[float, ...] = QUALITY_LEVELS) -> float:
    """Nearest prepared quality level not exceeding the request.

    Snapping *down* (toward less clipping) keeps the server's promise: it
    never degrades more than the user authorized.
    """
    if not available:
        raise NegotiationError("server has no prepared quality levels")
    not_above = [q for q in available if q <= requested + 1e-12]
    if not not_above:
        return min(available)
    return max(not_above)
