"""Stream packets.

The annotated stream travels as a packet sequence: one annotation packet up
front (annotations are "available even before decoding the data", which is
what enables optimizations ahead of the decode — Section 3), followed by
frame packets in presentation order.  Control packets carry session
negotiation messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..video.frame import Frame

#: Fixed per-packet header overhead charged by the network model (bytes).
PACKET_HEADER_BYTES = 32


class PacketType(enum.Enum):
    """Kind of payload a packet carries."""

    CONTROL = "control"
    ANNOTATION = "annotation"
    FRAME = "frame"


@dataclass(frozen=True)
class MediaPacket:
    """One unit on the wire.

    Exactly one of ``frame`` / ``payload`` is set: frame packets carry the
    pixel array by reference (serialization cost is charged via
    :attr:`size_bytes`, not paid in copies), other packets carry bytes.
    ``wire_bytes`` overrides the body size on the network — set by servers
    that model an encoded bitstream while handing decoded pixels to the
    in-process client.
    """

    seq: int
    ptype: PacketType
    payload: Optional[bytes] = None
    frame: Optional[Frame] = None
    frame_index: Optional[int] = None
    wire_bytes: Optional[int] = None

    def __post_init__(self):
        if self.seq < 0:
            raise ValueError("packet seq must be non-negative")
        if self.ptype is PacketType.FRAME:
            if self.frame is None or self.frame_index is None:
                raise ValueError("frame packets need a frame and a frame_index")
            if self.payload is not None:
                raise ValueError("frame packets must not carry a bytes payload")
        else:
            if self.payload is None:
                raise ValueError(f"{self.ptype.value} packets need a bytes payload")
            if self.frame is not None or self.frame_index is not None:
                raise ValueError(f"{self.ptype.value} packets must not carry a frame")
        if self.wire_bytes is not None and self.wire_bytes < 0:
            raise ValueError("wire_bytes must be non-negative")

    @property
    def size_bytes(self) -> int:
        """On-the-wire size, including the fixed header."""
        if self.wire_bytes is not None:
            body = self.wire_bytes
        elif self.ptype is PacketType.FRAME:
            body = self.frame.pixels.nbytes
        else:
            body = len(self.payload)
        return PACKET_HEADER_BYTES + body


def annotation_packet(seq: int, payload: bytes) -> MediaPacket:
    """Build an annotation packet carrying a serialized track."""
    return MediaPacket(seq=seq, ptype=PacketType.ANNOTATION, payload=payload)


def frame_packet(seq: int, frame: Frame, frame_index: int,
                 wire_bytes: Optional[int] = None) -> MediaPacket:
    """Build a frame packet (optionally with an encoded wire size)."""
    return MediaPacket(seq=seq, ptype=PacketType.FRAME, frame=frame,
                       frame_index=frame_index, wire_bytes=wire_bytes)


def control_packet(seq: int, payload: bytes) -> MediaPacket:
    """Build a control (negotiation) packet."""
    return MediaPacket(seq=seq, ptype=PacketType.CONTROL, payload=payload)
