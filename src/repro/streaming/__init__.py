"""Streaming system: server, proxy, network path, client, sessions."""

from .packets import (
    PACKET_HEADER_BYTES,
    MediaPacket,
    PacketType,
    annotation_packet,
    control_packet,
    frame_packet,
)
from .network import (
    DEFAULT_WIRED,
    DEFAULT_WIRELESS,
    DeliverySchedule,
    Link,
    NetworkPath,
)
from .session import (
    ClientCapabilities,
    NegotiationError,
    SessionDescription,
    SessionRequest,
    snap_quality,
)
from .server import AdaptationControl, MediaServer
from .archive import load_archive, save_archive
from .middleware import (
    AdaptationEvent,
    BatteryAwareMiddleware,
    PowerHint,
    QualityAdvisor,
    SessionPlan,
    publish_power_hints,
)
from .playout import PlayoutBuffer, PlayoutReport, StallEvent
from .proxy import TranscodingProxy
from .client import MobileClient, StreamProtocolError

__all__ = [
    "MediaPacket",
    "PacketType",
    "PACKET_HEADER_BYTES",
    "annotation_packet",
    "frame_packet",
    "control_packet",
    "Link",
    "NetworkPath",
    "DeliverySchedule",
    "DEFAULT_WIRED",
    "DEFAULT_WIRELESS",
    "ClientCapabilities",
    "SessionRequest",
    "SessionDescription",
    "NegotiationError",
    "snap_quality",
    "AdaptationControl",
    "MediaServer",
    "save_archive",
    "load_archive",
    "PowerHint",
    "publish_power_hints",
    "QualityAdvisor",
    "BatteryAwareMiddleware",
    "AdaptationEvent",
    "SessionPlan",
    "PlayoutBuffer",
    "PlayoutReport",
    "StallEvent",
    "TranscodingProxy",
    "MobileClient",
    "StreamProtocolError",
]
