"""Client playout buffering: startup delay, jitter absorption, stalls.

The paper's client receives a stream over a shared wireless hop and plays
at a fixed frame rate; anything the network delivers late stalls playback.
This module simulates the playout buffer between the radio and the
decoder: given the per-frame arrival times (from
:class:`~repro.streaming.network.NetworkPath`) and the presentation clock,
it reports whether playback is smooth, how many stalls occur, and the
minimum startup delay that would have made the session stall-free — the
quantity a player tunes its "buffering..." spinner with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class StallEvent:
    """One playback interruption."""

    frame_index: int
    start_s: float     # presentation time at which the player starved
    duration_s: float  # how long it waited for the frame

    def __post_init__(self):
        if self.frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class PlayoutReport:
    """Outcome of one buffered playback simulation."""

    startup_delay_s: float
    stalls: List[StallEvent]
    total_stall_s: float
    end_to_end_latency_s: float

    @property
    def smooth(self) -> bool:
        """True when playback never starved."""
        return not self.stalls

    @property
    def stall_count(self) -> int:
        return len(self.stalls)


class PlayoutBuffer:
    """Fixed-startup-delay playout simulation.

    Parameters
    ----------
    startup_delay_s:
        How long the client buffers before starting playback.
    """

    def __init__(self, startup_delay_s: float = 0.5):
        if startup_delay_s < 0:
            raise ValueError("startup delay must be non-negative")
        self.startup_delay_s = startup_delay_s

    # ------------------------------------------------------------------
    def simulate(self, arrival_times_s: Sequence[float], fps: float) -> PlayoutReport:
        """Play frames arriving at ``arrival_times_s`` at ``fps``.

        Playback begins ``startup_delay_s`` after the first frame arrives.
        Each frame is due one frame period after the previous one was
        *shown*; a frame that has not arrived by its due time stalls the
        player until it does (stall time shifts all later deadlines).
        """
        arrivals = np.asarray(arrival_times_s, dtype=np.float64)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise ValueError("need a non-empty 1-D arrival array")
        if np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival times must be non-decreasing")
        if fps <= 0:
            raise ValueError("fps must be positive")
        period = 1.0 / fps
        clock = float(arrivals[0]) + self.startup_delay_s
        stalls: List[StallEvent] = []
        # Sub-nanosecond lateness is floating-point dust from the shifted
        # clock, not a stall a viewer could perceive.
        epsilon = 1e-9
        for i, arrival in enumerate(arrivals):
            if arrival > clock + epsilon:
                stalls.append(StallEvent(
                    frame_index=i, start_s=clock, duration_s=float(arrival - clock),
                ))
                clock = float(arrival)
            clock += period
        last_shown = clock - period
        return PlayoutReport(
            startup_delay_s=self.startup_delay_s,
            stalls=stalls,
            total_stall_s=float(sum(s.duration_s for s in stalls)),
            end_to_end_latency_s=float(last_shown - arrivals[-1] + period),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def minimum_startup_delay(arrival_times_s: Sequence[float], fps: float) -> float:
        """Smallest startup delay yielding stall-free playback.

        Frame ``i`` must satisfy ``arrival_i <= arrival_0 + delay + i/fps``,
        so the answer is ``max_i(arrival_i - arrival_0 - i/fps)`` clamped
        at zero.
        """
        arrivals = np.asarray(arrival_times_s, dtype=np.float64)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise ValueError("need a non-empty 1-D arrival array")
        if fps <= 0:
            raise ValueError("fps must be positive")
        deadlines = arrivals[0] + np.arange(arrivals.size) / fps
        return float(max(np.max(arrivals - deadlines), 0.0))
