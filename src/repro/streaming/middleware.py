"""Battery-aware quality adaptation middleware.

The related QABS work (reference [13]) coordinates backlight adaptation
through "a middleware layer running on both the client and an intermediary
proxy node".  This module builds that layer on top of the annotation
scheme: the user states how long playback must last; the middleware picks,
per clip, the *least* degradation whose predicted power lets the battery
survive the target, renegotiating as the battery drains.

The server cooperates by publishing power hints per prepared variant
(predicted backlight savings — information it already has from the
annotation pass), so the client never profiles anything itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.policy import quality_label
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..power.battery import Battery
from ..power.measurement import simulated_backlight_savings
from ..power.model import PLAYBACK_ACTIVITY, ActivityState, DevicePowerModel
from ..telemetry import registry as telemetry_registry
from .server import MediaServer
from .session import NegotiationError


@dataclass(frozen=True)
class PowerHint:
    """Server-published estimate for one (clip, quality) variant."""

    clip_name: str
    quality: float
    backlight_savings: float

    def __post_init__(self):
        if not 0.0 <= self.backlight_savings < 1.0:
            raise ValueError("backlight savings must be in [0, 1)")


def publish_power_hints(server: MediaServer, clip_name: str,
                        device: DeviceProfile) -> List[PowerHint]:
    """Compute the server's per-variant power hints for one clip.

    Uses the cached annotation tracks, so after the first request this is
    a table lookup (the negotiation-phase exchange of Section 4.3).
    """
    hints = []
    for quality in server.qualities:
        track = server.annotation_track(clip_name, quality).bind(device)
        savings = simulated_backlight_savings(track.per_frame_levels(), device)
        hints.append(PowerHint(clip_name=clip_name, quality=quality,
                               backlight_savings=savings))
    return hints


class QualityAdvisor:
    """Chooses the quality level that meets a runtime target.

    Parameters
    ----------
    device:
        The client device (for the power model).
    activity:
        Expected non-display activity during playback.
    """

    def __init__(self, device: DeviceProfile,
                 activity: ActivityState = PLAYBACK_ACTIVITY):
        self.device = device
        self.activity = activity
        self.model = DevicePowerModel(device)

    # ------------------------------------------------------------------
    def predicted_power_w(self, hint: PowerHint) -> float:
        """Whole-device mean power for a variant, from its hint."""
        full = float(self.model.total_power(self.activity, MAX_BACKLIGHT_LEVEL))
        backlight_full = float(self.device.backlight.power(MAX_BACKLIGHT_LEVEL))
        return full - hint.backlight_savings * backlight_full

    def choose(self, hints: Sequence[PowerHint], power_budget_w: float) -> PowerHint:
        """Least-degradation variant whose predicted power fits the budget.

        Falls back to the most aggressive variant when none fits (the
        user would rather finish the movie with some artifacts than have
        the device die).
        """
        if not hints:
            raise NegotiationError("no power hints to choose from")
        if power_budget_w <= 0:
            raise ValueError("power budget must be positive")
        by_quality = sorted(hints, key=lambda h: h.quality)
        for hint in by_quality:
            if self.predicted_power_w(hint) <= power_budget_w:
                return hint
        return by_quality[-1]


@dataclass(frozen=True)
class AdaptationEvent:
    """One middleware decision during a viewing session."""

    clip_name: str
    quality: float
    predicted_power_w: float
    battery_remaining_wh: float
    power_budget_w: float


@dataclass(frozen=True)
class SessionPlan:
    """Outcome of a battery-aware viewing session."""

    events: List[AdaptationEvent]
    completed: bool
    battery_remaining_wh: float

    def qualities(self) -> List[float]:
        """Chosen quality level per playlist entry."""
        return [e.quality for e in self.events]

    def describe(self) -> str:
        """Human-readable session log."""
        lines = []
        for e in self.events:
            lines.append(
                f"{e.clip_name:<22} quality {quality_label(e.quality):>4} "
                f"(~{e.predicted_power_w:.2f} W vs budget {e.power_budget_w:.2f} W, "
                f"battery {e.battery_remaining_wh:.2f} Wh)"
            )
        status = "completed" if self.completed else "BATTERY EXHAUSTED"
        lines.append(f"session {status}; {self.battery_remaining_wh:.2f} Wh left")
        return "\n".join(lines)


class BatteryAwareMiddleware:
    """Plays a playlist within a battery budget, adapting quality per clip.

    Before each clip the middleware divides the remaining usable energy by
    the remaining playback time to get the instantaneous power budget,
    asks the advisor for the cheapest-degradation variant that fits, and
    charges the battery with the variant's predicted energy.
    """

    def __init__(self, server: MediaServer, device: DeviceProfile,
                 battery: Battery = Battery(),
                 activity: ActivityState = PLAYBACK_ACTIVITY,
                 reserve_fraction: float = 0.05):
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.server = server
        self.device = device
        self.battery = battery
        self.advisor = QualityAdvisor(device, activity=activity)
        self.reserve_fraction = reserve_fraction
        reg = telemetry_registry()
        self._adaptations_counter = reg.counter(
            "repro_middleware_adaptations_total",
            help="Quality decisions taken by the battery-aware middleware.",
        )
        self._renegotiations_counter = reg.counter(
            "repro_middleware_renegotiations_total",
            help="Middleware decisions that changed the quality level mid-session.",
        )

    # ------------------------------------------------------------------
    def plan_session(self, playlist: Sequence[str],
                     initial_charge_wh: Optional[float] = None,
                     durations_s: Optional[Dict[str, float]] = None) -> SessionPlan:
        """Plan (and simulate) a full playlist under the battery budget.

        Parameters
        ----------
        playlist:
            Clip names in viewing order.
        initial_charge_wh:
            Battery charge at session start (defaults to full).
        durations_s:
            Optional per-clip playback durations overriding the clips'
            own lengths — lets scaled-down simulation clips stand in for
            full-length titles when budgeting energy.
        """
        if not playlist:
            raise ValueError("playlist is empty")
        remaining_wh = (
            self.battery.capacity_wh if initial_charge_wh is None else initial_charge_wh
        )
        if remaining_wh <= 0:
            raise ValueError("initial charge must be positive")
        durations = {name: self.server.get_clip(name).duration for name in playlist}
        if durations_s:
            for name, seconds in durations_s.items():
                if seconds <= 0:
                    raise ValueError(f"duration override for {name!r} must be positive")
                durations[name] = float(seconds)
        remaining_s = sum(durations.values())
        usable_wh = remaining_wh * (1.0 - self.reserve_fraction)

        events: List[AdaptationEvent] = []
        for name in playlist:
            if usable_wh <= 0:
                return SessionPlan(events=events, completed=False,
                                   battery_remaining_wh=max(usable_wh, 0.0))
            budget_w = usable_wh / (remaining_s / 3600.0)
            hints = publish_power_hints(self.server, name, self.device)
            choice = self.advisor.choose(hints, budget_w)
            power = self.advisor.predicted_power_w(choice)
            self._adaptations_counter.inc()
            if events and events[-1].quality != choice.quality:
                self._renegotiations_counter.inc()
            events.append(AdaptationEvent(
                clip_name=name,
                quality=choice.quality,
                predicted_power_w=power,
                battery_remaining_wh=usable_wh,
                power_budget_w=budget_w,
            ))
            spent_wh = power * durations[name] / 3600.0
            usable_wh -= spent_wh
            remaining_s -= durations[name]
        return SessionPlan(
            events=events,
            completed=usable_wh >= 0,
            battery_remaining_wh=max(usable_wh, 0.0),
        )
