"""Annotated media archives: clips bundled with their annotation tracks.

The paper's server profiles clips once and keeps the annotations with the
content ("the video clips available for streaming at the servers are first
profiled, processed and annotated").  An archive is that unit of storage:
the pixel payload plus the device-independent track for every prepared
quality level, plus an optional decode-complexity (DVFS) track — so a
server can be cold-started from disk without re-profiling anything.

Format: a single ``.npz`` with the clip tensor and one bytes-entry per
track.  Track bytes are exactly the wire format, so an archive is also a
pre-packetized cache.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.annotation import AnnotationTrack
from ..core.dvfs_annotation import DvfsTrack
from ..video.clip import ArrayClip, ClipBase

#: Archive format tag.
ARCHIVE_VERSION = 1


def save_archive(
    path: Union[str, os.PathLike],
    clip: ClipBase,
    tracks: Dict[float, AnnotationTrack],
    dvfs_track: Optional[DvfsTrack] = None,
) -> None:
    """Write a clip and its annotation tracks to one archive file.

    Parameters
    ----------
    path:
        Destination ``.npz`` path.
    clip:
        The content (lazy clips are materialized).
    tracks:
        Device-independent annotation tracks keyed by quality level; every
        track must cover exactly this clip.
    dvfs_track:
        Optional decode-complexity track.
    """
    if not tracks:
        raise ValueError("an archive needs at least one annotation track")
    for quality, track in tracks.items():
        if track.frame_count != clip.frame_count:
            raise ValueError(
                f"track for quality {quality} covers {track.frame_count} frames, "
                f"clip has {clip.frame_count}"
            )
    if dvfs_track is not None and dvfs_track.frame_count != clip.frame_count:
        raise ValueError("DVFS track does not cover the clip")

    if isinstance(clip, ArrayClip):
        frames = clip.pixels  # already one contiguous (N, H, W, 3) block
    else:
        frames = np.stack([frame.pixels for frame in clip])
    payload = {
        "frames": frames,
        "fps": np.float64(clip.fps),
        "name": np.str_(clip.name),
        "version": np.int64(ARCHIVE_VERSION),
        "qualities": np.array(sorted(tracks), dtype=np.float64),
    }
    for quality in tracks:
        payload[f"track_{round(quality * 1000)}"] = np.frombuffer(
            tracks[quality].to_bytes(), dtype=np.uint8
        )
    if dvfs_track is not None:
        payload["dvfs"] = np.frombuffer(dvfs_track.to_bytes(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_archive(
    path: Union[str, os.PathLike],
) -> Tuple[ArrayClip, Dict[float, AnnotationTrack], Optional[DvfsTrack]]:
    """Load an archive written by :func:`save_archive`.

    The clip comes back as an :class:`~repro.video.clip.ArrayClip`
    wrapping the archive's pixel tensor directly: no per-frame
    :class:`Frame` objects are materialized at load time — frames (and
    zero-copy chunks) are produced lazily as the stream is read.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != ARCHIVE_VERSION:
            raise ValueError(
                f"unsupported archive version {version} (expected {ARCHIVE_VERSION})"
            )
        frames_arr = data["frames"]
        fps = float(data["fps"])
        name = str(data["name"])
        qualities = [float(q) for q in data["qualities"]]
        tracks: Dict[float, AnnotationTrack] = {}
        for quality in qualities:
            key = f"track_{round(quality * 1000)}"
            if key not in data:
                raise ValueError(f"archive advertises quality {quality} but lacks {key}")
            tracks[quality] = AnnotationTrack.from_bytes(
                bytes(data[key].tobytes()), clip_name=name
            )
        dvfs = None
        if "dvfs" in data:
            dvfs = DvfsTrack.from_bytes(bytes(data["dvfs"].tobytes()), clip_name=name)
    clip = ArrayClip(frames_arr, fps=fps, name=name)
    for track in tracks.values():
        if track.frame_count != clip.frame_count:
            raise ValueError("corrupt archive: track does not cover the clip")
    return clip, tracks, dvfs
