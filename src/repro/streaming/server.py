"""The media server.

"The server stores media content and streams videos to clients upon user
requests" (Section 3).  On top of storage it owns the offline annotation
work: every registered clip is profiled once, and annotation tracks for
the prepared quality levels are computed (and cached) on demand.  When a
session opens, the device-independent track is bound to the client's
device profile and the stream is emitted as one annotation packet followed
by compensated frame packets.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.annotation import AnnotationTrack
from ..core.dvfs_annotation import DvfsAnnotator, DvfsTrack
from ..core.engine import EngineSpec, resolve_engine
from ..core.pipeline import AnnotatedStream, AnnotationPipeline, ProfileResult
from ..core.policies import PolicySpec, get_policy, resolve_policy
from ..core.policy import QUALITY_LEVELS, SchemeParameters
from ..core.profile_cache import ProfileCache, shared_profile_cache
from ..display.ambient import as_ambient_trace, bind_with_ambient_trace
from ..display.devices import get_device
from ..telemetry import record_event, registry as telemetry_registry, trace
from ..video.chunks import HeterogeneousFrameError
from ..video.clip import ClipBase
from ..video.codec import CodecModel
from .packets import MediaPacket, annotation_packet, frame_packet
from .session import (
    NegotiationError,
    SessionDescription,
    SessionRequest,
    snap_quality,
)


#: Frames in the shrunken first chunk of :meth:`MediaServer.stream_batches`.
#: Small enough that the opening compensate is a few milliseconds, large
#: enough that the per-batch overhead stays amortized.
LEAD_CHUNK_FRAMES = 8

#: Frame packets per batch when the per-frame engine feeds
#: :meth:`MediaServer.stream_batches` (there is no natural chunk boundary
#: to group by, so batches are cut every this many records).
PERFRAME_BATCH_RECORDS = 32

#: Compensation chunk span used by :meth:`MediaServer.stream_batches`.
#: The in-process autotune targets float64-scratch residency and picks
#: long chunks; on the wire a chunk is also the unit a producer computes
#: before its session's socket sees any of it, so long chunks turn into
#: head-of-line bubbles (and long compute-slot holds under contention).
#: Matching the wire server's default batch_records keeps one chunk ≈ one
#: coalesced write.
WIRE_CHUNK_FRAMES = 32

#: One mid-stream switch: ``(frame, quality, ambient_spec_or_None)``.
#: ``frame`` is the scene-boundary frame the new binding takes effect at.
Switch = Tuple[int, float, Optional[str]]


class AdaptationControl:
    """Mid-stream adaptation mailbox between a session's control reader
    and its producer.

    The wire server's reader task deposits live ``requality`` requests
    with :meth:`request` (thread-safe, latest wins — a client stepping
    down twice between scene boundaries lands on the final target); the
    producer polls with :meth:`poll_request` between chunks and applies
    the switch at the next scene boundary.  ``plan`` seeds *scheduled*
    switches for resume replay: a session adopted from a portable token
    replays each recorded switch at exactly its recorded frame, so the
    regenerated stream is byte-identical to the original.

    ``ack_builder``/``reject_builder`` are set by the transport layer
    (the streaming layer cannot import :mod:`repro.net`): they build the
    in-stream ``requality`` acknowledgement packet for live switches —
    plan replays emit no ack, matching the original stream's data
    records.
    """

    def __init__(self, plan: Sequence[Switch] = ()):
        self._lock = threading.Lock()
        self._request: Optional[Tuple[Optional[float], Optional[str]]] = None
        self._plan = deque(
            (int(frame), float(quality), ambient)
            for frame, quality, ambient in plan
        )
        self._applied: List[Switch] = []
        #: ``(frame, quality, ambient, plan) -> Optional[MediaPacket]``;
        #: the ack emitted in-stream when a live switch is applied.
        self.ack_builder: Optional[Callable] = None
        #: ``(frame, reason) -> Optional[MediaPacket]``; the rejection
        #: ack when a live request finds no scene boundary before the end.
        self.reject_builder: Optional[Callable] = None

    # -- reader side ---------------------------------------------------
    def request(self, quality: Optional[float] = None,
                ambient: Optional[str] = None) -> None:
        """Deposit a live adaptation request (latest value per field wins).

        Undelivered requests merge field-wise rather than replacing
        wholesale: a quality step followed by an ambient-only change
        before the producer polls must land as *both*, not lose the
        earlier step.
        """
        if quality is None and ambient is None:
            raise ValueError("a requality needs a quality and/or an ambient")
        with self._lock:
            prev_quality, prev_ambient = self._request or (None, None)
            self._request = (
                quality if quality is not None else prev_quality,
                ambient if ambient is not None else prev_ambient,
            )

    # -- producer side -------------------------------------------------
    def poll_request(self) -> Optional[Tuple[Optional[float], Optional[str]]]:
        """Take the pending live request, if any (clears it)."""
        with self._lock:
            req, self._request = self._request, None
            return req

    def next_planned(self, pos: int) -> Optional[Switch]:
        """Peek the next scheduled (replay) switch at or after ``pos``."""
        with self._lock:
            while self._plan and self._plan[0][0] < pos:
                self._plan.popleft()
            return self._plan[0] if self._plan else None

    def switch_applied(self, frame: int, quality: float,
                       ambient: Optional[str], live: bool) -> List[MediaPacket]:
        """Record an applied switch; return the ack packets to emit.

        Plan replays (``live=False``) pop their plan entry and emit
        nothing; live switches return the transport-built ack (empty
        when no builder is attached, e.g. in-process use).
        """
        with self._lock:
            if not live and self._plan and self._plan[0][0] == frame:
                self._plan.popleft()
            self._applied.append((int(frame), float(quality), ambient))
            plan = tuple(self._applied) + tuple(self._plan)
        if live and self.ack_builder is not None:
            packet = self.ack_builder(frame, quality, ambient, plan)
            return [packet] if packet is not None else []
        return []

    def switch_missed(self, frame: int, reason: str) -> List[MediaPacket]:
        """A live request found no boundary left; return the rejection ack."""
        if self.reject_builder is None:
            return []
        packet = self.reject_builder(frame, reason)
        return [packet] if packet is not None else []

    # -- shared --------------------------------------------------------
    def switch_plan(self) -> Tuple[Switch, ...]:
        """Applied switches plus any still-scheduled replay entries."""
        with self._lock:
            return tuple(self._applied) + tuple(self._plan)

    @property
    def applied(self) -> Tuple[Switch, ...]:
        """Switches applied so far, oldest first."""
        with self._lock:
            return tuple(self._applied)


class MediaServer:
    """Stores clips, prepares annotations, serves annotated streams.

    Parameters
    ----------
    params:
        Scheme parameters shared by all prepared variants (quality is
        overridden per variant).
    qualities:
        The prepared quality levels (the paper's five, by default).
    dvfs_annotator:
        When given, every stream also carries a decode-complexity (DVFS)
        annotation track computed over the same scene partition
        (Section 3's frequency/voltage-scaling consumer).
    codec:
        Optional :class:`~repro.video.codec.CodecModel`; when given,
        frame packets are charged their *encoded* wire size on the
        network (the pixels still travel in-process for display).
    engine:
        Execution engine for the profiling pass (``None``, a kind name,
        or an :class:`~repro.core.engine.EngineConfig`).
    profile_cache:
        Content-keyed cache of profiling results.  Defaults to the
        process-wide shared cache, so every server (and quality sweep)
        profiles a given clip's pixels exactly once; pass a dedicated
        :class:`~repro.core.profile_cache.ProfileCache` to isolate.
    policy:
        The :class:`~repro.core.policies.BacklightPolicy` this server
        annotates with (``None``, a registered name, or an instance).
        Part of every track and profile cache key, so two servers running
        different policies on the same content never cross-serve.
    ambient:
        Optional serve-time ambient: an
        :class:`~repro.display.ambient.AmbientTrace`, condition, or spec
        string (``"office"`` or ``"0:dark-room,30:office"``).  When set,
        every session's device binding happens per scene against the
        trace's condition at the scene's start time — the simulated
        light-sensor loop — instead of the dark-room annotation-time
        bind.  ``None`` keeps the classic bind.
    """

    def __init__(
        self,
        params: SchemeParameters = SchemeParameters(),
        qualities: Tuple[float, ...] = QUALITY_LEVELS,
        dvfs_annotator: Optional[DvfsAnnotator] = None,
        codec: Optional[CodecModel] = None,
        engine: EngineSpec = None,
        profile_cache: Optional[ProfileCache] = None,
        policy: PolicySpec = None,
        ambient=None,
    ):
        if not qualities:
            raise ValueError("server needs at least one quality level")
        self.params = params
        self.qualities = tuple(sorted(qualities))
        self.ambient = None if ambient is None else as_ambient_trace(ambient)
        self.dvfs_annotator = dvfs_annotator
        self.codec = codec
        self.engine = engine
        self.profile_cache = (
            profile_cache if profile_cache is not None else shared_profile_cache()
        )
        self.policy = resolve_policy(policy)
        self._clips: Dict[str, ClipBase] = {}
        self._encoded: Dict[str, object] = {}
        self._profiles: Dict[str, ProfileResult] = {}
        self._tracks: Dict[Tuple, AnnotationTrack] = {}
        self._dvfs_tracks: Dict[str, DvfsTrack] = {}
        self._session_ids = itertools.count(1)
        reg = telemetry_registry()
        self._sessions_counter = reg.counter(
            "repro_server_sessions_total", help="Sessions negotiated by media servers.",
        )
        self._track_requests_counter = reg.counter(
            "repro_server_track_requests_total",
            help="Annotation-track requests served (cached or computed).",
        )
        self._streams_counter = reg.counter(
            "repro_server_streams_total", help="Annotated streams emitted to clients.",
        )
        self._frames_streamed_counter = reg.counter(
            "repro_server_frames_streamed_total",
            help="Compensated frame packets emitted to clients.",
        )

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def add_clip(self, clip: ClipBase) -> None:
        """Register a clip in the catalog (idempotent by name).

        Re-registering a name with a *different* clip object drops every
        name-keyed derivative (profile, tracks, encoded sizes), so stale
        annotations can never be served for replaced content.  The shared
        content-keyed profile cache makes the common same-pixels case
        cheap: the fresh profile lookup hits by fingerprint.
        """
        existing = self._clips.get(clip.name)
        if existing is not None and existing is not clip:
            self._profiles.pop(clip.name, None)
            self._dvfs_tracks.pop(clip.name, None)
            self._encoded.pop(clip.name, None)
            for key in [k for k in self._tracks if k[0] == clip.name]:
                del self._tracks[key]
        self._clips[clip.name] = clip

    def catalog(self) -> Tuple[str, ...]:
        """Names of all registered clips, sorted."""
        return tuple(sorted(self._clips))

    def get_clip(self, name: str) -> ClipBase:
        """Look up a clip by name; NegotiationError if absent."""
        try:
            return self._clips[name]
        except KeyError:
            raise NegotiationError(f"clip {name!r} not in catalog") from None

    # ------------------------------------------------------------------
    # Annotation preparation (cached)
    # ------------------------------------------------------------------
    def profile(self, clip_name: str) -> ProfileResult:
        """Profile a clip once; later calls hit the cache.

        Two cache tiers: a name-keyed dict for repeat lookups on this
        server (no hashing), backed by the content-keyed
        :attr:`profile_cache` shared across quality variants, device
        bindings, servers and sweeps.
        """
        if clip_name not in self._profiles:
            clip = self.get_clip(clip_name)
            pipeline = AnnotationPipeline(
                self.params,
                engine=self.engine,
                profile_cache=self.profile_cache,
                policy=self.policy,
            )
            self._profiles[clip_name] = pipeline.profile(clip)
        return self._profiles[clip_name]

    def annotation_track(self, clip_name: str, quality: float) -> AnnotationTrack:
        """The device-independent track for one prepared variant."""
        if quality not in self.qualities:
            raise NegotiationError(
                f"quality {quality} is not a prepared variant {self.qualities}"
            )
        self._track_requests_counter.inc()
        key = (clip_name, quality, self.policy.key())
        if key not in self._tracks:
            clip = self.get_clip(clip_name)
            profile = self.profile(clip_name)
            pipeline = AnnotationPipeline(
                self.params.with_quality(quality),
                engine=self.engine,
                policy=self.policy,
            )
            self._tracks[key] = pipeline.annotate(clip, profile=profile)
        return self._tracks[key]

    def dvfs_track(self, clip_name: str) -> DvfsTrack:
        """The decode-complexity track for a clip (cached)."""
        if clip_name not in self._dvfs_tracks:
            if self.dvfs_annotator is None:
                raise NegotiationError("server was built without DVFS annotation")
            clip = self.get_clip(clip_name)
            profile = self.profile(clip_name)
            self._dvfs_tracks[clip_name] = self.dvfs_annotator.annotate_with_profile(
                clip, profile
            )
        return self._dvfs_tracks[clip_name]

    def encoded_clip(self, clip_name: str):
        """Encoded-size metadata for a clip (cached; requires a codec)."""
        if self.codec is None:
            raise NegotiationError("server was built without a codec model")
        if clip_name not in self._encoded:
            self._encoded[clip_name] = self.codec.encode(self.get_clip(clip_name))
        return self._encoded[clip_name]

    # ------------------------------------------------------------------
    # Archives (annotated content on disk)
    # ------------------------------------------------------------------
    def export_archive(self, clip_name: str, path) -> None:
        """Write a clip plus all prepared annotation variants to disk."""
        from .archive import save_archive

        clip = self.get_clip(clip_name)
        tracks = {q: self.annotation_track(clip_name, q) for q in self.qualities}
        dvfs = self.dvfs_track(clip_name) if self.dvfs_annotator is not None else None
        save_archive(path, clip, tracks, dvfs_track=dvfs)

    def add_archive(self, path) -> str:
        """Load annotated content from disk, seeding the caches.

        Returns the clip name.  No profiling happens: the archive's
        tracks are trusted (they were produced by an equivalent server).
        """
        from .archive import load_archive

        clip, tracks, dvfs = load_archive(path)
        self.add_clip(clip)
        for quality, track in tracks.items():
            # Keyed under the *producing* policy (recorded in the track),
            # which may differ from this server's own policy.
            self._tracks[(clip.name, quality, get_policy(track.policy).key())] = track
        if dvfs is not None:
            self._dvfs_tracks[clip.name] = dvfs
        return clip.name

    # ------------------------------------------------------------------
    # Sessions and streaming
    # ------------------------------------------------------------------
    def open_session(self, request: SessionRequest) -> SessionDescription:
        """Negotiate a session: validate, snap quality, assign an id."""
        clip = self.get_clip(request.clip_name)
        quality = snap_quality(request.quality, self.qualities)
        self._sessions_counter.inc()
        return SessionDescription(
            session_id=next(self._session_ids),
            clip_name=clip.name,
            quality=quality,
            device_name=request.capabilities.device_name,
            fps=clip.fps,
            frame_count=clip.frame_count,
        )

    def build_stream(
        self,
        session: SessionDescription,
        quality: Optional[float] = None,
        ambient: Optional[str] = None,
    ) -> AnnotatedStream:
        """Materialize the annotated stream object for a session.

        ``quality`` overrides the session's negotiated quality and
        ``ambient`` (a spec string) overrides the server-wide ambient
        trace — mid-stream ``requality`` re-binds by calling this with
        the post-switch values; the default call reproduces the opening
        binding exactly.  With no ambient anywhere the binding is the
        classic dark-room :meth:`AnnotationTrack.bind`, bit-identical to
        the pre-adaptation server.
        """
        clip = self.get_clip(session.clip_name)
        device = get_device(session.device_name)
        effective_quality = session.quality if quality is None else quality
        track = self.annotation_track(session.clip_name, effective_quality)
        ambient_trace = (
            as_ambient_trace(ambient) if ambient is not None else self.ambient
        )
        if ambient_trace is not None:
            bound = bind_with_ambient_trace(
                track, device, ambient_trace, fps=clip.fps
            )
        else:
            bound = track.bind(device)
        record_event("policy_bind", session_id=session.session_id,
                     policy=self.policy.name, device=session.device_name)
        # The cached profile's exact histograms let the stream derive
        # clipped fractions without per-chunk pixel reductions.
        return AnnotatedStream(
            clip=clip, track=bound, device=device,
            profile=self._profiles.get(session.clip_name),
        )

    def _stream_setup(self, session: SessionDescription):
        """Shared stream preamble: ``(annotated, head_packets, seq, wire_sizes)``.

        ``head_packets`` is the annotation packet (plus the DVFS track
        when present) and ``seq`` the first frame packet's sequence
        number.  Used by both :meth:`stream` and :meth:`stream_batches`.
        """
        with trace("server.stream"):
            annotated = self.build_stream(session)
        self._streams_counter.inc()
        head = [annotation_packet(0, annotated.track.to_bytes())]
        seq = 1
        has_dvfs = (
            self.dvfs_annotator is not None
            or session.clip_name in self._dvfs_tracks
        )
        if has_dvfs:
            head.append(
                annotation_packet(seq, self.dvfs_track(session.clip_name).to_bytes())
            )
            seq += 1
        wire_sizes = None
        if self.codec is not None:
            wire_sizes = self.encoded_clip(session.clip_name).frame_bytes
        return annotated, head, seq, wire_sizes

    def stream(self, session: SessionDescription) -> Iterator[MediaPacket]:
        """Emit the session's packets: annotation first, then frames.

        Frames are compensated server-side ("to reduce the load on the
        client device at runtime, the compensation of the frames ... is
        performed at either the server or the intermediary proxy node").
        Compensation runs chunk-at-a-time through the batched kernel —
        each emitted frame is a zero-copy view into its chunk — and is
        bit-identical to the per-frame reference emission (which the
        ``"perframe"`` engine kind still uses, and which finishes the
        stream for clips that mix frame resolutions).  Yielded packets
        stay valid indefinitely; the wire server uses
        :meth:`stream_batches` instead, which trades that guarantee for
        buffer reuse and an eager first chunk.
        """
        annotated, head, seq, wire_sizes = self._stream_setup(session)
        for packet in head:
            yield packet
        if resolve_engine(self.engine).kind == "perframe":
            yield from self._emit_perframe(annotated, seq, wire_sizes)
            return
        produced = 0
        try:
            for chunk in annotated.iter_chunks():
                self._frames_streamed_counter.inc(len(chunk))
                for k in range(len(chunk)):
                    i = chunk.start + k
                    wire = int(wire_sizes[i]) if wire_sizes is not None else None
                    yield frame_packet(
                        seq + i, chunk.frame(k), frame_index=i, wire_bytes=wire
                    )
                produced = chunk.stop
        except HeterogeneousFrameError:
            yield from self._emit_perframe(annotated, seq, wire_sizes, start=produced)

    def stream_batches(
        self,
        session: SessionDescription,
        lead_chunk_frames: Optional[int] = LEAD_CHUNK_FRAMES,
        wire_chunk_frames: Optional[int] = WIRE_CHUNK_FRAMES,
        adaptation: Optional[AdaptationControl] = None,
    ) -> Iterator[List[MediaPacket]]:
        """Emit the session's packets as wire-oriented batches.

        Same packet sequence as :meth:`stream` (same payload bytes, same
        sequence numbers), grouped for the network send path: the head
        (annotation packets) is yielded first on its own, so it can hit
        the wire while the first frame chunk is still compensating; each
        subsequent batch is one compensated chunk's frame packets (or a
        bounded group for the per-frame engine).  The first chunk is
        shrunk to ``lead_chunk_frames`` frames so time-to-first-frame is
        bounded by a small compensate, not a full chunk.  Chunks span
        ``wire_chunk_frames`` frames (``None`` falls back to the
        in-process autotune): short spans keep the compute a producer
        runs between socket writes — and its compute-slot hold under
        contention — bounded, trading a little batching amortization for
        pipeline smoothness.

        With an :class:`AdaptationControl`, mid-stream ``requality``
        switches are honored: at the next scene boundary after a request
        the session re-binds (new quality and/or ambient) and the stream
        continues with an in-stream ack (live switches only) plus a
        fresh annotation packet carrying the full new device track —
        byte-identical to a fresh fetch's head annotation at the new
        binding.  Frame sequence numbers continue unbroken
        (``seq_base + frame_index``), and nothing is replayed.

        **Aliasing contract**: chunked batches compensate into a reused
        arena buffer, so a batch's frame payloads are only valid until
        the generator is advanced — consumers must fully encode/copy a
        batch before requesting the next.  (The wire producer copies
        each packet into its coalesced send buffer immediately, so this
        holds by construction there.)
        """
        annotated, head, seq, wire_sizes = self._stream_setup(session)
        yield head
        if adaptation is not None:
            yield from self._stream_batches_adaptive(
                session, annotated, seq, wire_sizes,
                lead_chunk_frames, wire_chunk_frames, adaptation,
            )
            return
        if resolve_engine(self.engine).kind == "perframe":
            batch: List[MediaPacket] = []
            for packet in self._emit_perframe(annotated, seq, wire_sizes):
                batch.append(packet)
                if len(batch) >= PERFRAME_BATCH_RECORDS:
                    yield batch
                    batch = []
            if batch:
                yield batch
            return
        produced = 0
        try:
            for chunk in annotated.iter_chunks(
                chunk_size=wire_chunk_frames,
                lead=lead_chunk_frames,
                reuse_output=True,
            ):
                self._frames_streamed_counter.inc(len(chunk))
                batch = []
                for k in range(len(chunk)):
                    i = chunk.start + k
                    wire = int(wire_sizes[i]) if wire_sizes is not None else None
                    batch.append(
                        frame_packet(
                            seq + i, chunk.frame(k), frame_index=i, wire_bytes=wire
                        )
                    )
                yield batch
                produced = chunk.stop
        except HeterogeneousFrameError:
            batch = []
            for packet in self._emit_perframe(
                annotated, seq, wire_sizes, start=produced
            ):
                batch.append(packet)
                if len(batch) >= PERFRAME_BATCH_RECORDS:
                    yield batch
                    batch = []
            if batch:
                yield batch

    def _stream_batches_adaptive(
        self,
        session: SessionDescription,
        annotated: AnnotatedStream,
        seq_base: int,
        wire_sizes,
        lead_chunk_frames: Optional[int],
        wire_chunk_frames: Optional[int],
        adaptation: AdaptationControl,
    ) -> Iterator[List[MediaPacket]]:
        """The adaptation-aware emission loop behind :meth:`stream_batches`.

        Emits segments of the current binding's stream, polling the
        control for live requests between chunks and for scheduled
        (resume-replay) switches between segments.  A switch truncates
        the in-flight chunk at the boundary frame (chunk re-slicing is
        bit-safe), re-binds via :meth:`build_stream`, and emits
        ``[ack?, annotation]`` before the next segment — so the
        post-switch frames and annotation bytes match a fresh fetch at
        the new binding exactly.
        """
        frame_count = annotated.frame_count
        stream = annotated
        quality = session.quality
        ambient: Optional[str] = None
        pos = 0
        lead = lead_chunk_frames
        # (frame, quality, ambient, live) once a switch is scheduled.
        pending: Optional[Tuple[int, float, Optional[str], bool]] = None
        use_perframe = resolve_engine(self.engine).kind == "perframe"

        def resolve_request(req, at: int):
            new_quality = (
                quality if req[0] is None
                else snap_quality(req[0], self.qualities)
            )
            new_ambient = ambient if req[1] is None else str(req[1])
            return (stream.next_scene_start(at), new_quality, new_ambient, True)

        while pos < frame_count:
            if pending is None:
                planned = adaptation.next_planned(pos)
                if planned is not None:
                    pending = (planned[0], planned[1], planned[2], False)
            emitted_to = pos
            if pending is not None and pending[0] <= pos:
                pass  # switch due right here — no frames to produce first
            elif not use_perframe:
                try:
                    for chunk in stream.iter_chunks(
                        chunk_size=wire_chunk_frames,
                        lead=lead,
                        reuse_output=True,
                        start=pos,
                    ):
                        lead = None
                        if pending is None:
                            req = adaptation.poll_request()
                            if req is not None:
                                pending = resolve_request(req, chunk.start)
                        if pending is not None and chunk.start >= pending[0]:
                            break
                        stop = (
                            chunk.stop if pending is None
                            else min(chunk.stop, pending[0])
                        )
                        batch = []
                        for k in range(stop - chunk.start):
                            i = chunk.start + k
                            wire = (
                                int(wire_sizes[i])
                                if wire_sizes is not None else None
                            )
                            batch.append(frame_packet(
                                seq_base + i, chunk.frame(k),
                                frame_index=i, wire_bytes=wire,
                            ))
                        self._frames_streamed_counter.inc(len(batch))
                        yield batch
                        emitted_to = stop
                        if pending is not None and stop >= pending[0]:
                            break
                    else:
                        emitted_to = frame_count
                except HeterogeneousFrameError:
                    use_perframe = True
            if use_perframe and not (pending is not None and pending[0] <= pos):
                batch = []
                i = emitted_to
                while i < frame_count:
                    if pending is None:
                        req = adaptation.poll_request()
                        if req is not None:
                            pending = resolve_request(req, i)
                    if pending is not None and i >= pending[0]:
                        break
                    wire = int(wire_sizes[i]) if wire_sizes is not None else None
                    self._frames_streamed_counter.inc()
                    batch.append(frame_packet(
                        seq_base + i, stream.compensated_frame(i).frame,
                        frame_index=i, wire_bytes=wire,
                    ))
                    if len(batch) >= PERFRAME_BATCH_RECORDS:
                        yield batch
                        batch = []
                    i += 1
                if batch:
                    yield batch
                emitted_to = i
            pos = emitted_to
            if pending is not None and pending[0] <= pos < frame_count:
                boundary, quality, ambient, live = pending
                with trace("server.rebind"):
                    stream = self.build_stream(
                        session, quality=quality, ambient=ambient
                    )
                record_event(
                    "session_requality", session_id=session.session_id,
                    frame=boundary, quality=quality,
                    ambient=ambient, replay=not live,
                )
                acks = adaptation.switch_applied(boundary, quality, ambient, live)
                yield list(acks) + [
                    annotation_packet(seq_base + pos, stream.track.to_bytes())
                ]
                pending = None
        if pending is not None and pending[3]:
            tail = adaptation.switch_missed(
                frame_count, "no scene boundary before end of stream"
            )
            if tail:
                yield list(tail)

    def _emit_perframe(
        self,
        annotated: AnnotatedStream,
        seq: int,
        wire_sizes,
        start: int = 0,
    ) -> Iterator[MediaPacket]:
        """Reference emission: one compensated frame packet at a time."""
        for i in range(start, annotated.frame_count):
            compensated = annotated.compensated_frame(i).frame
            wire = int(wire_sizes[i]) if wire_sizes is not None else None
            self._frames_streamed_counter.inc()
            yield frame_packet(seq + i, compensated, frame_index=i, wire_bytes=wire)
