"""Network path model (Figure 1's wired + wireless hops).

The system model routes content from the server over wired Ethernet to an
access point and then over the wireless hop to the handheld.  For power
purposes the interesting output is the *client radio duty cycle* — the
fraction of time the WLAN interface spends actively receiving — which the
device power model converts to watts.  Delivery timing is also computed so
that integration tests can assert the stream is sustainable in real time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from .packets import PACKET_HEADER_BYTES, MediaPacket


@dataclass(frozen=True)
class Link:
    """A store-and-forward link."""

    name: str
    bandwidth_bps: float
    latency_s: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transmit_time_s(self, size_bytes: int) -> float:
        """Serialization delay of a packet on this link."""
        if size_bytes < 0:
            raise ValueError("packet size must be non-negative")
        return size_bytes * 8.0 / self.bandwidth_bps


#: A 2005-vintage 802.11b wireless hop.
DEFAULT_WIRELESS = Link(name="wlan", bandwidth_bps=5.5e6, latency_s=0.004)
#: Wired backbone from server to access point.
DEFAULT_WIRED = Link(name="ethernet", bandwidth_bps=100e6, latency_s=0.001)


@dataclass(frozen=True)
class DeliverySchedule:
    """Arrival times of a packet sequence at the client."""

    arrival_times_s: np.ndarray
    total_bytes: int
    wireless_busy_s: float

    @property
    def duration_s(self) -> float:
        return float(self.arrival_times_s[-1]) if self.arrival_times_s.size else 0.0

    def radio_duty(self, playback_duration_s: float) -> float:
        """Client radio receive duty cycle over the playback window."""
        if playback_duration_s <= 0:
            raise ValueError("playback duration must be positive")
        return min(self.wireless_busy_s / playback_duration_s, 1.0)


class NetworkPath:
    """Server -> (proxy) -> access point -> client path."""

    def __init__(self, hops: Sequence[Link] = (DEFAULT_WIRED, DEFAULT_WIRELESS)):
        if not hops:
            raise ValueError("a network path needs at least one hop")
        self.hops = list(hops)

    @property
    def wireless_hop(self) -> Link:
        """The last hop — the one the client radio listens on."""
        return self.hops[-1]

    def bottleneck_bandwidth_bps(self) -> float:
        """The slowest hop's bandwidth."""
        return min(link.bandwidth_bps for link in self.hops)

    def deliver(self, packets: Iterable[MediaPacket]) -> DeliverySchedule:
        """Compute per-packet arrival times under store-and-forward.

        Each hop is FIFO: a packet starts on hop ``k`` when both the
        packet has fully arrived from hop ``k-1`` and the hop is free.
        """
        sizes: List[int] = [p.size_bytes for p in packets]
        if not sizes:
            raise ValueError("cannot deliver an empty packet stream")
        hop_free = [0.0] * len(self.hops)
        arrivals = np.empty(len(sizes))
        wireless_busy = 0.0
        for i, size in enumerate(sizes):
            t = 0.0  # packet ready at the server immediately
            for k, link in enumerate(self.hops):
                start = max(t, hop_free[k])
                tx = link.transmit_time_s(size)
                end = start + tx + link.latency_s
                hop_free[k] = start + tx
                if k == len(self.hops) - 1:
                    wireless_busy += tx
                t = end
            arrivals[i] = t
        return DeliverySchedule(
            arrival_times_s=arrivals,
            total_bytes=int(sum(sizes)),
            wireless_busy_s=wireless_busy,
        )

    def sustainable_fps(
        self, frame_bytes: int, header_bytes: int = PACKET_HEADER_BYTES
    ) -> float:
        """Frame rate the bottleneck hop can sustain for a frame size.

        Each frame travels as one packet, so the fixed per-packet header
        is charged on top of the body — the same
        :data:`~repro.streaming.packets.PACKET_HEADER_BYTES` that
        :meth:`deliver` charges via ``MediaPacket.size_bytes`` and that
        the wire codec's fixed record header occupies on a real socket.
        ``frame_bytes=0`` is valid (a zero-payload control packet still
        costs a header); a non-positive *total* is rejected.
        """
        if frame_bytes < 0:
            raise ValueError("frame size must be non-negative")
        if header_bytes < 0:
            raise ValueError("header size must be non-negative")
        total = frame_bytes + header_bytes
        if total <= 0:
            raise ValueError("packet must occupy at least one byte on the wire")
        return self.bottleneck_bandwidth_bps() / (8.0 * total)
