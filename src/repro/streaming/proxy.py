"""The transcoding proxy: on-the-fly annotation.

Figure 1 places an optional proxy between server and client: "a high-end
machine with the ability to process the video stream in real-time,
on-the-fly (example in videoconferencing).  Note that for our scheme
either the proxy or the server node suffices."

Unlike the server, the proxy cannot profile a whole clip in advance — live
content arrives frame by frame.  It therefore works in *chunks*: buffer a
window of frames, run the full annotation pipeline on the window, emit the
window's annotation packet followed by its compensated frames.  Chunking
trades a little optimality (scenes cannot span chunk boundaries) and adds
one chunk of latency, which the proxy-vs-server ablation benchmark
quantifies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.engine import EngineSpec
from ..core.pipeline import AnnotatedStream, AnnotationPipeline
from ..core.policies import PolicySpec
from ..core.policy import SchemeParameters
from ..core.profile_cache import ProfileCache, shared_profile_cache
from ..display.devices import DeviceProfile
from ..telemetry import registry as telemetry_registry, trace
from ..video.chunks import HeterogeneousFrameError
from ..video.clip import VideoClip
from ..video.frame import Frame
from .packets import MediaPacket, annotation_packet, frame_packet


class TranscodingProxy:
    """Annotates and compensates a live frame stream in fixed chunks.

    Parameters
    ----------
    device:
        The client's device profile (known from session negotiation).
    params:
        Scheme parameters; the scene rate limiter applies within chunks.
    chunk_frames:
        Buffered window length.  Must be at least the scene interval or
        every chunk degenerates to a single scene.
    engine:
        Execution engine for the per-window profiling pass (``None``, a
        kind name, or an :class:`~repro.core.engine.EngineConfig`).
    profile_cache:
        Content-keyed profile cache; defaults to the process-wide shared
        cache so that re-streaming identical content (or a co-resident
        server holding the same pixels) reuses the profiling pass.
    policy:
        The :class:`~repro.core.policies.BacklightPolicy` used per window
        (``None``, a registered name, or an instance).
    """

    def __init__(
        self,
        device: DeviceProfile,
        params: SchemeParameters = SchemeParameters(),
        chunk_frames: int = 60,
        engine: EngineSpec = None,
        profile_cache: Optional[ProfileCache] = None,
        policy: PolicySpec = None,
    ):
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        self.device = device
        self.params = params
        self.chunk_frames = chunk_frames
        if profile_cache is None:
            profile_cache = shared_profile_cache()
        self._pipeline = AnnotationPipeline(
            params, engine=engine, profile_cache=profile_cache, policy=policy
        )
        reg = telemetry_registry()
        self._windows_counter = reg.counter(
            "repro_proxy_windows_total", help="Live windows annotated by proxies.",
        )
        self._frames_counter = reg.counter(
            "repro_proxy_frames_total", help="Live frames transcoded by proxies.",
        )

    # ------------------------------------------------------------------
    def _chunks(self, frames: Iterable[Frame]) -> Iterator[List[Frame]]:
        chunk: List[Frame] = []
        for frame in frames:
            chunk.append(frame)
            if len(chunk) == self.chunk_frames:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    @staticmethod
    def _compensated(stream: AnnotatedStream) -> Iterator[Tuple[Frame, int, float]]:
        """``(frame, level, gain)`` triples, compensated chunk-at-a-time.

        Windows that mix frame resolutions finish through the per-frame
        reference path (same output, just unbatched).
        """
        produced = 0
        try:
            for chunk in stream.iter_chunks():
                for k in range(len(chunk)):
                    yield chunk.frame(k), int(chunk.levels[k]), float(chunk.gains[k])
                produced = chunk.stop
        except HeterogeneousFrameError:
            levels = stream.backlight_levels()
            gains = stream.track.per_frame_gains()
            for i in range(produced, stream.frame_count):
                yield stream.compensated_frame(i).frame, int(levels[i]), float(gains[i])

    def annotate_live(
        self, frames: Iterable[Frame], fps: float, name: str = "live"
    ) -> Iterator[Tuple[Frame, int, float]]:
        """Yield ``(compensated_frame, backlight_level, gain)`` per frame.

        The convenience form for in-process pipelines (no packets).
        Output frame indices are globally consecutive.
        """
        out_index = 0
        for chunk in self._chunks(frames):
            with trace("proxy.window"):
                clip = VideoClip(chunk, fps=fps, name=name)
                stream = self._pipeline.build_stream(clip, self.device)
            self._windows_counter.inc()
            self._frames_counter.inc(len(chunk))
            for frame, level, gain in self._compensated(stream):
                frame.index = out_index
                yield frame, level, gain
                out_index += 1

    def process(
        self, frames: Iterable[Frame], fps: float, name: str = "live"
    ) -> Iterator[MediaPacket]:
        """Packetized form: per chunk, one annotation packet then frames.

        Annotation packets carry a chunk-local device track; the client
        stitches consecutive chunks back together (frame packets carry
        global indices, so ordering is unambiguous).
        """
        seq = 0
        out_index = 0
        for chunk in self._chunks(frames):
            with trace("proxy.window"):
                clip = VideoClip(chunk, fps=fps, name=name)
                stream = self._pipeline.build_stream(clip, self.device)
            self._windows_counter.inc()
            self._frames_counter.inc(len(chunk))
            yield annotation_packet(seq, stream.track.to_bytes())
            seq += 1
            for frame, _level, _gain in self._compensated(stream):
                frame.index = out_index
                yield frame_packet(seq, frame, frame_index=out_index)
                seq += 1
                out_index += 1

    # ------------------------------------------------------------------
    def chunk_latency_s(self, fps: float) -> float:
        """Extra buffering delay the proxy introduces."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        return self.chunk_frames / fps
