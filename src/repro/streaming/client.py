"""The mobile client.

The paper's point is how little the client does: "The only extra operation
that the device has to perform during playback is to adjust the backlight
level periodically, according to the annotations in the video stream."
The client here does exactly that — it parses annotation packets into a
per-frame backlight schedule, displays the (already compensated) frames,
and lets the backlight controller apply the levels.  Power is accounted
per frame with the decoder and radio models.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..core.annotation import DeviceAnnotationTrack
from ..core.dvfs_annotation import DvfsTrack
from ..display.devices import DeviceProfile
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..player.backlight_control import BacklightController
from ..player.decoder import DecoderModel
from ..player.playback import PlaybackResult
from ..power.dvfs import DvfsCpuModel
from ..power.model import ActivityState, DevicePowerModel
from ..telemetry import registry as telemetry_registry
from .network import DeliverySchedule
from .packets import MediaPacket, PacketType
from .session import ClientCapabilities, SessionDescription, SessionRequest


class StreamProtocolError(ValueError):
    """The packet stream violated the expected layout."""


class MobileClient:
    """A PDA receiving and playing an annotated stream.

    Parameters
    ----------
    device:
        The handheld's profile; advertised during negotiation.
    decoder:
        Decoder timing model.
    min_switch_interval_s:
        Backlight controller guard interval.
    """

    def __init__(
        self,
        device: DeviceProfile,
        decoder: Optional[DecoderModel] = None,
        min_switch_interval_s: float = 0.0,
    ):
        self.device = device
        self.decoder = decoder if decoder is not None else DecoderModel()
        self.min_switch_interval_s = min_switch_interval_s
        self.power_model = DevicePowerModel(device)
        reg = telemetry_registry()
        self._packets_counter = reg.counter(
            "repro_client_packets_total", help="Stream packets consumed by clients.",
        )
        self._frames_played_counter = reg.counter(
            "repro_client_frames_played_total",
            help="Frames played back by clients.",
        )

    # ------------------------------------------------------------------
    def capabilities(self) -> ClientCapabilities:
        """What this client advertises during negotiation."""
        return ClientCapabilities(device_name=self.device.name)

    def request(self, clip_name: str, quality: float) -> SessionRequest:
        """Build the session request for a clip at a user-chosen quality."""
        return SessionRequest(
            clip_name=clip_name, quality=quality, capabilities=self.capabilities()
        )

    # ------------------------------------------------------------------
    def _stitch_levels(self, tracks: List[DeviceAnnotationTrack], frame_count: int) -> np.ndarray:
        """Concatenate chunk tracks into one per-frame level schedule."""
        levels = np.concatenate([t.per_frame_levels() for t in tracks])
        if levels.size != frame_count:
            raise StreamProtocolError(
                f"annotations cover {levels.size} frames but {frame_count} arrived"
            )
        return levels

    @staticmethod
    def _stitch_dvfs(tracks: List[DvfsTrack], frame_count: int) -> np.ndarray:
        """Concatenate chunk DVFS tracks into one per-frame cycles array."""
        cycles = np.concatenate([t.per_frame_cycles() for t in tracks])
        if cycles.size != frame_count:
            raise StreamProtocolError(
                f"DVFS annotations cover {cycles.size} frames but {frame_count} arrived"
            )
        return cycles

    def play_stream(
        self,
        session: SessionDescription,
        packets: Iterable[MediaPacket],
        delivery: Optional[DeliverySchedule] = None,
        network_duty: float = 0.8,
        cpu: Optional[DvfsCpuModel] = None,
    ) -> PlaybackResult:
        """Consume a packet stream and play it back.

        Parameters
        ----------
        session:
            The negotiated session (fps, expected frame count).
        packets:
            Annotation packet(s) and frame packets.  Annotation packets
            must precede the frames they cover; frame packets must arrive
            in presentation order.  A backlight annotation arriving
            *after* frames is a mid-stream re-bind (``requality``): a
            full replacement track whose levels apply from the next
            frame onward.  Annotation payloads are dispatched on
            their magic: backlight tracks (``AND1``/``AND2``) are mandatory;
            decode-complexity tracks (``ANC1``) are honored when a DVFS
            CPU model is supplied and ignored otherwise.
        delivery:
            Optional network delivery schedule; when given, the client
            radio duty is derived from actual wireless busy time instead
            of ``network_duty``.
        network_duty:
            Fallback radio duty cycle while streaming.
        cpu:
            Optional DVFS CPU model; with DVFS annotations present, the
            CPU runs at the annotated operating point per scene.
        """
        if session.device_name != self.device.name:
            raise StreamProtocolError(
                f"session bound to {session.device_name!r}, this client is "
                f"{self.device.name!r}"
            )
        tracks: List[DeviceAnnotationTrack] = []
        rebinds: List = []  # (effective_frame, replacement_track)
        dvfs_tracks: List[DvfsTrack] = []
        frames = []
        packet_count = 0
        expected_index = 0
        covered = 0  # frames covered by the stitched tracks so far
        for packet in packets:
            packet_count += 1
            if packet.ptype is PacketType.ANNOTATION:
                magic = packet.payload[:4]
                if magic in (b"AND1", b"AND2"):
                    track = DeviceAnnotationTrack.from_bytes(
                        packet.payload,
                        clip_name=session.clip_name,
                        device_name=session.device_name,
                    )
                    if expected_index and covered > expected_index:
                        # Coverage already runs past the delivered frames,
                        # so this is not the next stitching chunk: it is a
                        # mid-stream re-bind (requality) — a full
                        # replacement track applying from the next frame.
                        rebinds.append((expected_index, track))
                    else:
                        tracks.append(track)
                        covered += track.per_frame_levels().size
                elif magic == b"ANC1":
                    dvfs_tracks.append(
                        DvfsTrack.from_bytes(packet.payload, clip_name=session.clip_name)
                    )
                else:
                    raise StreamProtocolError(
                        f"unknown annotation payload magic {magic!r}"
                    )
            elif packet.ptype is PacketType.FRAME:
                if packet.frame_index != expected_index:
                    raise StreamProtocolError(
                        f"frame {packet.frame_index} arrived, expected {expected_index}"
                    )
                frames.append(packet.frame)
                expected_index += 1
            # CONTROL packets are negotiation traffic; nothing to do here.
        if not tracks:
            raise StreamProtocolError("no annotation packet arrived before playback")
        if not frames:
            raise StreamProtocolError("stream carried no frames")
        # One batched bump per stream, not one per packet — the playback
        # loop below stays free of per-frame telemetry calls.
        self._packets_counter.inc(packet_count)
        self._frames_played_counter.inc(len(frames))
        levels = self._stitch_levels(tracks, len(frames))
        for start, track in rebinds:
            replacement = track.per_frame_levels()
            if replacement.size != len(frames):
                raise StreamProtocolError(
                    f"re-bound annotation covers {replacement.size} frames "
                    f"but {len(frames)} arrived"
                )
            levels[start:] = replacement[start:]

        use_dvfs = cpu is not None and dvfs_tracks
        if use_dvfs:
            annotated_cycles = self._stitch_dvfs(dvfs_tracks, len(frames))

        duty = network_duty
        if delivery is not None:
            duty = delivery.radio_duty(len(frames) / session.fps)

        period = 1.0 / session.fps
        controller = BacklightController(
            self.device.backlight, min_switch_interval_s=self.min_switch_interval_s
        )
        n = len(frames)
        applied = np.empty(n, dtype=np.int64)
        cpu_loads = np.empty(n)
        power = np.empty(n)
        baseline_power = np.empty(n)
        dropped = 0
        for i, frame in enumerate(frames):
            applied[i] = controller.request(i * period, int(levels[i]))
            activity = ActivityState(cpu_load=0.0, network_duty=duty)
            if use_dvfs:
                point = cpu.slowest_level_for(float(annotated_cycles[i]), period)
                true_cycles = self.decoder.decode_time_s(frame) * self.decoder.cpu_hz
                cpu_loads[i] = min(true_cycles / (point.hz * period), 1.0)
                if true_cycles > point.hz * period + 1e-9:
                    dropped += 1
                cpu_power = cpu.energy_per_frame_j(point, true_cycles, period) / period
                non_cpu = float(
                    self.power_model.total_power(activity, int(applied[i]))
                ) - self.device.power.cpu_idle_w
                non_cpu_base = float(
                    self.power_model.total_power(activity, MAX_BACKLIGHT_LEVEL)
                ) - self.device.power.cpu_idle_w
                power[i] = non_cpu + cpu_power
                baseline_power[i] = non_cpu_base + cpu_power
            else:
                cpu_loads[i] = self.decoder.cpu_load(frame, period)
                if not self.decoder.can_sustain(frame, session.fps):
                    dropped += 1
                activity = ActivityState(
                    cpu_load=float(cpu_loads[i]), network_duty=duty
                )
                power[i] = float(
                    self.power_model.total_power(activity, int(applied[i]))
                )
                baseline_power[i] = float(
                    self.power_model.total_power(activity, MAX_BACKLIGHT_LEVEL)
                )
        return PlaybackResult(
            device_name=self.device.name,
            clip_name=session.clip_name,
            fps=session.fps,
            applied_levels=applied,
            cpu_loads=cpu_loads,
            per_frame_power_w=power,
            baseline_power_w=baseline_power,
            switch_count=controller.switch_count,
            dropped_deadline_count=dropped,
        )
