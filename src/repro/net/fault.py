"""Deterministic fault injection: a lossy TCP relay between client and server.

Robustness of the transport (retry, CRC recovery, truncation handling)
must be testable without a flaky network.  :class:`LossyTransport` listens
on its own port, forwards every connection to an upstream
:class:`~repro.net.server.AnnotationStreamServer`, and injects faults at
*record* boundaries in the server→client direction:

* **delay**    — sleep before forwarding a record (store-and-forward
  serialization time, parameterized from a
  :class:`~repro.streaming.network.Link`);
* **drop**     — swallow a whole record (the client sees a seq/frame gap);
* **corrupt**  — flip one body byte (the client sees a CRC mismatch);
* **truncate** — forward a partial record and close the connection;
* **kill**     — abort the connection at a record boundary (the client
  sees a reset mid-stream and must reconnect — the scenario session
  resume exists for).  ``kill_after_records`` kills deterministically
  after exactly N forwarded records; ``kill_rate`` kills randomly;
* **stall**    — stop forwarding for ``stall_s`` before a record (the
  client's read timeout fires on a connection that is still "open").

Faults draw from a seeded :class:`random.Random` and honor a
``max_faults`` budget, after which the relay becomes transparent — so a
retrying client *always* converges, and a test run is reproducible from
its seed.  Client→server bytes are forwarded untouched (the hello fits
one record; faulting it only exercises the same retry path twice).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..streaming.network import Link
from ..telemetry import registry as telemetry_registry
from .codec import WIRE_HEADER_BYTES, _parse_header


@dataclass(frozen=True)
class FaultSpec:
    """Per-record fault probabilities and delays for a lossy hop.

    Rates are independent probabilities evaluated per forwarded record
    (kill, then stall, then drop, then corrupt, then truncate).
    ``delay_s`` is a fixed store-and-forward latency per record and
    ``delay_per_byte_s`` scales with record size — :meth:`from_link`
    derives both from a link model.  ``kill_after_records`` aborts each
    connection deterministically after exactly N forwarded records (the
    reconnect-with-resume scenario); ``stall_s`` is how long a stall
    fault freezes the relay.  ``max_faults`` bounds the total number of
    injected faults (delays not counted); ``None`` means unbounded.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.0
    kill_after_records: Optional[int] = None
    delay_s: float = 0.0
    delay_per_byte_s: float = 0.0
    max_faults: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        for name in ("drop_rate", "corrupt_rate", "truncate_rate",
                     "kill_rate", "stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_s < 0 or self.delay_per_byte_s < 0:
            raise ValueError("delays must be non-negative")
        if self.stall_s < 0:
            raise ValueError("stall_s must be non-negative")
        if self.kill_after_records is not None and self.kill_after_records < 0:
            raise ValueError("kill_after_records must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")

    @classmethod
    def from_link(
        cls,
        link: Link,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        truncate_rate: float = 0.0,
        max_faults: Optional[int] = None,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> "FaultSpec":
        """Derive delays from a link model's latency and bandwidth.

        ``time_scale`` compresses simulated time so that an 802.11b hop
        does not make a test take wall-clock minutes (0.01 charges 1% of
        the modeled serialization delay).
        """
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        return cls(
            drop_rate=drop_rate,
            corrupt_rate=corrupt_rate,
            truncate_rate=truncate_rate,
            delay_s=link.latency_s * time_scale,
            delay_per_byte_s=8.0 / link.bandwidth_bps * time_scale,
            max_faults=max_faults,
            seed=seed,
        )


class LossyTransport:
    """A fault-injecting TCP relay in front of an upstream server.

    Usage::

        async with LossyTransport(host, port, spec) as lossy:
            packets = await client.fetch(*lossy.address, "clip", 0.1)

    The relay parses the server→client byte stream into wire records so
    faults land on record boundaries (a dropped record, not a dropped TCP
    segment), keeping every failure mode the codec can actually name.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        spec: FaultSpec = FaultSpec(),
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.spec = spec
        self.host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._rng = random.Random(spec.seed)
        self._faults_injected = 0
        self._faults_counter = telemetry_registry().counter(
            "repro_net_faults_injected_total",
            help="Faults injected by LossyTransport relays.",
        )

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        if self._server is None:
            raise RuntimeError("transport is not started")
        return self.host, self._port

    @property
    def faults_injected(self) -> int:
        """Total faults injected so far (drops + corruptions + truncations)."""
        return self._faults_injected

    async def start(self) -> Tuple[str, int]:
        """Bind the relay socket; returns the client-facing address."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def close(self) -> None:
        """Stop accepting and tear the relay down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "LossyTransport":
        """Start the relay on ``async with`` entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Close the relay on ``async with`` exit."""
        await self.close()

    # ------------------------------------------------------------------
    def _take_fault(self, rate: float) -> bool:
        """Decide one fault, honoring the ``max_faults`` budget."""
        budget = self.spec.max_faults
        if budget is not None and self._faults_injected >= budget:
            return False
        if self._rng.random() >= rate:
            return False
        self._faults_injected += 1
        self._faults_counter.inc()
        return True

    async def _delay(self, nbytes: int) -> None:
        delay = self.spec.delay_s + self.spec.delay_per_byte_s * nbytes
        if delay > 0:
            await asyncio.sleep(delay)

    async def _pump_client_to_server(self, reader, writer) -> None:
        """Forward client bytes upstream verbatim."""
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _pump_server_to_client(self, reader, writer) -> bool:
        """Forward server records with faults; returns False when the
        relay cut the connection (truncation or kill)."""
        forwarded = 0
        while True:
            header = await reader.read(WIRE_HEADER_BYTES)
            if not header:
                return True
            while len(header) < WIRE_HEADER_BYTES:
                more = await reader.read(WIRE_HEADER_BYTES - len(header))
                if not more:  # upstream died mid-header; pass it through
                    writer.write(header)
                    await writer.drain()
                    return True
                header += more
            head = _parse_header(header)
            body = await reader.readexactly(head.body_len)
            record = header + body
            await self._delay(len(record))
            if (
                self.spec.kill_after_records is not None
                and forwarded >= self.spec.kill_after_records
                and self._take_fault(1.0)
            ):
                writer.transport.abort()
                return False
            if self._take_fault(self.spec.kill_rate):
                writer.transport.abort()
                return False
            if self._take_fault(self.spec.stall_rate):
                await asyncio.sleep(self.spec.stall_s)
            if self._take_fault(self.spec.drop_rate):
                continue
            if self._take_fault(self.spec.corrupt_rate):
                mutable = bytearray(record)
                pos = self._rng.randrange(WIRE_HEADER_BYTES, len(record)) \
                    if head.body_len else self._rng.randrange(len(record))
                mutable[pos] ^= 0xFF
                record = bytes(mutable)
            if self._take_fault(self.spec.truncate_rate):
                cut = self._rng.randrange(1, len(record))
                writer.write(record[:cut])
                await writer.drain()
                return False
            writer.write(record)
            await writer.drain()
            forwarded += 1

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            writer.close()
            return
        uplink = asyncio.ensure_future(
            self._pump_client_to_server(reader, up_writer)
        )
        try:
            await self._pump_server_to_client(up_reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError, ValueError):
            pass  # upstream vanished or emitted garbage; drop the session
        finally:
            uplink.cancel()
            try:
                await uplink
            except (asyncio.CancelledError, Exception):
                pass
            for w in (writer, up_writer):
                try:
                    w.close()
                except Exception:
                    pass
            try:
                await writer.wait_closed()
            except Exception:
                pass
