"""Binary wire codec for :class:`~repro.streaming.packets.MediaPacket`.

Every packet becomes one length-prefixed record with a fixed 32-byte
header — exactly the ``PACKET_HEADER_BYTES`` the network model has always
charged per packet, so a record's on-the-wire length equals
``MediaPacket.size_bytes`` (modulo an explicit ``wire_bytes`` override,
which models an encoded bitstream while raw pixels travel in-process).

Wire record layout (little-endian, 32-byte header followed by the body)::

    offset  size  field
    0       4     magic            b"ANW1"
    4       1     version          1
    5       1     packet type      1=control, 2=annotation, 3=frame
    6       2     flags            must be 0 in version 1
    8       4     seq              packet sequence number
    12      4     body length      bytes following the header
    16      4     frame index      0xFFFFFFFF when absent
    20      2     frame height     0 for non-frame packets
    22      2     frame width      0 for non-frame packets
    24      4     wire-bytes hint  0xFFFFFFFF when absent
    28      4     CRC32            over header[0:28] + body

Bodies: control and annotation packets carry their payload bytes verbatim
(annotation payloads are already the RLE/varint-compressed track format of
:mod:`repro.core.annotation`); frame packets carry the raw ``(H, W, 3)``
uint8 pixel block.  :func:`encode_packet` returns the header and the pixel
buffer as separate buffers so frame payloads are written zero-copy.

Any malformed input — bad magic, unknown version/type, length or geometry
mismatch, CRC failure, truncation — raises :class:`WireFormatError`, a
:class:`~repro.streaming.client.StreamProtocolError` subclass, never a
crash or a hang.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Union

import numpy as np

from ..streaming.client import StreamProtocolError
from ..streaming.packets import PACKET_HEADER_BYTES, MediaPacket, PacketType
from ..video.frame import Frame

#: Record magic — "ANnotation Wire, version 1 family".
WIRE_MAGIC = b"ANW1"
#: Current (only) wire format version.
WIRE_VERSION = 1
#: Fixed header size; by construction identical to the model's charge.
WIRE_HEADER_BYTES = PACKET_HEADER_BYTES

#: ``<magic, version, ptype, flags, seq, body_len, frame_index, h, w,
#: wire_bytes, crc32>``
_HEADER = struct.Struct("<4sBBHIIIHHII")
assert _HEADER.size == WIRE_HEADER_BYTES, "wire header must match the model charge"

#: Sentinel for "field absent" in the u32 frame-index / wire-bytes slots.
_ABSENT = 0xFFFFFFFF

#: Upper bound on a record body; a corrupt length field must never make a
#: reader allocate gigabytes or block forever on bytes that never come.
MAX_BODY_BYTES = 64 * 1024 * 1024

_TYPE_CODES = {
    PacketType.CONTROL: 1,
    PacketType.ANNOTATION: 2,
    PacketType.FRAME: 3,
}
_CODE_TYPES = {code: ptype for ptype, code in _TYPE_CODES.items()}


class WireFormatError(StreamProtocolError):
    """The byte stream is not a valid wire record sequence."""


def _frame_body(frame: Frame) -> memoryview:
    """The frame's pixel block as a flat byte view (zero-copy when contiguous)."""
    pixels = frame.pixels
    if not pixels.flags["C_CONTIGUOUS"]:
        pixels = np.ascontiguousarray(pixels)
    return memoryview(pixels).cast("B")


def encode_packet(packet: MediaPacket) -> List[Union[bytes, memoryview]]:
    """Encode a packet as ``[header, body]`` buffers.

    Frame bodies are returned as a memoryview over the pixel array —
    no copy is made; pass the list straight to ``StreamWriter.write``
    (via :func:`encode_packet_bytes` or ``writer.writelines``).
    """
    if packet.seq > _ABSENT - 1:
        raise WireFormatError(f"seq {packet.seq} exceeds the u32 wire field")
    if packet.ptype is PacketType.FRAME:
        frame = packet.frame
        if frame.height > 0xFFFF or frame.width > 0xFFFF:
            raise WireFormatError(
                f"frame geometry {frame.height}x{frame.width} exceeds u16 wire fields"
            )
        body: Union[bytes, memoryview] = _frame_body(frame)
        frame_index = packet.frame_index
        height, width = frame.height, frame.width
    else:
        body = packet.payload
        frame_index = None
        height = width = 0
    if len(body) > MAX_BODY_BYTES:
        raise WireFormatError(f"body of {len(body)} bytes exceeds MAX_BODY_BYTES")
    wire_bytes = packet.wire_bytes
    if wire_bytes is not None and wire_bytes > _ABSENT - 1:
        raise WireFormatError(f"wire_bytes {wire_bytes} exceeds the u32 wire field")
    prefix = _HEADER.pack(
        WIRE_MAGIC,
        WIRE_VERSION,
        _TYPE_CODES[packet.ptype],
        0,
        packet.seq,
        len(body),
        _ABSENT if frame_index is None else frame_index,
        height,
        width,
        _ABSENT if wire_bytes is None else wire_bytes,
        0,
    )
    crc = zlib.crc32(body, zlib.crc32(prefix[:-4]))
    header = prefix[:-4] + struct.pack("<I", crc)
    return [header, body]


def encode_packet_bytes(packet: MediaPacket) -> bytes:
    """Encode a packet as one contiguous byte string (copies the body)."""
    header, body = encode_packet(packet)
    return bytes(header) + bytes(body)


def wire_size(packet: MediaPacket) -> int:
    """Actual record length on the wire: header plus raw body.

    Equal to :attr:`~repro.streaming.packets.MediaPacket.size_bytes`
    except when ``wire_bytes`` overrides the *modeled* body size.
    """
    if packet.ptype is PacketType.FRAME:
        return WIRE_HEADER_BYTES + packet.frame.pixels.nbytes
    return WIRE_HEADER_BYTES + len(packet.payload)


@dataclass(frozen=True)
class _ParsedHeader:
    """Validated header fields of one wire record."""

    ptype: PacketType
    seq: int
    body_len: int
    frame_index: Optional[int]
    height: int
    width: int
    wire_bytes: Optional[int]
    crc32: int
    crc_seed: int  # CRC state after the header prefix, to resume over the body


def _parse_header(buf: Union[bytes, memoryview]) -> _ParsedHeader:
    if len(buf) < WIRE_HEADER_BYTES:
        raise WireFormatError(
            f"truncated header: {len(buf)} of {WIRE_HEADER_BYTES} bytes"
        )
    header = bytes(buf[:WIRE_HEADER_BYTES])
    (magic, version, type_code, flags, seq, body_len,
     frame_index, height, width, wire_bytes, crc) = _HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad record magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    if flags != 0:
        raise WireFormatError(f"unknown flags 0x{flags:04x} in version 1")
    ptype = _CODE_TYPES.get(type_code)
    if ptype is None:
        raise WireFormatError(f"unknown packet type code {type_code}")
    if body_len > MAX_BODY_BYTES:
        raise WireFormatError(f"body length {body_len} exceeds MAX_BODY_BYTES")
    if ptype is PacketType.FRAME:
        if frame_index == _ABSENT:
            raise WireFormatError("frame record without a frame index")
        if height == 0 or width == 0:
            raise WireFormatError("frame record with zero geometry")
        if body_len != height * width * 3:
            raise WireFormatError(
                f"frame body of {body_len} bytes does not match "
                f"{height}x{width}x3 geometry"
            )
    else:
        if frame_index != _ABSENT:
            raise WireFormatError(f"{ptype.value} record with a frame index")
        if height != 0 or width != 0:
            raise WireFormatError(f"{ptype.value} record with frame geometry")
        if body_len == 0 and ptype is PacketType.ANNOTATION:
            raise WireFormatError("annotation record with an empty body")
    return _ParsedHeader(
        ptype=ptype,
        seq=seq,
        body_len=body_len,
        frame_index=None if frame_index == _ABSENT else frame_index,
        height=height,
        width=width,
        wire_bytes=None if wire_bytes == _ABSENT else wire_bytes,
        crc32=crc,
        crc_seed=zlib.crc32(header[:-4]),
    )


def _build_packet(head: _ParsedHeader, body: Union[bytes, memoryview]) -> MediaPacket:
    if len(body) != head.body_len:
        raise WireFormatError(
            f"truncated body: {len(body)} of {head.body_len} bytes"
        )
    if zlib.crc32(body, head.crc_seed) != head.crc32:
        raise WireFormatError("CRC32 mismatch: record corrupted in transit")
    try:
        if head.ptype is PacketType.FRAME:
            pixels = np.frombuffer(body, dtype=np.uint8).reshape(
                head.height, head.width, 3
            )
            return MediaPacket(
                seq=head.seq,
                ptype=PacketType.FRAME,
                frame=Frame(pixels.copy(), index=head.frame_index),
                frame_index=head.frame_index,
                wire_bytes=head.wire_bytes,
            )
        return MediaPacket(
            seq=head.seq,
            ptype=head.ptype,
            payload=bytes(body),
            wire_bytes=head.wire_bytes,
        )
    except ValueError as exc:  # MediaPacket invariant violations
        raise WireFormatError(f"invalid packet fields on the wire: {exc}") from exc


def decode_packet(data: Union[bytes, memoryview]) -> MediaPacket:
    """Decode exactly one wire record; trailing bytes are an error."""
    head = _parse_header(data)
    body = memoryview(data)[WIRE_HEADER_BYTES:]
    if len(body) > head.body_len:
        raise WireFormatError(
            f"{len(body) - head.body_len} trailing bytes after the record"
        )
    return _build_packet(head, body)


async def read_packet(
    reader: asyncio.StreamReader,
    timings: Optional[dict] = None,
) -> Optional[MediaPacket]:
    """Read one record from an asyncio stream.

    Returns ``None`` on a clean EOF at a record boundary; raises
    :class:`WireFormatError` on truncation mid-record or any header/CRC
    violation.  Callers own read timeouts (``asyncio.wait_for``).

    ``timings`` (when given) receives a ``decode_s`` increment covering
    the CPU cost of header parsing, CRC verification and packet
    construction — the socket wait itself is excluded — so callers can
    aggregate per-record decode cost into one ``net.decode`` span.
    """
    try:
        header = await reader.readexactly(WIRE_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from exc
    if timings is None:
        head = _parse_header(header)
    else:
        t0 = perf_counter()
        head = _parse_header(header)
        timings["decode_s"] = timings.get("decode_s", 0.0) + perf_counter() - t0
    try:
        body = await reader.readexactly(head.body_len)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"connection closed mid-body ({len(exc.partial)} of "
            f"{head.body_len} bytes)"
        ) from exc
    if timings is None:
        return _build_packet(head, body)
    t0 = perf_counter()
    packet = _build_packet(head, body)
    timings["decode_s"] += perf_counter() - t0
    return packet
