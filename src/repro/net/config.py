"""Config objects for the wire layer: :class:`ServeConfig` and
:class:`FetchOptions`.

The serve and fetch entry points each grew a long tail of keyword
arguments (admission control, resume, drain, batching, compute slots on
the serve side; timeouts, retry policy, resume, circuit breaking on the
fetch side).  Threading a dozen loose kwargs through the facade, the
CLI and every fleet worker invites drift — a flag added to one path and
forgotten on another.  These two frozen dataclasses are the single
source of truth:

* :class:`ServeConfig` — everything an
  :class:`~repro.net.server.AnnotationStreamServer` needs beyond its
  catalog and bind address.  The facade
  (:meth:`repro.api.StreamingService.serve`), ``repro serve`` and every
  :mod:`repro.fleet` worker all build (or accept) one of these, so a
  fleet shard is guaranteed to run the exact policy the foreground
  server would.
* :class:`FetchOptions` — everything an
  :class:`~repro.net.client.AsyncMobileClient` needs beyond the device:
  the one definition behind ``fetch`` / ``fetch_sync`` /
  ``fetch_stream`` / ``fetch_stream_sync``.

Both are frozen: validated once in ``__post_init__``, then shared
freely across threads, event loops and (for :class:`ServeConfig`)
pickled into worker processes.  Derive variants with :meth:`replace`.

The old per-call keyword spellings keep working through deprecation
shims on the call sites; new code should construct a config object.
"""

from __future__ import annotations

import dataclasses
import os
import random
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..display.devices import DeviceProfile
    from .client import AsyncMobileClient, CircuitBreaker

__all__ = ["ServeConfig", "FetchOptions"]


@dataclass(frozen=True)
class ServeConfig:
    """Serving policy for one :class:`~repro.net.server.AnnotationStreamServer`.

    Groups the knobs that used to sprawl across
    ``AnnotationStreamServer.__init__`` /
    :meth:`repro.api.StreamingService.serve` keyword lists.  Frozen and
    picklable, so one instance can parameterize the facade, the CLI and
    every :mod:`repro.fleet` worker process identically.

    Parameters
    ----------
    queue_depth:
        Bound of each session's send queue, in records (producer ↔
        socket backpressure coupling).  Must be >= 1.
    hello_timeout_s:
        How long a fresh connection may take to present its opening
        control message before the server hangs up.
    max_sessions:
        Admission-control cap on concurrently served sessions.  ``None``
        (default) means uncapped.  Must be >= 1 when set.
    accept_queue:
        Over-cap connections allowed to wait for a slot before the
        server sheds load with ``busy`` messages.
    accept_timeout_s:
        How long a queued connection waits for a slot before being shed.
    busy_retry_after_s:
        The retry-after hint carried by ``busy`` messages.
    resume_window_s:
        How long a dropped session stays resumable via its token
        (0 disables resume).
    portable_tokens:
        Issue *portable* resume tokens that embed the session request
        (clip, quality, device) instead of opaque random ids.  Any
        server holding the same deterministic catalog can then adopt
        the token after the issuing process dies and replay the stream
        byte-identically — the failover mechanism of the sharded fleet
        (:mod:`repro.fleet`).  Off by default: portable tokens reveal
        the session parameters to anyone who sees the token.
    drain_timeout_s:
        Default deadline for the server's graceful
        :meth:`~repro.net.server.AnnotationStreamServer.drain`.
    batch_records / batch_bytes:
        Flush thresholds for the producer's coalesced wire batches
        (records / buffered bytes).  Both must be >= 1.
    compute_slots:
        How many producer threads may run their CPU-bound stage at
        once, across all sessions.  ``None`` defaults to the host's
        core count at server construction.  Must be >= 1 when set.
    ambient:
        Optional serve-time ambient spec: a preset name
        (``"office"``), numeric illuminance, or a simulated
        light-sensor trace (``"0:dark-room,30:office"``).  Every
        session's scenes are then bound under the trace's condition at
        the scene's start time (see
        :func:`repro.display.bind_with_ambient_trace`).  ``None``
        (default) keeps the classic dark-room binding.

    Raises
    ------
    ValueError
        If any numeric parameter is out of range.
    """

    queue_depth: int = 32
    hello_timeout_s: float = 10.0
    max_sessions: Optional[int] = None
    accept_queue: int = 0
    accept_timeout_s: float = 5.0
    busy_retry_after_s: float = 0.25
    resume_window_s: float = 60.0
    portable_tokens: bool = False
    drain_timeout_s: float = 10.0
    batch_records: int = 32
    batch_bytes: int = 1 << 20
    compute_slots: Optional[int] = None
    ambient: Optional[str] = None

    def __post_init__(self):
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.ambient is not None:
            # Validate eagerly: a bad spec should fail at config build,
            # not on the first session.  Imported lazily to keep this
            # module import-light for worker pickling.
            from ..display.ambient import as_ambient_trace

            as_ambient_trace(self.ambient)
        if self.batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        if self.batch_bytes < 1:
            raise ValueError("batch_bytes must be >= 1")
        if self.compute_slots is not None and self.compute_slots < 1:
            raise ValueError("compute_slots must be >= 1 when set")
        if self.hello_timeout_s <= 0:
            raise ValueError("hello_timeout_s must be positive")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 when set")
        if self.accept_queue < 0:
            raise ValueError("accept_queue must be non-negative")
        if self.accept_timeout_s <= 0:
            raise ValueError("accept_timeout_s must be positive")
        if self.busy_retry_after_s < 0:
            raise ValueError("busy_retry_after_s must be non-negative")
        if self.resume_window_s < 0:
            raise ValueError("resume_window_s must be non-negative")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")

    def replace(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def resolved_compute_slots(self) -> int:
        """``compute_slots`` with the host-core-count default applied."""
        if self.compute_slots is not None:
            return self.compute_slots
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class FetchOptions:
    """Client-side fetch policy for one or more wire fetches.

    The single definition behind the facade's fetch family
    (:func:`repro.api.fetch_stream`, :func:`repro.api.fetch_stream_sync`,
    :meth:`repro.api.StreamingService.fetch`,
    :meth:`repro.api.StreamingService.fetch_sync`): each of those is a
    thin wrapper that builds an
    :class:`~repro.net.client.AsyncMobileClient` from one of these via
    :meth:`client`.

    Parameters
    ----------
    connect_timeout_s / read_timeout_s:
        Deadline for establishing a connection / for each record read.
    max_retries:
        How many times a failed fetch is re-attempted (0 = single shot).
    backoff_base_s / backoff_max_s / jitter_s:
        Exponential backoff: attempt ``k`` sleeps
        ``min(base * 2**k, max) + uniform(0, jitter)``.
    rng:
        Jitter source; pass a seeded :class:`random.Random` for
        deterministic schedules in tests.  ``None`` uses a fresh
        unseeded generator per client.
    resume:
        When True (default), a mid-stream drop reconnects with the
        server-issued resume token instead of refetching from scratch.
    circuit_breaker:
        Optional :class:`~repro.net.client.CircuitBreaker` shared across
        fetches; ``None`` disables fail-fast behavior.
    battery_trace:
        Optional battery load spec (``"t:watts,..."`` or a bare wattage,
        a :class:`repro.power.LoadTrace` spec).  Enables the
        battery-aware client (:class:`~repro.net.client.BatteryClient`):
        as the modeled state of charge crosses its thresholds the client
        issues mid-stream ``requality`` steps down the quality ladder.
    ambient_trace:
        Optional simulated light-sensor spec
        (``"0:dark-room,30:office"`` or a bare ambient).  The battery
        client requests an ambient re-bind whenever the trace's
        condition changes during playback.

    Raises
    ------
    ValueError
        If any timeout/backoff parameter is out of range.
    """

    connect_timeout_s: float = 5.0
    read_timeout_s: float = 30.0
    max_retries: int = 4
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter_s: float = 0.05
    rng: Optional[random.Random] = None
    resume: bool = True
    circuit_breaker: Optional["CircuitBreaker"] = None
    battery_trace: Optional[str] = None
    ambient_trace: Optional[str] = None

    def __post_init__(self):
        if self.connect_timeout_s <= 0 or self.read_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if (self.backoff_base_s < 0 or self.backoff_max_s < 0
                or self.jitter_s < 0):
            raise ValueError("backoff parameters must be non-negative")
        if self.battery_trace is not None:
            from ..power.battery import LoadTrace

            LoadTrace.parse(self.battery_trace)
        if self.ambient_trace is not None:
            from ..display.ambient import as_ambient_trace

            as_ambient_trace(self.ambient_trace)

    def replace(self, **changes) -> "FetchOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def client(self, device: "DeviceProfile") -> "AsyncMobileClient":
        """Build an :class:`~repro.net.client.AsyncMobileClient` for
        ``device`` configured with these options.

        With ``battery_trace`` and/or ``ambient_trace`` set, the client
        is a :class:`~repro.net.client.BatteryClient` that issues
        mid-stream ``requality`` requests as its modeled battery drains
        and its simulated light sensor changes.
        """
        from .client import AsyncMobileClient, BatteryClient

        kwargs = dict(
            connect_timeout_s=self.connect_timeout_s,
            read_timeout_s=self.read_timeout_s,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
            backoff_max_s=self.backoff_max_s,
            jitter_s=self.jitter_s,
            rng=self.rng,
            resume=self.resume,
            circuit_breaker=self.circuit_breaker,
        )
        if self.battery_trace is not None or self.ambient_trace is not None:
            return BatteryClient(
                device,
                battery_trace=self.battery_trace,
                ambient_trace=self.ambient_trace,
                **kwargs,
            )
        return AsyncMobileClient(device, **kwargs)
