"""`AnnotationStreamServer`: annotated streams over real asyncio TCP.

Hosts many concurrent sessions on one ``asyncio.start_server`` socket.
Each connection runs the wire protocol::

    client                          server
      | -- hello (control) ---------> |   negotiate via MediaServer
      | <-------- session (control) - |
      | <----- annotation record(s) - |   batched chunk emission
      | <--------- frame records ---- |   (producer thread + queue)
      | <------------ end (control) - |

Packet production reuses :meth:`~repro.streaming.server.MediaServer.stream`
— the chunked engine's batched compensation path — but runs it on a
dedicated per-session thread so the event loop never blocks on numpy (and
no shared executor caps how many sessions can stream at once).  Producer
and socket are decoupled by a **bounded** per-session send queue: when a
slow client (or a congested wireless hop) stops draining,
``writer.drain()`` blocks the sender, the queue fills, and the producer
thread parks on ``put`` — backpressure end to end, never unbounded
buffering.  The async side never blocks a thread to read the queue: the
producer nudges an :class:`asyncio.Event` through
``loop.call_soon_threadsafe`` after each enqueue.  Disconnects cancel the
session task, which signals and joins its producer cleanly.

Telemetry: active-session gauge, per-session queue-depth histogram,
records/bytes counters, disconnect counter, and a ``net.session`` span
per connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import queue as queue_mod
import threading
from typing import Optional, Tuple

from ..streaming.packets import MediaPacket, PacketType
from ..streaming.server import MediaServer
from ..streaming.session import NegotiationError
from ..telemetry import registry as telemetry_registry, trace
from .codec import WireFormatError, encode_packet, read_packet
from .messages import decode_control, encode_end, encode_error, encode_session

#: Sentinel closing a producer queue (normal completion).
_DONE = object()

#: Queue-depth histogram buckets (records waiting in a session queue).
_QUEUE_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class AnnotationStreamServer:
    """Serve a :class:`~repro.streaming.server.MediaServer` catalog over TCP.

    Parameters
    ----------
    media_server:
        The catalog + annotation owner; one instance is shared by every
        session (its caches make session 2..N cheap).
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    queue_depth:
        Bound of each session's send queue, in records.  Small values
        couple the producer tightly to the socket; large values buffer
        more chunks ahead.  Must be >= 1.
    hello_timeout_s:
        How long a fresh connection may take to present its hello before
        the server hangs up (protects against idle sockets).
    """

    def __init__(
        self,
        media_server: MediaServer,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_depth: int = 32,
        hello_timeout_s: float = 10.0,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if hello_timeout_s <= 0:
            raise ValueError("hello_timeout_s must be positive")
        self.media_server = media_server
        self.host = host
        self._port = port
        self.queue_depth = queue_depth
        self.hello_timeout_s = hello_timeout_s
        self._server: Optional[asyncio.base_events.Server] = None
        reg = telemetry_registry()
        self._active_gauge = reg.gauge(
            "repro_net_active_sessions", help="Wire sessions currently being served.",
        )
        self._queue_hist = reg.histogram(
            "repro_net_send_queue_depth",
            help="Send-queue depth sampled at each enqueue (records).",
            buckets=_QUEUE_BUCKETS,
        )
        self._records_counter = reg.counter(
            "repro_net_records_sent_total", help="Wire records written to clients.",
        )
        self._bytes_counter = reg.counter(
            "repro_net_bytes_sent_total", help="Wire bytes written to clients.",
        )
        self._disconnects_counter = reg.counter(
            "repro_net_disconnects_total",
            help="Sessions that ended on a transport error or client hangup.",
        )
        self._rejects_counter = reg.counter(
            "repro_net_rejected_sessions_total",
            help="Connections rejected during negotiation.",
        )

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        return self.host, self.port

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the resolved address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block serving sessions until cancelled (used by ``repro serve``)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "AnnotationStreamServer":
        """Start on ``async with`` entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Close on ``async with`` exit."""
        await self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _put(
        out: "queue_mod.Queue",
        item,
        cancelled: threading.Event,
        loop: asyncio.AbstractEventLoop,
        wakeup: asyncio.Event,
    ) -> bool:
        """Bounded enqueue that gives up once the session is cancelled.

        The short timeout makes the producer re-check ``cancelled`` while
        parked on a full queue, so a dead connection never strands a
        thread; a live slow connection just keeps it parked — that *is*
        the backpressure.  Each successful enqueue nudges the session
        task's ``wakeup`` event on the loop thread.
        """
        while not cancelled.is_set():
            try:
                out.put(item, timeout=0.1)
            except queue_mod.Full:
                continue
            try:
                loop.call_soon_threadsafe(wakeup.set)
            except RuntimeError:
                pass  # loop already closed; the session is gone anyway
            return True
        return False

    @staticmethod
    async def _take(out: "queue_mod.Queue", wakeup: asyncio.Event):
        """Dequeue without blocking a thread: wait on the wakeup event.

        The clear/re-check/wait dance closes the race where the producer
        enqueues between our failed ``get_nowait`` and ``wakeup.clear``.
        """
        while True:
            try:
                return out.get_nowait()
            except queue_mod.Empty:
                wakeup.clear()
            try:
                return out.get_nowait()
            except queue_mod.Empty:
                await wakeup.wait()

    def _produce(
        self,
        session,
        out: "queue_mod.Queue",
        cancelled: threading.Event,
        loop: asyncio.AbstractEventLoop,
        wakeup: asyncio.Event,
    ) -> None:
        """Producer thread: run the batched packet generator into the queue.

        Enqueueing blocks when the queue is full (backpressure), so the
        chunked compensation pass never runs further ahead of the socket
        than ``queue_depth`` records.
        """
        packet_count = 0
        frame_count = 0
        try:
            for packet in self.media_server.stream(session):
                if not self._put(out, packet, cancelled, loop, wakeup):
                    return
                packet_count += 1
                if packet.ptype is PacketType.FRAME:
                    frame_count += 1
            self._put(out, (_DONE, packet_count, frame_count), cancelled, loop, wakeup)
        except Exception as exc:  # surfaced to the session task
            self._put(out, exc, cancelled, loop, wakeup)

    async def _send(self, writer: asyncio.StreamWriter, packet: MediaPacket) -> None:
        header, body = encode_packet(packet)
        writer.write(header)
        if len(body):
            writer.write(body)
        await writer.drain()
        self._records_counter.inc()
        self._bytes_counter.inc(len(header) + len(body))

    async def _negotiate(self, reader, writer):
        """Read the hello and open a session; None when rejected."""
        try:
            first = await asyncio.wait_for(
                read_packet(reader), timeout=self.hello_timeout_s
            )
        except asyncio.TimeoutError:
            self._rejects_counter.inc()
            return None
        except WireFormatError as exc:
            self._rejects_counter.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(writer, encode_error(str(exc), seq=0))
            return None
        if first is None:
            return None  # connected and left without asking anything
        try:
            message = decode_control(first)
            if message.kind != "hello":
                raise WireFormatError(f"expected hello, got {message.kind!r}")
            request = message.hello.to_request()
            return self.media_server.open_session(request)
        except (WireFormatError, NegotiationError) as exc:
            self._rejects_counter.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(writer, encode_error(str(exc), seq=0))
            return None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._active_gauge.inc()
        out: "queue_mod.Queue" = queue_mod.Queue(maxsize=self.queue_depth)
        cancelled = threading.Event()
        wakeup = asyncio.Event()
        producer: Optional[threading.Thread] = None
        loop = asyncio.get_running_loop()
        try:
            with trace("net.session"):
                session = await self._negotiate(reader, writer)
                if session is None:
                    return
                await self._send(writer, encode_session(session, seq=0))
                producer = threading.Thread(
                    target=self._produce,
                    args=(session, out, cancelled, loop, wakeup),
                    name=f"net-session-{session.session_id}",
                    daemon=True,
                )
                producer.start()
                sent = 0
                while True:
                    self._queue_hist.observe(out.qsize())
                    item = await self._take(out, wakeup)
                    if isinstance(item, Exception):
                        raise item
                    if isinstance(item, tuple) and item[0] is _DONE:
                        _, packet_count, frame_count = item
                        await self._send(
                            writer,
                            encode_end(packet_count, frame_count, seq=sent + 1),
                        )
                        break
                    await self._send(writer, item)
                    sent += 1
        except (ConnectionError, OSError):
            self._disconnects_counter.inc()
        except asyncio.CancelledError:
            self._disconnects_counter.inc()
            raise
        finally:
            cancelled.set()
            if producer is not None:
                # The producer re-checks ``cancelled`` within one 0.1 s
                # put tick, so this join is bounded; run it off the loop
                # thread is unnecessary for such a short wait.
                with contextlib.suppress(asyncio.CancelledError):
                    while producer.is_alive():
                        await asyncio.sleep(0.02)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            self._active_gauge.dec()
