"""`AnnotationStreamServer`: annotated streams over real asyncio TCP.

Hosts many concurrent sessions on one ``asyncio.start_server`` socket.
Each connection runs the wire protocol::

    client                          server
      | -- hello (control) ---------> |   admission control, then
      | <-------- session (control) - |   negotiate via MediaServer
      | <----- annotation record(s) - |   batched chunk emission
      | <--------- frame records ---- |   (producer thread + queue)
      | <------------ end (control) - |

Packet production reuses the media server's batched emission path and
runs it on a dedicated per-session thread so the event loop never blocks
on numpy.  Threads are per-session so no shared executor caps how many
sessions can *stream* at once, but the CPU-bound part (compensation +
encode) is gated by a server-wide ``compute_slots`` semaphore sized to
the host's cores: running more numpy-heavy threads than cores just adds
GIL convoy — every thread stalls behind every other thread's long
non-GIL-releasing kernel — which starves the event loop and inflates
frame gaps without adding any throughput.  Producer
and socket are decoupled by a **bounded** per-session send queue: when a
slow client (or a congested wireless hop) stops draining,
``writer.drain()`` blocks the sender, the queue fills, and the producer
thread parks on ``put`` — backpressure end to end, never unbounded
buffering.  The async side never blocks a thread to read the queue: the
producer nudges an :class:`asyncio.Event` through
``loop.call_soon_threadsafe`` after each enqueue.  Disconnects cancel the
session task, which signals and joins its producer cleanly.

Operational resilience on top of the happy path:

* **Admission control** — ``max_sessions`` caps concurrently served
  streams.  Overflow connections wait in a bounded accept queue
  (``accept_queue`` waiters, ``accept_timeout_s`` each); beyond that the
  server *sheds load*: it answers the hello with a ``busy`` control
  message carrying a retry-after hint and closes, instead of queueing
  unboundedly and collapsing.
* **Session resume** — every accepted session gets a resume token.  If
  the connection drops mid-stream, the server remembers the session for
  ``resume_window_s``; a client reconnecting with ``resume`` + the count
  of data records it already holds continues from exactly that offset.
  Streams are deterministic, so a resumed stream is bit-identical to an
  uninterrupted one.
* **Graceful drain** — :meth:`drain` flips the server to *draining*
  (new hellos are shed with ``busy``), lets in-flight sessions finish
  within a deadline, cancels stragglers, then closes the socket.
  :meth:`healthz` and the ``health`` probe message expose
  liveness/readiness without consuming an admission slot.
* **Live observability** — the ``stats`` probe message (admission-
  bypassing like ``health``) answers with a full metrics snapshot
  (JSON or Prometheus text), optionally plus the flight-recorder tail
  and collected spans, so a running server's registry is reachable
  from outside the process (:meth:`stats_snapshot`).

Telemetry: active/waiting-session and readiness gauges, per-session
queue-depth histogram, records/bytes counters, disconnect / shed /
resumed counters, and a linked span tree per connection —
``net.admission`` and ``net.session`` join the client's trace via the
ids carried in ``hello``/``resume``, the producer thread's
``net.produce`` span (and the engine spans under it) nests inside the
session via context propagation, and per-stage aggregates
(``net.encode``, ``net.queue.wait``, ``net.write``) break the send
path down without per-packet span cost.  Session lifecycle lands in
the flight recorder (open/resume/shed/reject/end/disconnect/drain).
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import dataclasses
import queue as queue_mod
import secrets
import threading
import time
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from ..display.ambient import as_ambient_trace
from ..streaming.packets import MediaPacket, PacketType
from ..streaming.server import AdaptationControl, MediaServer, Switch
from ..streaming.session import NegotiationError, SessionDescription
from ..telemetry import (
    emit_span,
    record_event,
    flight_events,
    registry as telemetry_registry,
    snapshot as telemetry_snapshot,
    span_events,
    to_prometheus,
    trace,
    trace_context,
)
from .codec import WireFormatError, encode_packet, read_packet
from .config import ServeConfig
from .messages import (
    StatsRequest,
    decode_control,
    decode_portable_token,
    encode_busy,
    encode_end,
    encode_error,
    encode_portable_token,
    encode_requality_ack,
    encode_session,
    encode_statsdump,
    encode_status,
)

#: Keyword names accepted by the legacy (pre-``ServeConfig``) signature.
_LEGACY_SERVE_KWARGS = frozenset(
    f.name for f in dataclasses.fields(ServeConfig)
)

#: Sentinel closing a producer queue (normal completion).
_DONE = object()


@dataclass
class _WireBatch:
    """A coalesced run of encoded records crossing the producer queue.

    The producer thread encodes packets straight into one contiguous
    buffer (header + payload, repeated) and hands the whole run to the
    event loop as a single queue item — one ``call_soon_threadsafe``
    wakeup and one ``writer.write`` + ``drain`` per batch instead of one
    per record.  Encoding copies every payload into the buffer, so a
    batch holds no references into producer-side (reused) pixel arenas.
    """

    buffer: bytearray
    records: int

#: Queue-depth histogram buckets (records waiting in a session queue).
_QUEUE_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Server lifecycle states reported by :meth:`AnnotationStreamServer.healthz`.
STATE_READY = "ready"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"


@dataclass
class _ResumeState:
    """Server-side memory of an interrupted (or in-flight) session.

    ``plan`` records the session's applied mid-stream ``requality``
    switches, oldest first; a resume replays them at exactly their
    recorded frames so the regenerated stream is byte-identical to the
    adapted original.
    """

    session: SessionDescription
    deadline: float
    active: bool = field(default=False)
    plan: Tuple[Switch, ...] = field(default=())


class AnnotationStreamServer:
    """Serve a :class:`~repro.streaming.server.MediaServer` catalog over TCP.

    Parameters
    ----------
    media_server:
        The catalog + annotation owner; one instance is shared by every
        session (its caches make session 2..N cheap).
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    config:
        The serving policy, a :class:`~repro.net.config.ServeConfig`:
        admission control (``max_sessions`` / ``accept_queue`` /
        ``accept_timeout_s`` / ``busy_retry_after_s``), session resume
        (``resume_window_s`` / ``portable_tokens``), graceful drain
        (``drain_timeout_s``), producer batching (``queue_depth`` /
        ``batch_records`` / ``batch_bytes``), the CPU gate
        (``compute_slots``) and the hello deadline
        (``hello_timeout_s``).  ``None`` uses the defaults.
    **legacy_kwargs:
        Deprecated: the pre-``ServeConfig`` spelling, any
        :class:`~repro.net.config.ServeConfig` field passed as a loose
        keyword (``queue_depth=...``, ``max_sessions=...``, ...).
        Still honored — folded into ``config`` — but emits a
        :class:`DeprecationWarning`; construct a config object instead.

    Raises
    ------
    ValueError
        If any numeric config parameter is out of range.
    TypeError
        If an unknown keyword argument is passed.
    """

    def __init__(
        self,
        media_server: MediaServer,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServeConfig] = None,
        **legacy_kwargs,
    ):
        if legacy_kwargs:
            unknown = set(legacy_kwargs) - _LEGACY_SERVE_KWARGS
            if unknown:
                raise TypeError(
                    "unknown serve parameter(s): "
                    + ", ".join(sorted(unknown))
                )
            warnings.warn(
                "passing serve knobs as loose keyword arguments is "
                "deprecated; build a repro.net.ServeConfig and pass it "
                "as config=",
                DeprecationWarning,
                stacklevel=2,
            )
            config = (config if config is not None else ServeConfig()).replace(
                **legacy_kwargs
            )
        if config is None:
            config = ServeConfig()
        #: The immutable serving policy this server was built from.
        self.config = config
        self.media_server = media_server
        if config.ambient is not None:
            # Serve-time ambient binding: every session's scenes are
            # bound under this simulated light-sensor trace.
            media_server.ambient = as_ambient_trace(config.ambient)
        self.host = host
        self._port = port
        self.queue_depth = config.queue_depth
        self.hello_timeout_s = config.hello_timeout_s
        self.max_sessions = config.max_sessions
        self.accept_queue = config.accept_queue
        self.accept_timeout_s = config.accept_timeout_s
        self.busy_retry_after_s = config.busy_retry_after_s
        self.resume_window_s = config.resume_window_s
        self.portable_tokens = config.portable_tokens
        self.drain_timeout_s = config.drain_timeout_s
        self.batch_records = config.batch_records
        self.batch_bytes = config.batch_bytes
        self.compute_slots = config.resolved_compute_slots()
        self._compute_slots = threading.Semaphore(self.compute_slots)
        self._server: Optional[asyncio.base_events.Server] = None
        self._state = STATE_STOPPED
        self._active_count = 0
        self._waiting_count = 0
        self._slot_available: Optional[asyncio.Condition] = None
        self._tasks: Set["asyncio.Task"] = set()
        self._resume_states: Dict[str, _ResumeState] = {}
        # Guards _resume_states: requality acks re-issue tokens from the
        # producer thread while the event loop registers/purges entries.
        self._resume_lock = threading.Lock()
        reg = telemetry_registry()
        self._active_gauge = reg.gauge(
            "repro_net_active_sessions", help="Wire sessions currently being served.",
        )
        self._waiting_gauge = reg.gauge(
            "repro_net_waiting_sessions",
            help="Connections parked in the admission accept queue.",
        )
        self._ready_gauge = reg.gauge(
            "repro_net_server_ready",
            help="1 while the server accepts new sessions, else 0.",
        )
        self._draining_gauge = reg.gauge(
            "repro_net_server_draining",
            help="1 while the server is draining in-flight sessions, else 0.",
        )
        self._queue_hist = reg.histogram(
            "repro_net_send_queue_depth",
            help="Send-queue depth sampled at each enqueue (records).",
            buckets=_QUEUE_BUCKETS,
        )
        self._records_counter = reg.counter(
            "repro_net_records_sent_total", help="Wire records written to clients.",
        )
        self._bytes_counter = reg.counter(
            "repro_net_bytes_sent_total", help="Wire bytes written to clients.",
        )
        self._disconnects_counter = reg.counter(
            "repro_net_disconnects_total",
            help="Sessions that ended on a transport error or client hangup.",
        )
        self._rejects_counter = reg.counter(
            "repro_net_rejected_sessions_total",
            help="Connections rejected during negotiation.",
        )
        self._shed_counter = reg.counter(
            "repro_net_shed_sessions_total",
            help="Connections shed with a busy message (cap reached or draining).",
        )
        self._resumed_counter = reg.counter(
            "repro_net_resumed_sessions_total",
            help="Sessions continued from a resume token after a drop.",
        )
        self._adopted_counter = reg.counter(
            "repro_net_adopted_sessions_total",
            help="Portable tokens issued elsewhere adopted by this server.",
        )
        self._health_counter = reg.counter(
            "repro_net_health_probes_total",
            help="health probes answered with a status message.",
        )
        self._stats_counter = reg.counter(
            "repro_net_stats_probes_total",
            help="stats probes answered with a statsdump message.",
        )
        self._requality_counter = reg.counter(
            "repro_requality_total",
            help="Mid-stream requality requests accepted from clients.",
        )

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        return self.host, self.port

    @property
    def state(self) -> str:
        """Lifecycle state: ``ready``, ``draining`` or ``stopped``."""
        return self._state

    @property
    def active_sessions(self) -> int:
        """Sessions currently holding an admission slot."""
        return self._active_count

    def healthz(self) -> dict:
        """A ``/healthz``-style snapshot of liveness and readiness.

        Returns a dict with ``state``, ``accepting`` (readiness),
        ``active_sessions``, ``waiting_sessions``, ``max_sessions`` and
        ``resumable_sessions`` — the same fields the wire ``status``
        message carries, for in-process health checks.
        """
        self._purge_expired_tokens()
        with self._resume_lock:
            resumable = sum(
                1 for s in self._resume_states.values() if not s.active
            )
        return {
            "state": self._state,
            "accepting": self._state == STATE_READY,
            "active_sessions": self._active_count,
            "waiting_sessions": self._waiting_count,
            "max_sessions": self.max_sessions,
            "resumable_sessions": resumable,
        }

    def stats_snapshot(
        self,
        format: str = "json",
        include_events: bool = False,
        include_spans: bool = False,
        limit: Optional[int] = None,
    ) -> dict:
        """The live-observability payload answered to a ``stats`` probe.

        Parameters
        ----------
        format:
            ``json`` embeds the full metrics snapshot dict under
            ``metrics``; ``prometheus`` embeds the text exposition under
            ``prometheus``.
        include_events:
            Also attach the flight-recorder tail under ``events``.
        include_spans:
            Also attach collected span events under ``spans``.
        limit:
            Cap on attached events/spans (defaults: 128 events,
            512 spans).

        Always includes the :meth:`healthz` dict under ``health``.
        """
        if format not in ("json", "prometheus"):
            raise ValueError(f"unknown stats format {format!r}")
        payload: dict = {"format": format, "health": self.healthz()}
        if format == "prometheus":
            payload["prometheus"] = to_prometheus()
        else:
            payload["metrics"] = telemetry_snapshot()
        if include_events:
            payload["events"] = flight_events(
                limit=limit if limit is not None else 128
            )
        if include_spans:
            payload["spans"] = span_events(
                limit=limit if limit is not None else 512
            )
        return payload

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the resolved address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._slot_available = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._state = STATE_READY
        self._ready_gauge.set(1)
        self._draining_gauge.set(0)
        return self.address

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close.

        A hard stop: in-flight session tasks are cancelled.  Use
        :meth:`drain` first for a graceful shutdown.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        await self._wait_tasks()
        self._state = STATE_STOPPED
        self._ready_gauge.set(0)
        self._draining_gauge.set(0)

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Gracefully shut down: stop admitting, finish in-flight sessions.

        Flips the server to *draining* — new hellos are shed with
        ``busy`` while health probes keep being answered — then waits up
        to ``timeout_s`` (default ``drain_timeout_s``) for in-flight
        sessions to complete.  Sessions still running at the deadline
        are cancelled (their resume tokens survive for
        ``resume_window_s``, so clients can resume against a restarted
        server process holding the same state).  Finally closes the
        listening socket.

        Returns ``True`` when every session finished within the
        deadline, ``False`` when stragglers had to be cancelled.
        """
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.drain_timeout_s
        )
        if self._state == STATE_READY:
            self._state = STATE_DRAINING
            self._ready_gauge.set(0)
            self._draining_gauge.set(1)
            record_event("drain_begin", active=self._active_count,
                         waiting=self._waiting_count)
        # Wake queued waiters so they shed immediately instead of
        # sitting out their accept timeout against a draining server.
        if self._slot_available is not None:
            async with self._slot_available:
                self._slot_available.notify_all()
        while self._tasks and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        completed = not self._tasks
        record_event("drain_end", completed=completed,
                     cancelled=len(self._tasks))
        await self.close()
        return completed

    async def serve_forever(self) -> None:
        """Block serving sessions until cancelled (used by ``repro serve``)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "AnnotationStreamServer":
        """Start on ``async with`` entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Close on ``async with`` exit."""
        await self.close()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    async def _admit(self) -> bool:
        """Try to claim an admission slot; False means shed with busy.

        Uncapped servers admit unconditionally while ready.  At the cap,
        up to ``accept_queue`` connections park on the slot condition for
        ``accept_timeout_s``; everything beyond that is shed.
        """
        if self._state != STATE_READY:
            return False
        if self.max_sessions is None:
            self._active_count += 1
            return True
        async with self._slot_available:
            if self._active_count < self.max_sessions:
                self._active_count += 1
                return True
            if self._waiting_count >= self.accept_queue:
                return False
            self._waiting_count += 1
            self._waiting_gauge.inc()
            deadline = time.monotonic() + self.accept_timeout_s
            try:
                while True:
                    if self._state != STATE_READY:
                        return False
                    if self._active_count < self.max_sessions:
                        self._active_count += 1
                        return True
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    try:
                        await asyncio.wait_for(
                            self._slot_available.wait(), timeout=remaining
                        )
                    except asyncio.TimeoutError:
                        return False
            finally:
                self._waiting_count -= 1
                self._waiting_gauge.dec()

    async def _release_slot(self) -> None:
        """Return an admission slot and wake one queued waiter."""
        self._active_count -= 1
        if self._slot_available is not None:
            async with self._slot_available:
                self._slot_available.notify()

    # ------------------------------------------------------------------
    # Resume registry
    # ------------------------------------------------------------------
    def _purge_expired_tokens(self) -> None:
        now = time.monotonic()
        with self._resume_lock:
            expired = [
                token
                for token, state in self._resume_states.items()
                if not state.active and state.deadline <= now
            ]
            for token in expired:
                del self._resume_states[token]

    def _register_token(self, session: SessionDescription) -> Optional[str]:
        """Issue a resume token for a fresh session (None when disabled).

        With ``portable_tokens`` the token embeds the session request
        (clip, quality, device) so any server over the same
        deterministic catalog can honor it — see :meth:`_lookup_token`.
        """
        if self.resume_window_s <= 0:
            return None
        self._purge_expired_tokens()
        if self.portable_tokens:
            token = encode_portable_token(
                session.clip_name, session.quality, session.device_name
            )
        else:
            token = secrets.token_hex(16)
        with self._resume_lock:
            self._resume_states[token] = _ResumeState(
                session=session,
                deadline=time.monotonic() + self.resume_window_s,
                active=True,
            )
        return token

    def _adopt_portable_token(self, token: str) -> Optional[SessionDescription]:
        """Honor a portable token this server never issued.

        Decodes the embedded (clip, quality, device) request and opens a
        fresh session for it — the catalog is deterministic, so the new
        session replays the issuing server's stream byte-identically.
        This is the fleet failover path: when a shard dies, the router
        replays its clients' portable tokens against a replica shard.
        Returns None when the token is malformed or names a clip/device
        this catalog cannot serve.
        """
        if not self.portable_tokens:
            return None
        info = decode_portable_token(token)
        if info is None:
            return None
        try:
            session = self.media_server.open_session(info.to_request())
        except NegotiationError:
            return None
        with self._resume_lock:
            self._resume_states[token] = _ResumeState(
                session=session,
                deadline=time.monotonic() + self.resume_window_s,
                active=True,
                plan=info.switches,
            )
        self._adopted_counter.inc()
        record_event("session_adopt", session_id=session.session_id,
                     clip=session.clip_name, quality=session.quality,
                     device=session.device_name)
        return session

    def _lookup_token(self, token: str) -> Optional[SessionDescription]:
        """Resolve a resume token; None when unknown or expired.

        A token whose previous connection is still tearing down is
        *taken over* — newest connection wins.  A client often
        reconnects before the server's old session task has noticed the
        dead socket; rejecting the token for that window would downgrade
        every prompt resume to a full refetch.  The old task streams
        into a dead socket until its next write fails, which is
        harmless: sessions are deterministic and share no mutable state.

        A portable token not found in the local registry is *adopted*:
        decoded back into a session request and opened fresh against the
        shared deterministic catalog (:meth:`_adopt_portable_token`).
        """
        self._purge_expired_tokens()
        with self._resume_lock:
            state = self._resume_states.get(token)
            if state is not None:
                state.active = True
                state.deadline = time.monotonic() + self.resume_window_s
                return state.session
        return self._adopt_portable_token(token)

    def _token_plan(self, token: Optional[str]) -> Tuple[Switch, ...]:
        """The recorded requality switch plan behind a resume token."""
        if token is None:
            return ()
        with self._resume_lock:
            state = self._resume_states.get(token)
            return () if state is None else state.plan

    def _requality_token(
        self,
        token: Optional[str],
        session: SessionDescription,
        plan: Tuple[Switch, ...],
    ) -> Optional[str]:
        """Refresh resume state after an applied switch; maybe re-issue.

        Called from the producer thread (via the adaptation control's
        ack builder).  The current token's state learns the new plan so
        a plain reconnect replays the adapted stream; with portable
        tokens a *new* token embedding the switch plan is issued and
        registered, so any replica can adopt the adapted session too.
        Returns the token the ack should carry (``None`` keeps the
        client's existing one).
        """
        if token is None or self.resume_window_s <= 0:
            return None
        with self._resume_lock:
            state = self._resume_states.get(token)
            if state is not None:
                state.plan = plan
            if not self.portable_tokens:
                return token
            new_token = encode_portable_token(
                session.clip_name, session.quality, session.device_name,
                switches=plan,
            )
            self._resume_states[new_token] = _ResumeState(
                session=session,
                deadline=time.monotonic() + self.resume_window_s,
                active=True,
                plan=plan,
            )
            return new_token

    def _token_disconnected(self, token: Optional[str]) -> None:
        """Keep an ended session resumable for the resume window.

        Deliberately also called after *clean* completion: under TCP,
        "clean" only means every write was accepted by local buffers —
        the peer may have vanished with the tail (end message included)
        still in flight.  A client that reconnects with the token simply
        has the missing records replayed; tokens age out of the registry
        after ``resume_window_s`` either way.
        """
        with self._resume_lock:
            state = self._resume_states.get(token) if token else None
            if state is not None:
                state.active = False
                state.deadline = time.monotonic() + self.resume_window_s

    # ------------------------------------------------------------------
    @staticmethod
    def _put(
        out: "queue_mod.Queue",
        item,
        cancelled: threading.Event,
        loop: asyncio.AbstractEventLoop,
        wakeup: asyncio.Event,
    ) -> bool:
        """Bounded enqueue that gives up once the session is cancelled.

        The short timeout makes the producer re-check ``cancelled`` while
        parked on a full queue, so a dead connection never strands a
        thread; a live slow connection just keeps it parked — that *is*
        the backpressure.  Each successful enqueue nudges the session
        task's ``wakeup`` event on the loop thread.
        """
        while not cancelled.is_set():
            try:
                out.put(item, timeout=0.1)
            except queue_mod.Full:
                continue
            try:
                loop.call_soon_threadsafe(wakeup.set)
            except RuntimeError:
                pass  # loop already closed; the session is gone anyway
            return True
        return False

    @staticmethod
    async def _take(out: "queue_mod.Queue", wakeup: asyncio.Event):
        """Dequeue without blocking a thread: wait on the wakeup event.

        The clear/re-check/wait dance closes the race where the producer
        enqueues between our failed ``get_nowait`` and ``wakeup.clear``.
        """
        while True:
            try:
                return out.get_nowait()
            except queue_mod.Empty:
                wakeup.clear()
            try:
                return out.get_nowait()
            except queue_mod.Empty:
                await wakeup.wait()

    def _produce(
        self,
        session,
        out: "queue_mod.Queue",
        cancelled: threading.Event,
        loop: asyncio.AbstractEventLoop,
        wakeup: asyncio.Event,
        skip: int = 0,
        adaptation: Optional[AdaptationControl] = None,
    ) -> None:
        """Producer thread: encode the stream into coalesced wire batches.

        Packets are encoded (headers and payloads copied) into one
        contiguous buffer per batch; the buffer crosses the queue as a
        single :class:`_WireBatch`, so the event loop pays one wakeup and
        one write per batch instead of per record.  Batches flush at the
        ``batch_records`` / ``batch_bytes`` thresholds and at every
        generator group boundary — the head (annotation) group therefore
        reaches the socket while the first frame chunk is still
        compensating, and reused chunk arenas are fully consumed before
        the generator advances.

        The CPU-bound stage — advancing the batch generator (which runs
        compensation) and encoding — executes under the server-wide
        ``compute_slots`` semaphore; flushed batches are enqueued *after*
        the slot is released, so a full queue (slow client) parks this
        thread on ``put`` without holding a compute slot hostage.
        Enqueueing blocks when the queue is full (backpressure), so
        compensation never runs further ahead of the socket than
        ``queue_depth`` batches.  ``skip`` suppresses emission of the
        first N data records (resume: the client already holds them)
        while still counting them, so the ``end`` totals always describe
        the complete stream.  Only *data* records (annotation + frame)
        are counted or skipped — in-stream control packets (requality
        acks) always reach the current connection and never perturb the
        resume offset or the ``end`` totals.
        """
        packet_count = 0
        frame_count = 0
        encode_s = 0.0
        produce_t0 = perf_counter()
        buffer = bytearray()
        records = 0
        pending = []  # flushed batches awaiting enqueue outside the slot
        first_flushed = False

        def flush() -> None:
            nonlocal buffer, records
            if records:
                pending.append(_WireBatch(buffer=buffer, records=records))
                buffer = bytearray()
                records = 0

        def drain_pending() -> bool:
            nonlocal first_flushed
            while pending:
                if not self._put(out, pending[0], cancelled, loop, wakeup):
                    return False
                pending.pop(0)
                if not first_flushed:
                    first_flushed = True
                    compute_s = perf_counter() - produce_t0
                    emit_span(
                        "net.first_byte_enqueued",
                        compute_s,
                        tags={"session_id": session.session_id},
                    )
                    record_event(
                        "first_byte_enqueued",
                        session_id=session.session_id,
                        compute_s=compute_s,
                    )
            return True

        try:
            with trace("net.produce") as span:
                if span is not None:
                    span.set_tag("session_id", session.session_id)
                groups = self.media_server.stream_batches(
                    session, adaptation=adaptation
                )
                while True:
                    with self._compute_slots:
                        try:
                            group = next(groups)
                        except StopIteration:
                            break
                        for packet in group:
                            is_data = packet.ptype is not PacketType.CONTROL
                            if not is_data or packet_count >= skip:
                                t0 = perf_counter()
                                header, body = encode_packet(packet)
                                buffer += header
                                if len(body):
                                    buffer += body  # copies the payload out of the arena
                                encode_s += perf_counter() - t0
                                records += 1
                                if (
                                    records >= self.batch_records
                                    or len(buffer) >= self.batch_bytes
                                ):
                                    flush()
                            if is_data:
                                packet_count += 1
                                if packet.ptype is PacketType.FRAME:
                                    frame_count += 1
                        flush()
                    if not drain_pending():
                        return
            self._put(
                out,
                (_DONE, packet_count, frame_count, encode_s),
                cancelled,
                loop,
                wakeup,
            )
        except Exception as exc:  # surfaced to the session task
            self._put(out, exc, cancelled, loop, wakeup)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        packet: MediaPacket,
        timings: Optional[dict] = None,
    ) -> None:
        """Encode and write one packet; optionally accumulate stage times.

        ``timings`` (when given) receives ``encode_s`` / ``write_s``
        increments — plain float adds per record, aggregated into
        ``net.encode`` / ``net.write`` spans once per session.
        """
        if timings is None:
            header, body = encode_packet(packet)
            writer.write(header)
            if len(body):
                writer.write(body)
            await writer.drain()
        else:
            t0 = perf_counter()
            header, body = encode_packet(packet)
            t1 = perf_counter()
            writer.write(header)
            if len(body):
                writer.write(body)
            await writer.drain()
            t2 = perf_counter()
            timings["encode_s"] += t1 - t0
            timings["write_s"] += t2 - t1
        self._records_counter.inc()
        self._bytes_counter.inc(len(header) + len(body))

    async def _send_busy(self, writer: asyncio.StreamWriter) -> None:
        """Shed the connection with a busy message (best effort)."""
        self._shed_counter.inc()
        record_event("session_shed", active=self._active_count,
                     max=self.max_sessions, state=self._state)
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(writer, encode_busy(
                self.busy_retry_after_s,
                self._active_count,
                self.max_sessions,
                seq=0,
            ))

    async def _send_stats(self, writer: asyncio.StreamWriter,
                          request: StatsRequest) -> None:
        """Answer a stats probe with the observability snapshot."""
        self._stats_counter.inc()
        payload = self.stats_snapshot(
            format=request.format,
            include_events=request.include_events,
            include_spans=request.include_spans,
            limit=request.limit,
        )
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(writer, encode_statsdump(payload, seq=0))

    async def _send_status(self, writer: asyncio.StreamWriter) -> None:
        """Answer a health probe with the current status snapshot."""
        self._health_counter.inc()
        health = self.healthz()
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(writer, encode_status(
                state=health["state"],
                accepting=health["accepting"],
                active_sessions=health["active_sessions"],
                waiting_sessions=health["waiting_sessions"],
                max_sessions=health["max_sessions"],
                resumable_sessions=health["resumable_sessions"],
                seq=0,
            ))

    async def _read_first(self, reader, writer):
        """Read and decode the connection's opening control message."""
        try:
            first = await asyncio.wait_for(
                read_packet(reader), timeout=self.hello_timeout_s
            )
        except asyncio.TimeoutError:
            self._rejects_counter.inc()
            return None
        except WireFormatError as exc:
            self._rejects_counter.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(writer, encode_error(str(exc), seq=0))
            return None
        if first is None:
            return None  # connected and left without asking anything
        try:
            return decode_control(first)
        except WireFormatError as exc:
            self._rejects_counter.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(writer, encode_error(str(exc), seq=0))
            return None

    async def _read_requests(
        self,
        reader: asyncio.StreamReader,
        adaptation: AdaptationControl,
        session: SessionDescription,
    ) -> None:
        """Drain the client's mid-stream control messages.

        The only message a client sends after its opening hello/resume
        is ``requality``: the desired quality and/or ambient is
        deposited in the session's :class:`AdaptationControl`, to be
        applied by the producer at the next scene boundary.  Anything
        undecodable ends the reader (the session itself keeps streaming;
        a broken *pipe* surfaces on the write side).
        """
        while True:
            try:
                packet = await read_packet(reader)
            except (WireFormatError, ConnectionError, OSError):
                return
            if packet is None:
                return  # client half-closed; keep streaming
            try:
                message = decode_control(packet)
            except WireFormatError:
                return
            if message.kind != "requality" or message.requality is None:
                continue  # only requality is meaningful mid-stream
            info = message.requality
            if not info.is_request:
                continue
            with trace("net.requality") as span:
                if span is not None:
                    span.set_tag("session_id", session.session_id)
                    if info.quality is not None:
                        span.set_tag("quality", info.quality)
                    if info.ambient is not None:
                        span.set_tag("ambient", info.ambient)
                try:
                    adaptation.request(
                        quality=info.quality, ambient=info.ambient
                    )
                except ValueError:
                    continue
                self._requality_counter.inc()
                record_event(
                    "requality_request",
                    session_id=session.session_id,
                    quality=info.quality,
                    ambient=info.ambient,
                )

    def _open_session(self, message):
        """Resolve a hello or resume into (session, token, skip, plan).

        ``plan`` is the recorded requality switch plan to replay (resume
        of an adapted session), empty for fresh sessions.  Raises
        :class:`~repro.streaming.session.NegotiationError` when the
        request cannot be served (bad clip/device, dead token).
        """
        if message.kind == "resume":
            session = self._lookup_token(message.resume.token)
            if session is None:
                raise NegotiationError("unknown or expired resume token")
            plan = self._token_plan(message.resume.token)
            self._resumed_counter.inc()
            record_event("session_resume", session_id=session.session_id,
                         clip=session.clip_name,
                         received=message.resume.received_packets)
            return (session, message.resume.token,
                    message.resume.received_packets, plan)
        request = message.hello.to_request()
        session = self.media_server.open_session(request)
        record_event("session_open", session_id=session.session_id,
                     clip=session.clip_name, quality=session.quality,
                     device=session.device_name)
        return session, self._register_token(session), 0, ()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        finally:
            if task is not None:
                self._tasks.discard(task)

    async def _handle_connection(self, reader, writer) -> None:
        message = await self._read_first(reader, writer)
        if message is None:
            await self._close_writer(writer)
            return
        if message.kind == "health":
            await self._send_status(writer)
            await self._close_writer(writer)
            return
        if message.kind == "stats":
            await self._send_stats(writer, message.stats)
            await self._close_writer(writer)
            return
        if message.kind not in ("hello", "resume"):
            self._rejects_counter.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._send(writer, encode_error(
                    f"expected hello, resume, health or stats, got {message.kind!r}",
                    seq=0,
                ))
            await self._close_writer(writer)
            return
        # Join the client's distributed trace (ids ride in the
        # hello/resume body); absent ids start a fresh server-side trace
        # so admission and session spans still form one tree.
        info = message.hello if message.kind == "hello" else message.resume
        with trace_context(trace_id=info.trace_id,
                           parent_id=info.parent_span_id):
            with trace("net.admission") as admission_span:
                admitted = await self._admit()
                if admission_span is not None:
                    admission_span.set_tag("admitted", admitted)
            if not admitted:
                await self._send_busy(writer)
                await self._close_writer(writer)
                return
            try:
                await self._serve_session(message, reader, writer)
            finally:
                await self._release_slot()

    async def _serve_session(self, message, reader, writer) -> None:
        """Run one admitted session to completion (or disconnect)."""
        self._active_gauge.inc()
        out: "queue_mod.Queue" = queue_mod.Queue(maxsize=self.queue_depth)
        cancelled = threading.Event()
        wakeup = asyncio.Event()
        producer: Optional[threading.Thread] = None
        loop = asyncio.get_running_loop()
        token: Optional[str] = None
        clean = False
        session: Optional[SessionDescription] = None
        timings = {"encode_s": 0.0, "queue_wait_s": 0.0, "write_s": 0.0}
        reader_task: Optional["asyncio.Task"] = None
        # The newest token this session handed out (requality acks
        # re-issue portable tokens); marked resumable on disconnect.
        live_token: List[Optional[str]] = [None]
        try:
            with trace("net.session") as session_span:
                try:
                    session, token, skip, plan = self._open_session(message)
                except (WireFormatError, NegotiationError) as exc:
                    self._rejects_counter.inc()
                    record_event("session_reject", reason=str(exc))
                    with contextlib.suppress(ConnectionError, OSError):
                        await self._send(writer, encode_error(str(exc), seq=0))
                    clean = True
                    return
                if session_span is not None:
                    session_span.set_tag("session_id", session.session_id)
                    session_span.set_tag("clip", session.clip_name)
                    if skip:
                        session_span.set_tag("resumed_at", skip)
                await self._send(
                    writer,
                    encode_session(session, seq=0, token=token, resumed_at=skip),
                )
                adaptation = AdaptationControl(plan=plan)

                def build_ack(frame, quality, ambient, switch_plan,
                              _session=session, _token=token):
                    new_token = self._requality_token(
                        _token, _session, switch_plan
                    )
                    if new_token is not None and new_token != _token:
                        live_token[0] = new_token
                    return encode_requality_ack(
                        True, frame, quality=quality, ambient=ambient,
                        token=new_token, seq=0,
                    )

                adaptation.ack_builder = build_ack
                adaptation.reject_builder = (
                    lambda frame, reason: encode_requality_ack(
                        False, frame, error=reason, seq=0
                    )
                )
                reader_task = loop.create_task(
                    self._read_requests(reader, adaptation, session)
                )
                # Copy this task's context so the producer's spans
                # (net.produce, server.stream, engine stages) nest under
                # net.session instead of forming an orphan thread trace.
                producer_ctx = contextvars.copy_context()
                producer = threading.Thread(
                    target=producer_ctx.run,
                    args=(self._produce, session, out, cancelled, loop,
                          wakeup, skip, adaptation),
                    name=f"net-session-{session.session_id}",
                    daemon=True,
                )
                producer.start()
                sent = 0
                try:
                    while True:
                        self._queue_hist.observe(out.qsize())
                        t0 = perf_counter()
                        item = await self._take(out, wakeup)
                        timings["queue_wait_s"] += perf_counter() - t0
                        if isinstance(item, Exception):
                            raise item
                        if isinstance(item, _WireBatch):
                            t1 = perf_counter()
                            writer.write(item.buffer)
                            await writer.drain()
                            timings["write_s"] += perf_counter() - t1
                            self._records_counter.inc(item.records)
                            self._bytes_counter.inc(len(item.buffer))
                            sent += item.records
                            continue
                        if isinstance(item, tuple) and item[0] is _DONE:
                            _, packet_count, frame_count, encode_s = item
                            timings["encode_s"] += encode_s
                            await self._send(
                                writer,
                                encode_end(packet_count, frame_count, seq=sent + 1),
                                timings=timings,
                            )
                            clean = True
                            break
                        await self._send(writer, item, timings=timings)
                        sent += 1
                finally:
                    if session_span is not None:
                        tags = {"session_id": session.session_id}
                        emit_span("net.encode", timings["encode_s"], tags=tags)
                        emit_span("net.queue.wait", timings["queue_wait_s"],
                                  tags=tags)
                        emit_span("net.write", timings["write_s"], tags=tags)
        except (ConnectionError, OSError):
            self._disconnects_counter.inc()
            record_event(
                "session_disconnect",
                session_id=None if session is None else session.session_id,
            )
        except asyncio.CancelledError:
            self._disconnects_counter.inc()
            record_event(
                "session_disconnect",
                session_id=None if session is None else session.session_id,
                cancelled=True,
            )
            raise
        else:
            if session is not None and clean:
                record_event("session_end", session_id=session.session_id,
                             clip=session.clip_name)
        finally:
            if reader_task is not None:
                reader_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await reader_task
            self._token_disconnected(token)
            self._token_disconnected(live_token[0])
            cancelled.set()
            if producer is not None:
                # The producer re-checks ``cancelled`` within one 0.1 s
                # put tick, so this join is bounded; running it off the
                # loop thread is unnecessary for such a short wait.
                with contextlib.suppress(asyncio.CancelledError):
                    while producer.is_alive():
                        await asyncio.sleep(0.02)
            if not clean and writer.transport is not None:
                # A graceful close would wait to flush buffered records
                # to a peer that is gone (or cancelled us by never
                # reading); drop the buffer so the close is bounded.
                writer.transport.abort()
            await self._close_writer(writer)
            self._active_gauge.dec()

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), timeout=5.0)
        except (ConnectionError, OSError):
            pass
        except asyncio.TimeoutError:
            if writer.transport is not None:  # peer never drained; force it
                writer.transport.abort()

    async def _wait_tasks(self) -> None:
        """Wait for all session tasks to unwind after cancellation."""
        while self._tasks:
            await asyncio.sleep(0.01)
