"""Real network transport for annotated streams (asyncio TCP).

The paper's Figure 1 pipeline is server → proxy → wireless hop → PDA.
Up to this layer the repo *models* that path (``repro.streaming`` computes
delivery timing without moving bytes); ``repro.net`` puts the annotated
stream on an actual socket:

* :mod:`repro.net.codec` — binary wire format: length-prefixed records
  with a fixed 32-byte header (the same ``PACKET_HEADER_BYTES`` the
  network model charges), CRC32 integrity, zero-copy frame payloads.
* :mod:`repro.net.messages` — the control-packet vocabulary (hello /
  resume / requality / session / end / busy / health / status /
  stats / statsdump / error) used for session negotiation, mid-stream
  adaptation, load shedding, health probing and live stats scraping on
  the wire; hello/resume carry distributed-
  trace ids so server spans link under the client's fetch trace.  Also
  the *portable* resume-token format that lets any server over the same
  deterministic catalog adopt another server's session (fleet failover).
* :mod:`repro.net.config` — :class:`ServeConfig` / :class:`FetchOptions`,
  the frozen config objects behind the serve and fetch entry points
  (shared by the facade, the CLI and every :mod:`repro.fleet` worker).
* :mod:`repro.net.server` — :class:`AnnotationStreamServer`: hosts many
  concurrent sessions over ``asyncio.start_server`` with per-session
  bounded send queues (backpressure), admission control with a bounded
  accept queue and busy-shedding, token-based session resume, graceful
  drain and clean cancellation.
* :mod:`repro.net.client` — :class:`AsyncMobileClient`: timeouts,
  exponential retry with jitter, protocol-error recovery,
  reconnect-with-resume and an optional :class:`CircuitBreaker`; plus
  :class:`BatteryClient`, which issues mid-stream ``requality`` steps
  as its modeled battery drains and its simulated light sensor changes.
* :mod:`repro.net.fault` — :class:`LossyTransport`: a deterministic
  fault-injecting TCP relay (delay / drop / truncate / corrupt /
  connection-kill / stall), parameterized from the
  :class:`~repro.streaming.network.Link` model.

Everything is instrumented through :mod:`repro.telemetry`.
"""

from .codec import (
    WIRE_HEADER_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireFormatError,
    decode_packet,
    encode_packet,
    encode_packet_bytes,
    read_packet,
    wire_size,
)
from .config import FetchOptions, ServeConfig
from .messages import (
    MESSAGE_KINDS,
    BusyInfo,
    ControlMessage,
    EndInfo,
    HelloInfo,
    PortableTokenInfo,
    RequalityInfo,
    ResumeInfo,
    StatsRequest,
    StatusInfo,
    decode_control,
    decode_portable_token,
    encode_portable_token,
    encode_busy,
    encode_end,
    encode_error,
    encode_health,
    encode_hello,
    encode_requality,
    encode_requality_ack,
    encode_resume,
    encode_session,
    encode_stats_request,
    encode_statsdump,
    encode_status,
)
from .fault import FaultSpec, LossyTransport
from .server import (
    STATE_DRAINING,
    STATE_READY,
    STATE_STOPPED,
    AnnotationStreamServer,
)
from .client import (
    AsyncMobileClient,
    BatteryClient,
    CircuitBreaker,
    CircuitOpenError,
    FetchResult,
    LatencyStats,
    ServerBusyError,
    StreamFetchError,
    fetch_stats,
    fetch_stats_sync,
    fetch_status,
    fetch_status_sync,
)

__all__ = [
    "WIRE_HEADER_BYTES",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireFormatError",
    "encode_packet",
    "encode_packet_bytes",
    "decode_packet",
    "read_packet",
    "wire_size",
    "ServeConfig",
    "FetchOptions",
    "MESSAGE_KINDS",
    "ControlMessage",
    "HelloInfo",
    "ResumeInfo",
    "RequalityInfo",
    "EndInfo",
    "BusyInfo",
    "StatusInfo",
    "StatsRequest",
    "PortableTokenInfo",
    "decode_portable_token",
    "encode_portable_token",
    "decode_control",
    "encode_hello",
    "encode_requality",
    "encode_requality_ack",
    "encode_resume",
    "encode_session",
    "encode_end",
    "encode_busy",
    "encode_health",
    "encode_status",
    "encode_stats_request",
    "encode_statsdump",
    "encode_error",
    "FaultSpec",
    "LossyTransport",
    "AnnotationStreamServer",
    "STATE_READY",
    "STATE_DRAINING",
    "STATE_STOPPED",
    "AsyncMobileClient",
    "BatteryClient",
    "CircuitBreaker",
    "CircuitOpenError",
    "ServerBusyError",
    "FetchResult",
    "LatencyStats",
    "StreamFetchError",
    "fetch_status",
    "fetch_status_sync",
    "fetch_stats",
    "fetch_stats_sync",
]
