"""Real network transport for annotated streams (asyncio TCP).

The paper's Figure 1 pipeline is server → proxy → wireless hop → PDA.
Up to this layer the repo *models* that path (``repro.streaming`` computes
delivery timing without moving bytes); ``repro.net`` puts the annotated
stream on an actual socket:

* :mod:`repro.net.codec` — binary wire format: length-prefixed records
  with a fixed 32-byte header (the same ``PACKET_HEADER_BYTES`` the
  network model charges), CRC32 integrity, zero-copy frame payloads.
* :mod:`repro.net.messages` — the control-packet vocabulary (hello /
  session / end / error) used for session negotiation on the wire.
* :mod:`repro.net.server` — :class:`AnnotationStreamServer`: hosts many
  concurrent sessions over ``asyncio.start_server`` with per-session
  bounded send queues (backpressure) and clean cancellation.
* :mod:`repro.net.client` — :class:`AsyncMobileClient`: timeouts,
  exponential retry with jitter, protocol-error recovery.
* :mod:`repro.net.fault` — :class:`LossyTransport`: a deterministic
  fault-injecting TCP relay (delay / drop / truncate / corrupt),
  parameterized from the :class:`~repro.streaming.network.Link` model.

Everything is instrumented through :mod:`repro.telemetry`.
"""

from .codec import (
    WIRE_HEADER_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireFormatError,
    decode_packet,
    encode_packet,
    encode_packet_bytes,
    read_packet,
    wire_size,
)
from .messages import (
    ControlMessage,
    EndInfo,
    HelloInfo,
    decode_control,
    encode_end,
    encode_error,
    encode_hello,
    encode_session,
)
from .fault import FaultSpec, LossyTransport
from .server import AnnotationStreamServer
from .client import AsyncMobileClient, FetchResult, StreamFetchError

__all__ = [
    "WIRE_HEADER_BYTES",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireFormatError",
    "encode_packet",
    "encode_packet_bytes",
    "decode_packet",
    "read_packet",
    "wire_size",
    "ControlMessage",
    "HelloInfo",
    "EndInfo",
    "decode_control",
    "encode_hello",
    "encode_session",
    "encode_end",
    "encode_error",
    "FaultSpec",
    "LossyTransport",
    "AnnotationStreamServer",
    "AsyncMobileClient",
    "FetchResult",
    "StreamFetchError",
]
