"""Control-packet vocabulary for on-the-wire session negotiation.

The in-process model negotiates with Python objects
(:class:`~repro.streaming.session.SessionRequest` →
:class:`~repro.streaming.session.SessionDescription`); on a socket those
travel as CONTROL packets whose body is a compact JSON object with a
``kind`` tag:

* ``hello``   — client → server: clip name, requested quality, device.
* ``resume``  — client → server: a resume token plus how many data
  records the client already holds; the server continues the stream
  from that offset instead of starting over.
* ``requality`` — bidirectional mid-stream adaptation.  Client →
  server: switch the live session to a different quality and/or
  ambient bind (at least one of the two), applied at the next scene
  boundary without tearing the connection down.  Server → client: the
  in-stream acknowledgement (``applied``, the boundary ``frame``, the
  effective quality/ambient, a re-issued resume ``token``) or a
  rejection (``error``).
* ``session`` — server → client: the accepted session description,
  plus a resume token and (on resume) the offset being continued from.
* ``end``     — server → client: stream complete; carries the emitted
  packet/frame counts so the client can verify nothing was dropped.
* ``busy``    — server → client: load shed; the server is at its
  session cap (or draining) and the client should back off for at
  least ``retry_after_s`` before reconnecting.
* ``health``  — client → server: a ``/healthz``-style probe; answered
  with ``status`` and a close, bypassing admission control.
* ``status``  — server → client: liveness/readiness snapshot (state,
  accepting flag, active/waiting session counts, cap).
* ``stats``   — client → server: a live-observability probe; like
  ``health`` it bypasses admission control, but the answer is a full
  metrics snapshot (JSON or Prometheus text), optionally with recent
  flight-recorder events and collected spans.
* ``statsdump`` — server → client: the ``stats`` answer (health dict,
  metrics snapshot, events, spans).
* ``error``   — server → client: negotiation or serving failure.

``hello`` and ``resume`` optionally carry a ``trace`` id and the
client's open ``span`` id, so server-side spans join the client's
trace (one fetch, one linked tree across the wire).

JSON keeps the control plane debuggable (``tcpdump`` shows readable
records); the data plane — annotation tracks and pixels — stays binary.
Malformed control bodies raise
:class:`~repro.net.codec.WireFormatError`.
"""

from __future__ import annotations

import base64
import binascii
import json
import secrets
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..streaming.packets import MediaPacket, PacketType, control_packet
from ..streaming.session import (
    ClientCapabilities,
    NegotiationError,
    SessionDescription,
    SessionRequest,
)
from .codec import WireFormatError

#: Every control-message kind the wire speaks, in protocol order.  The
#: doc–code sync gate (`tests/test_docs.py`) asserts this tuple and the
#: control-plane table in ``docs/protocol.md`` list exactly the same
#: kinds, so the spec cannot silently drift from the implementation.
MESSAGE_KINDS = (
    "hello",
    "resume",
    "requality",
    "session",
    "end",
    "busy",
    "health",
    "status",
    "stats",
    "statsdump",
    "error",
)


@dataclass(frozen=True)
class HelloInfo:
    """Decoded ``hello`` message: what the client asked for.

    ``trace_id``/``parent_span_id`` (both optional) carry the client's
    distributed-trace context so server-side spans link under the
    client span that opened the connection.
    """

    clip_name: str
    quality: float
    device_name: str
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def to_request(self) -> SessionRequest:
        """Rebuild the in-process session request (validates the device)."""
        return SessionRequest(
            clip_name=self.clip_name,
            quality=self.quality,
            capabilities=ClientCapabilities(device_name=self.device_name),
        )


@dataclass(frozen=True)
class ResumeInfo:
    """Decoded ``resume`` message: where the client wants to continue.

    ``received_packets`` is the number of *data* records (annotation +
    frame) the client already holds from previous connections — the
    implicit ack up to which the server may skip.
    ``trace_id``/``parent_span_id`` relink the resumed server session
    into the same client trace as the original attempt.
    """

    token: str
    received_packets: int
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None


@dataclass(frozen=True)
class RequalityInfo:
    """Decoded ``requality`` message (request or acknowledgement).

    A *request* (client → server) leaves ``applied`` as ``None`` and
    carries the desired ``quality`` and/or ``ambient`` spec (at least
    one).  An *acknowledgement* (server → client, emitted in-stream at
    the switch boundary) sets ``applied``; ``frame`` is the scene-start
    frame the new binding takes effect at, ``quality``/``ambient`` are
    the effective post-switch values, ``token`` is the re-issued resume
    token whose embedded switch plan lets any same-catalog shard replay
    the adapted stream, and ``error`` explains a rejection.
    """

    quality: Optional[float] = None
    ambient: Optional[str] = None
    applied: Optional[bool] = None
    frame: Optional[int] = None
    token: Optional[str] = None
    error: Optional[str] = None

    @property
    def is_request(self) -> bool:
        """True for a client-side request, False for a server ack."""
        return self.applied is None


@dataclass(frozen=True)
class EndInfo:
    """Decoded ``end`` message: the server's emitted-stream totals."""

    packet_count: int
    frame_count: int


@dataclass(frozen=True)
class BusyInfo:
    """Decoded ``busy`` message: the server shed this connection.

    ``retry_after_s`` is the server's backoff hint; ``active_sessions``
    and ``max_sessions`` describe the load that triggered the shed
    (``max_sessions`` is ``None`` when shedding was caused by a drain
    rather than the cap).
    """

    retry_after_s: float
    active_sessions: int
    max_sessions: Optional[int] = None


@dataclass(frozen=True)
class StatusInfo:
    """Decoded ``status`` message: a server health/readiness snapshot."""

    state: str
    accepting: bool
    active_sessions: int
    waiting_sessions: int
    max_sessions: Optional[int] = None
    resumable_sessions: int = 0


@dataclass(frozen=True)
class StatsRequest:
    """Decoded ``stats`` probe: what snapshot shape the client wants.

    ``format`` selects the metrics rendering (``json`` or
    ``prometheus``); ``include_events``/``include_spans`` additionally
    request the flight-recorder tail and the collected span events, and
    ``limit`` caps how many of each are returned (``None`` = server
    default).
    """

    format: str = "json"
    include_events: bool = False
    include_spans: bool = False
    limit: Optional[int] = None


@dataclass(frozen=True)
class ControlMessage:
    """One decoded control packet; exactly one payload field is set.

    For ``session`` messages, ``token`` carries the server-issued resume
    token and ``resumed_at`` the data-record offset the stream continues
    from (0 for a fresh session).  For ``statsdump`` messages,
    ``statsdump`` holds the server's observability snapshot dict.
    """

    kind: str
    hello: Optional[HelloInfo] = None
    session: Optional[SessionDescription] = None
    end: Optional[EndInfo] = None
    error: Optional[str] = None
    resume: Optional[ResumeInfo] = None
    requality: Optional[RequalityInfo] = None
    busy: Optional[BusyInfo] = None
    status: Optional[StatusInfo] = None
    stats: Optional[StatsRequest] = None
    statsdump: Optional[dict] = None
    token: Optional[str] = None
    resumed_at: int = 0


def _dump(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def encode_hello(
    request: SessionRequest,
    seq: int = 0,
    trace_id: Optional[str] = None,
    parent_span_id: Optional[str] = None,
) -> MediaPacket:
    """Build the client's opening control packet.

    ``trace_id``/``parent_span_id`` (optional) propagate the client's
    distributed-trace context so the server session links under it.
    """
    body = {
        "kind": "hello",
        "clip": request.clip_name,
        "quality": request.quality,
        "device": request.capabilities.device_name,
    }
    if trace_id is not None:
        body["trace"] = trace_id
    if parent_span_id is not None:
        body["span"] = parent_span_id
    return control_packet(seq, _dump(body))


def encode_resume(
    token: str,
    received_packets: int,
    seq: int = 0,
    trace_id: Optional[str] = None,
    parent_span_id: Optional[str] = None,
) -> MediaPacket:
    """Build the client's reconnect-with-resume control packet.

    ``token`` is the server-issued resume token from the original
    session message; ``received_packets`` is how many data records the
    client already holds (the server skips exactly that many).
    ``trace_id``/``parent_span_id`` relink the resumed server session
    into the client's trace.
    """
    if received_packets < 0:
        raise ValueError("received_packets must be non-negative")
    body = {
        "kind": "resume",
        "token": token,
        "received": received_packets,
    }
    if trace_id is not None:
        body["trace"] = trace_id
    if parent_span_id is not None:
        body["span"] = parent_span_id
    return control_packet(seq, _dump(body))


def encode_requality(
    quality: Optional[float] = None,
    ambient: Optional[str] = None,
    seq: int = 0,
) -> MediaPacket:
    """Build the client's mid-stream adaptation request.

    At least one of ``quality`` (a new target level in [0, 1]) and
    ``ambient`` (a preset name or numeric illuminance spec) must be
    given; the server re-binds the live session at the next scene
    boundary and acknowledges in-stream.
    """
    if quality is None and ambient is None:
        raise ValueError("requality needs a quality and/or an ambient")
    body: dict = {"kind": "requality"}
    if quality is not None:
        if not 0.0 <= quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {quality}")
        body["quality"] = float(quality)
    if ambient is not None:
        body["ambient"] = str(ambient)
    return control_packet(seq, _dump(body))


def encode_requality_ack(
    applied: bool,
    frame: int,
    quality: Optional[float] = None,
    ambient: Optional[str] = None,
    token: Optional[str] = None,
    error: Optional[str] = None,
    seq: int = 0,
) -> MediaPacket:
    """Build the server's in-stream answer to a ``requality`` request.

    ``frame`` is the scene boundary the switch takes effect at (or the
    current position for a rejection); ``token`` re-issues the resume
    token with the applied switch embedded so failover replays the
    adapted stream.
    """
    if frame < 0:
        raise ValueError("frame must be non-negative")
    body: dict = {
        "kind": "requality",
        "applied": bool(applied),
        "frame": int(frame),
    }
    if quality is not None:
        body["quality"] = float(quality)
    if ambient is not None:
        body["ambient"] = str(ambient)
    if token is not None:
        body["token"] = token
    if error is not None:
        body["error"] = str(error)
    return control_packet(seq, _dump(body))


def encode_session(
    session: SessionDescription,
    seq: int,
    token: Optional[str] = None,
    resumed_at: int = 0,
) -> MediaPacket:
    """Build the server's accepted-session control packet.

    ``token`` (when the server supports resume) lets the client
    reconnect after a drop; ``resumed_at`` tells a resuming client the
    data-record offset the stream continues from.
    """
    body = {
        "kind": "session",
        "session_id": session.session_id,
        "clip": session.clip_name,
        "quality": session.quality,
        "device": session.device_name,
        "fps": session.fps,
        "frame_count": session.frame_count,
    }
    if token is not None:
        body["token"] = token
    if resumed_at:
        body["resumed_at"] = resumed_at
    return control_packet(seq, _dump(body))


def encode_end(packet_count: int, frame_count: int, seq: int) -> MediaPacket:
    """Build the server's end-of-stream control packet."""
    return control_packet(seq, _dump({
        "kind": "end",
        "packet_count": packet_count,
        "frame_count": frame_count,
    }))


def encode_busy(
    retry_after_s: float,
    active_sessions: int,
    max_sessions: Optional[int] = None,
    seq: int = 0,
) -> MediaPacket:
    """Build the server's load-shed (BUSY / RETRY_AFTER) control packet."""
    if retry_after_s < 0:
        raise ValueError("retry_after_s must be non-negative")
    return control_packet(seq, _dump({
        "kind": "busy",
        "retry_after_s": retry_after_s,
        "active": active_sessions,
        "max": max_sessions,
    }))


def encode_health(seq: int = 0) -> MediaPacket:
    """Build the client's ``/healthz``-style probe control packet."""
    return control_packet(seq, _dump({"kind": "health"}))


def encode_status(
    state: str,
    accepting: bool,
    active_sessions: int,
    waiting_sessions: int,
    max_sessions: Optional[int] = None,
    resumable_sessions: int = 0,
    seq: int = 0,
) -> MediaPacket:
    """Build the server's health/readiness answer to a ``health`` probe."""
    return control_packet(seq, _dump({
        "kind": "status",
        "state": state,
        "accepting": bool(accepting),
        "active": active_sessions,
        "waiting": waiting_sessions,
        "max": max_sessions,
        "resumable": resumable_sessions,
    }))


def encode_stats_request(
    format: str = "json",
    include_events: bool = False,
    include_spans: bool = False,
    limit: Optional[int] = None,
    seq: int = 0,
) -> MediaPacket:
    """Build the client's live-observability probe control packet.

    ``format`` selects the metrics rendering (``json``/``prometheus``);
    ``include_events``/``include_spans`` request the flight-recorder
    tail and collected spans, ``limit`` caps how many of each come back.
    """
    if format not in ("json", "prometheus"):
        raise ValueError(f"unknown stats format {format!r}")
    body: dict = {"kind": "stats", "format": format}
    if include_events:
        body["events"] = True
    if include_spans:
        body["spans"] = True
    if limit is not None:
        if limit < 0:
            raise ValueError("limit must be non-negative")
        body["limit"] = int(limit)
    return control_packet(seq, _dump(body))


def encode_statsdump(payload: dict, seq: int = 0) -> MediaPacket:
    """Build the server's answer to a ``stats`` probe.

    ``payload`` is the JSON-serializable observability snapshot
    (``health``, ``metrics``/``prometheus``, optional ``events`` and
    ``spans`` keys).
    """
    body = {"kind": "statsdump"}
    body.update(payload)
    return control_packet(seq, _dump(body))


def encode_error(message: str, seq: int) -> MediaPacket:
    """Build the server's failure control packet."""
    return control_packet(seq, _dump({"kind": "error", "message": message}))


def decode_control(packet: MediaPacket) -> ControlMessage:
    """Parse a CONTROL packet body into a :class:`ControlMessage`."""
    if packet.ptype is not PacketType.CONTROL:
        raise WireFormatError(f"expected a control packet, got {packet.ptype.value}")
    try:
        obj = json.loads(packet.payload.decode("utf-8"))
        kind = obj["kind"]
        if kind == "hello":
            trace_id = obj.get("trace")
            span_id = obj.get("span")
            return ControlMessage(kind=kind, hello=HelloInfo(
                clip_name=str(obj["clip"]),
                quality=float(obj["quality"]),
                device_name=str(obj["device"]),
                trace_id=None if trace_id is None else str(trace_id),
                parent_span_id=None if span_id is None else str(span_id),
            ))
        if kind == "resume":
            received = int(obj["received"])
            if received < 0:
                raise WireFormatError("resume with a negative received count")
            trace_id = obj.get("trace")
            span_id = obj.get("span")
            return ControlMessage(kind=kind, resume=ResumeInfo(
                token=str(obj["token"]),
                received_packets=received,
                trace_id=None if trace_id is None else str(trace_id),
                parent_span_id=None if span_id is None else str(span_id),
            ))
        if kind == "requality":
            quality = obj.get("quality")
            if quality is not None:
                quality = float(quality)
                if not 0.0 <= quality <= 1.0:
                    raise WireFormatError(
                        f"requality quality out of range: {quality}"
                    )
            ambient = obj.get("ambient")
            applied = obj.get("applied")
            frame = obj.get("frame")
            if applied is None:
                if quality is None and ambient is None:
                    raise WireFormatError(
                        "requality request without a quality or ambient"
                    )
            elif frame is None or int(frame) < 0:
                raise WireFormatError("requality ack without a valid frame")
            token = obj.get("token")
            error = obj.get("error")
            return ControlMessage(kind=kind, requality=RequalityInfo(
                quality=quality,
                ambient=None if ambient is None else str(ambient),
                applied=None if applied is None else bool(applied),
                frame=None if frame is None else int(frame),
                token=None if token is None else str(token),
                error=None if error is None else str(error),
            ))
        if kind == "session":
            resumed_at = int(obj.get("resumed_at", 0))
            token = obj.get("token")
            return ControlMessage(
                kind=kind,
                session=SessionDescription(
                    session_id=int(obj["session_id"]),
                    clip_name=str(obj["clip"]),
                    quality=float(obj["quality"]),
                    device_name=str(obj["device"]),
                    fps=float(obj["fps"]),
                    frame_count=int(obj["frame_count"]),
                ),
                token=None if token is None else str(token),
                resumed_at=resumed_at,
            )
        if kind == "busy":
            max_sessions = obj.get("max")
            return ControlMessage(kind=kind, busy=BusyInfo(
                retry_after_s=float(obj["retry_after_s"]),
                active_sessions=int(obj["active"]),
                max_sessions=None if max_sessions is None else int(max_sessions),
            ))
        if kind == "health":
            return ControlMessage(kind=kind)
        if kind == "stats":
            fmt = str(obj.get("format", "json"))
            if fmt not in ("json", "prometheus"):
                raise WireFormatError(f"unknown stats format {fmt!r}")
            limit = obj.get("limit")
            if limit is not None:
                limit = int(limit)
                if limit < 0:
                    raise WireFormatError("stats with a negative limit")
            return ControlMessage(kind=kind, stats=StatsRequest(
                format=fmt,
                include_events=bool(obj.get("events", False)),
                include_spans=bool(obj.get("spans", False)),
                limit=limit,
            ))
        if kind == "statsdump":
            payload = {k: v for k, v in obj.items() if k != "kind"}
            return ControlMessage(kind=kind, statsdump=payload)
        if kind == "status":
            max_sessions = obj.get("max")
            return ControlMessage(kind=kind, status=StatusInfo(
                state=str(obj["state"]),
                accepting=bool(obj["accepting"]),
                active_sessions=int(obj["active"]),
                waiting_sessions=int(obj["waiting"]),
                max_sessions=None if max_sessions is None else int(max_sessions),
                resumable_sessions=int(obj.get("resumable", 0)),
            ))
        if kind == "end":
            return ControlMessage(kind=kind, end=EndInfo(
                packet_count=int(obj["packet_count"]),
                frame_count=int(obj["frame_count"]),
            ))
        if kind == "error":
            return ControlMessage(kind=kind, error=str(obj["message"]))
    except WireFormatError:
        raise
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"malformed control body: {exc}") from exc
    raise WireFormatError(f"unknown control message kind {kind!r}")


def raise_for_error(message: ControlMessage) -> ControlMessage:
    """Turn a server ``error`` message into a :class:`NegotiationError`."""
    if message.kind == "error":
        raise NegotiationError(f"server rejected the session: {message.error}")
    return message


# ----------------------------------------------------------------------
# Portable resume tokens
# ----------------------------------------------------------------------
#: Version prefix of portable resume tokens.
PORTABLE_TOKEN_PREFIX = "p1"


@dataclass(frozen=True)
class PortableTokenInfo:
    """The session request embedded in a portable resume token.

    Plain random tokens only resolve in the process that issued them; a
    *portable* token additionally carries the (clip, quality, device)
    triple that opened the session.  Because annotated streams are
    deterministic functions of that triple, **any** server holding the
    same catalog can adopt the token and replay the stream
    byte-identically — which is how the sharded fleet
    (:mod:`repro.fleet`) survives a shard death: the router re-routes
    the client's resume to a replica shard and the replica rebuilds the
    session from the token alone.
    """

    clip_name: str
    quality: float
    device_name: str
    #: Applied mid-stream switches, oldest first: ``(frame, quality,
    #: ambient_spec_or_None)``.  ``quality`` above stays the *opening*
    #: quality (so the head annotation replays identically); a replica
    #: adopting the token replays each switch at exactly its recorded
    #: frame, reproducing the adapted stream byte for byte.
    switches: Tuple[Tuple[int, float, Optional[str]], ...] = ()

    def to_request(self) -> SessionRequest:
        """Rebuild the session request the token was issued for."""
        return SessionRequest(
            clip_name=self.clip_name,
            quality=self.quality,
            capabilities=ClientCapabilities(device_name=self.device_name),
        )


def encode_portable_token(
    clip_name: str, quality: float, device_name: str,
    switches: Sequence[Tuple[int, float, Optional[str]]] = (),
) -> str:
    """Issue a fresh portable resume token for one session.

    The token is ``p1.<base64 session request>.<random suffix>``: the
    middle section makes it adoptable by any replica holding the same
    catalog (see :class:`PortableTokenInfo`), the 64-bit random suffix
    keeps every issued token unique so per-token server state (resume
    registries, takeover semantics) behaves exactly like it does for
    opaque tokens.  ``switches`` embeds the session's applied mid-stream
    requality plan (oldest first), so tokens re-issued after adaptation
    stay adoptable with byte-identical replay.
    """
    body_obj: dict = {
        "c": clip_name,
        "q": quality,
        "d": device_name,
    }
    if switches:
        body_obj["s"] = [
            [int(frame), float(q), ambient]
            for frame, q, ambient in switches
        ]
    body = _dump(body_obj)
    encoded = base64.urlsafe_b64encode(body).decode("ascii").rstrip("=")
    return f"{PORTABLE_TOKEN_PREFIX}.{encoded}.{secrets.token_hex(8)}"


def decode_portable_token(token: str) -> Optional[PortableTokenInfo]:
    """Parse a portable resume token; ``None`` for anything else.

    Opaque random tokens, truncated or tampered portable tokens, and
    tokens from future format versions all return ``None`` — the caller
    falls back to its local resume registry (and ultimately to a
    fresh-fetch rejection), never raises.
    """
    parts = token.split(".")
    if len(parts) != 3 or parts[0] != PORTABLE_TOKEN_PREFIX:
        return None
    encoded = parts[1]
    try:
        padded = encoded + "=" * (-len(encoded) % 4)
        obj = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
        switches = []
        for entry in obj.get("s", []):
            frame, q, ambient = entry
            switches.append((
                int(frame), float(q),
                None if ambient is None else str(ambient),
            ))
        return PortableTokenInfo(
            clip_name=str(obj["c"]),
            quality=float(obj["q"]),
            device_name=str(obj["d"]),
            switches=tuple(switches),
        )
    except (ValueError, KeyError, TypeError, binascii.Error,
            UnicodeDecodeError):
        return None
