"""Control-packet vocabulary for on-the-wire session negotiation.

The in-process model negotiates with Python objects
(:class:`~repro.streaming.session.SessionRequest` →
:class:`~repro.streaming.session.SessionDescription`); on a socket those
travel as CONTROL packets whose body is a compact JSON object with a
``kind`` tag:

* ``hello``   — client → server: clip name, requested quality, device.
* ``session`` — server → client: the accepted session description.
* ``end``     — server → client: stream complete; carries the emitted
  packet/frame counts so the client can verify nothing was dropped.
* ``error``   — server → client: negotiation or serving failure.

JSON keeps the control plane debuggable (``tcpdump`` shows readable
records); the data plane — annotation tracks and pixels — stays binary.
Malformed control bodies raise
:class:`~repro.net.codec.WireFormatError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..streaming.packets import MediaPacket, PacketType, control_packet
from ..streaming.session import (
    ClientCapabilities,
    NegotiationError,
    SessionDescription,
    SessionRequest,
)
from .codec import WireFormatError


@dataclass(frozen=True)
class HelloInfo:
    """Decoded ``hello`` message: what the client asked for."""

    clip_name: str
    quality: float
    device_name: str

    def to_request(self) -> SessionRequest:
        """Rebuild the in-process session request (validates the device)."""
        return SessionRequest(
            clip_name=self.clip_name,
            quality=self.quality,
            capabilities=ClientCapabilities(device_name=self.device_name),
        )


@dataclass(frozen=True)
class EndInfo:
    """Decoded ``end`` message: the server's emitted-stream totals."""

    packet_count: int
    frame_count: int


@dataclass(frozen=True)
class ControlMessage:
    """One decoded control packet; exactly one payload field is set."""

    kind: str
    hello: Optional[HelloInfo] = None
    session: Optional[SessionDescription] = None
    end: Optional[EndInfo] = None
    error: Optional[str] = None


def _dump(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def encode_hello(request: SessionRequest, seq: int = 0) -> MediaPacket:
    """Build the client's opening control packet."""
    return control_packet(seq, _dump({
        "kind": "hello",
        "clip": request.clip_name,
        "quality": request.quality,
        "device": request.capabilities.device_name,
    }))


def encode_session(session: SessionDescription, seq: int) -> MediaPacket:
    """Build the server's accepted-session control packet."""
    return control_packet(seq, _dump({
        "kind": "session",
        "session_id": session.session_id,
        "clip": session.clip_name,
        "quality": session.quality,
        "device": session.device_name,
        "fps": session.fps,
        "frame_count": session.frame_count,
    }))


def encode_end(packet_count: int, frame_count: int, seq: int) -> MediaPacket:
    """Build the server's end-of-stream control packet."""
    return control_packet(seq, _dump({
        "kind": "end",
        "packet_count": packet_count,
        "frame_count": frame_count,
    }))


def encode_error(message: str, seq: int) -> MediaPacket:
    """Build the server's failure control packet."""
    return control_packet(seq, _dump({"kind": "error", "message": message}))


def decode_control(packet: MediaPacket) -> ControlMessage:
    """Parse a CONTROL packet body into a :class:`ControlMessage`."""
    if packet.ptype is not PacketType.CONTROL:
        raise WireFormatError(f"expected a control packet, got {packet.ptype.value}")
    try:
        obj = json.loads(packet.payload.decode("utf-8"))
        kind = obj["kind"]
        if kind == "hello":
            return ControlMessage(kind=kind, hello=HelloInfo(
                clip_name=str(obj["clip"]),
                quality=float(obj["quality"]),
                device_name=str(obj["device"]),
            ))
        if kind == "session":
            return ControlMessage(kind=kind, session=SessionDescription(
                session_id=int(obj["session_id"]),
                clip_name=str(obj["clip"]),
                quality=float(obj["quality"]),
                device_name=str(obj["device"]),
                fps=float(obj["fps"]),
                frame_count=int(obj["frame_count"]),
            ))
        if kind == "end":
            return ControlMessage(kind=kind, end=EndInfo(
                packet_count=int(obj["packet_count"]),
                frame_count=int(obj["frame_count"]),
            ))
        if kind == "error":
            return ControlMessage(kind=kind, error=str(obj["message"]))
    except WireFormatError:
        raise
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"malformed control body: {exc}") from exc
    raise WireFormatError(f"unknown control message kind {kind!r}")


def raise_for_error(message: ControlMessage) -> ControlMessage:
    """Turn a server ``error`` message into a :class:`NegotiationError`."""
    if message.kind == "error":
        raise NegotiationError(f"server rejected the session: {message.error}")
    return message
