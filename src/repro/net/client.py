"""`AsyncMobileClient`: fetch annotated streams over the wire, robustly.

The receive side of :mod:`repro.net`.  A fetch opens a TCP connection,
sends the hello, reads the session description, then drains annotation
and frame records until the server's ``end`` control message.  Every
failure mode maps to a recovery path:

* connect/read **timeouts** (``connect_timeout_s`` / ``read_timeout_s``),
* **transport errors** (reset, refused, mid-record close),
* **protocol errors** (CRC mismatch, malformed records, missing frames,
  wrong counts in ``end``),
* **load shedding** — a server ``busy`` message makes the client honor
  the carried retry-after hint before reconnecting,
* **mid-stream drops** — when the server issued a resume token, the
  retry loop becomes a *reconnect-with-resume* state machine: the next
  attempt presents the token plus the count of records already received
  and continues from that offset instead of starting over.  If the
  server rejects the token (window expired, restart), the client falls
  back to a fresh fetch.  Annotated streams are deterministic, so a
  resumed stream is byte-identical to an uninterrupted one.

Attempts back off exponentially with jitter (seedable for deterministic
tests).  An optional :class:`CircuitBreaker` trips after a configurable
run of consecutive failures, failing fast for a cooldown period instead
of hammering a dead server.  Negotiation rejections (unknown
clip/device) are *not* retried: the server answered authoritatively.

Playback is unchanged from the in-process path: the fetched packets feed
:meth:`~repro.streaming.client.MobileClient.play_stream`, so everything
the paper's client does (backlight schedule, power accounting) applies
byte-identically to wire-delivered streams.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..core.policy import QUALITY_LEVELS
from ..display.ambient import AMBIENT_BY_NAME, DARK_ROOM, as_ambient_trace
from ..display.devices import DeviceProfile
from ..power.battery import Battery, LoadTrace
from ..player.playback import PlaybackResult
from ..streaming.client import MobileClient, StreamProtocolError
from ..streaming.packets import MediaPacket, PacketType
from ..streaming.session import NegotiationError, SessionDescription
from ..telemetry import (
    emit_span,
    record_event,
    registry as telemetry_registry,
    trace,
)
from .codec import WireFormatError, encode_packet_bytes, read_packet
from .messages import (
    RequalityInfo,
    StatusInfo,
    decode_control,
    encode_health,
    encode_hello,
    encode_requality,
    encode_resume,
    encode_stats_request,
    raise_for_error,
)


class StreamFetchError(ConnectionError):
    """A fetch ran out of retries; carries the last underlying failure."""


class ServerBusyError(ConnectionError):
    """The server shed the connection with a busy message.

    ``retry_after_s`` is the server's minimum-backoff hint; the retry
    loop sleeps at least that long before reconnecting.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(StreamFetchError):
    """The circuit breaker is open: failing fast instead of connecting."""


class CircuitBreaker:
    """Trip after N consecutive failures, fail fast for a cooldown.

    States follow the classic pattern: *closed* (attempts flow),
    *open* (attempts raise :class:`CircuitOpenError` until
    ``reset_after_s`` has elapsed), then *half-open* (one trial attempt
    is allowed; success closes the circuit, failure re-opens it).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker.  Must be >= 1.
    reset_after_s:
        Cooldown before a trial attempt is allowed.
    clock:
        Monotonic time source; injectable for deterministic tests.

    Raises
    ------
    ValueError
        If ``failure_threshold`` < 1 or ``reset_after_s`` < 0.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._failures = 0
        self._open_until: Optional[float] = None

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._failures

    @property
    def is_open(self) -> bool:
        """True while attempts would fail fast (cooldown not elapsed)."""
        return self._open_until is not None and self._clock() < self._open_until

    def before_attempt(self) -> None:
        """Gate an attempt: raises :class:`CircuitOpenError` while open."""
        if self.is_open:
            remaining = self._open_until - self._clock()
            raise CircuitOpenError(
                f"circuit breaker open after {self._failures} consecutive "
                f"failures; retry allowed in {remaining:.2f}s"
            )

    def record_failure(self) -> None:
        """Count a failed attempt; trips the breaker at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            if self._open_until is None:
                record_event("breaker_open", failures=self._failures,
                             reset_after_s=self.reset_after_s)
            self._open_until = self._clock() + self.reset_after_s

    def record_success(self) -> None:
        """Close the circuit and forget the failure run."""
        if self._open_until is not None:
            record_event("breaker_close", failures=self._failures)
        self._failures = 0
        self._open_until = None


@dataclass(frozen=True)
class LatencyStats:
    """Per-session delivery latency measured against the playout clock.

    ``ttff_s`` is time-to-first-frame from the start of :meth:`fetch`
    (connection setup, retries and annotation records included — the
    user-visible startup delay).  ``mean_gap_s``/``max_gap_s``
    summarize inter-frame arrival gaps.  ``deadline_misses`` counts
    frames that arrived after their playout deadline under the model
    used by :class:`~repro.streaming.network.DeliverySchedule`:
    playback starts when the first frame lands, frame ``i`` is due at
    ``first_arrival + i / fps``.
    """

    ttff_s: float
    mean_gap_s: float
    max_gap_s: float
    deadline_misses: int
    frame_count: int

    @classmethod
    def from_arrivals(
        cls, start_s: float, arrivals: List[float], fps: float
    ) -> Optional["LatencyStats"]:
        """Derive the stats from raw arrival timestamps.

        Parameters
        ----------
        start_s:
            ``perf_counter`` timestamp when the fetch began.
        arrivals:
            Per-frame ``perf_counter`` arrival timestamps, in
            presentation order.
        fps:
            The clip's playout rate (deadline spacing).  Must be > 0.

        Returns ``None`` when no frames arrived.
        """
        if not arrivals:
            return None
        if fps <= 0:
            raise ValueError("fps must be positive")
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        first = arrivals[0]
        interval = 1.0 / fps
        misses = sum(
            1 for i, t in enumerate(arrivals) if t - first > i * interval
        )
        return cls(
            ttff_s=first - start_s,
            mean_gap_s=(sum(gaps) / len(gaps)) if gaps else 0.0,
            max_gap_s=max(gaps) if gaps else 0.0,
            deadline_misses=misses,
            frame_count=len(arrivals),
        )


@dataclass(frozen=True)
class FetchResult:
    """One successfully fetched stream.

    ``packets`` holds the data-plane sequence exactly as the in-process
    :meth:`~repro.streaming.server.MediaServer.stream` would have yielded
    it (annotation packets first, then frames in presentation order);
    control traffic is consumed by the protocol and not included.
    ``attempts`` counts connections made and ``resumes`` how many of
    them continued mid-stream via a resume token.  ``latency`` carries
    the per-session :class:`LatencyStats` (``None`` with telemetry
    disabled) and ``trace_id`` the distributed trace the fetch's spans
    were recorded under (``None`` with telemetry disabled).
    ``requalities`` holds the mid-stream ``requality`` acknowledgements
    in arrival order — each applied entry marks the frame a re-bound
    annotation (present in ``packets``) took effect at.
    """

    session: SessionDescription
    packets: List[MediaPacket]
    attempts: int
    resumes: int = 0
    latency: Optional[LatencyStats] = None
    trace_id: Optional[str] = None
    requalities: Tuple[RequalityInfo, ...] = ()

    @property
    def frame_count(self) -> int:
        """Number of frame packets fetched."""
        return sum(1 for p in self.packets if p.ptype is PacketType.FRAME)


@dataclass
class _FetchProgress:
    """Mutable reconnect state threaded through the retry loop."""

    session: Optional[SessionDescription] = None
    token: Optional[str] = None
    packets: List[MediaPacket] = field(default_factory=list)
    frames_seen: int = 0
    resumes: int = 0
    started_s: float = 0.0
    frame_arrivals: List[float] = field(default_factory=list)
    decode_s: float = 0.0
    requalities: List[RequalityInfo] = field(default_factory=list)
    # Scratch for adaptive clients (_advise): last requested quality /
    # ambient, thresholds crossed.  Survives a resume, like packets.
    adapt: dict = field(default_factory=dict)

    @property
    def resumable(self) -> bool:
        """Whether the next attempt can present a resume token."""
        return self.token is not None and self.session is not None

    def reset(self) -> None:
        """Discard partial state; the next attempt starts fresh.

        ``started_s`` and ``decode_s`` survive: time-to-first-frame is
        measured from the original fetch start, and decode cost
        aggregates across attempts.
        """
        self.session = None
        self.token = None
        self.packets = []
        self.frames_seen = 0
        self.frame_arrivals = []
        self.requalities = []
        self.adapt = {}


class _ResumeRejected(Exception):
    """The server refused our resume token; retry from scratch."""


class AsyncMobileClient:
    """Asyncio client fetching annotated streams from an
    :class:`~repro.net.server.AnnotationStreamServer`.

    Parameters
    ----------
    device:
        The handheld's profile; advertised in the hello and used for
        playback.
    connect_timeout_s / read_timeout_s:
        Deadline for establishing a connection / for each record read.
    max_retries:
        How many times a failed fetch is re-attempted (0 = single shot).
    backoff_base_s / backoff_max_s / jitter_s:
        Exponential backoff: attempt ``k`` sleeps
        ``min(base * 2**k, max) + uniform(0, jitter)``.
    rng:
        Jitter source; pass a seeded :class:`random.Random` for
        deterministic schedules in tests.
    resume:
        When True (default), a mid-stream drop reconnects with the
        server-issued resume token and continues from the last received
        record instead of refetching from scratch.
    circuit_breaker:
        Optional :class:`CircuitBreaker` shared across fetches; when
        open, :meth:`fetch` raises :class:`CircuitOpenError`
        immediately.  ``None`` disables fail-fast behavior.

    Raises
    ------
    ValueError
        If any timeout/backoff parameter is out of range.
    """

    def __init__(
        self,
        device: DeviceProfile,
        connect_timeout_s: float = 5.0,
        read_timeout_s: float = 30.0,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter_s: float = 0.05,
        rng: Optional[random.Random] = None,
        resume: bool = True,
        circuit_breaker: Optional[CircuitBreaker] = None,
    ):
        if connect_timeout_s <= 0 or read_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_s < 0 or backoff_max_s < 0 or jitter_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        self.device = device
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.rng = rng if rng is not None else random.Random()
        self.resume = resume
        self.circuit_breaker = circuit_breaker
        self._player = MobileClient(device)
        reg = telemetry_registry()
        self._retries_counter = reg.counter(
            "repro_net_client_retries_total",
            help="Fetch attempts retried after a transport/protocol failure.",
        )
        self._protocol_errors_counter = reg.counter(
            "repro_net_client_protocol_errors_total",
            help="Wire protocol violations observed by clients.",
        )
        self._fetches_counter = reg.counter(
            "repro_net_client_fetches_total", help="Streams fetched successfully.",
        )
        self._resumes_counter = reg.counter(
            "repro_net_client_resumes_total",
            help="Reconnects that continued a stream via a resume token.",
        )
        self._busy_counter = reg.counter(
            "repro_net_client_busy_total",
            help="Connections shed by a busy server (client backed off).",
        )
        self._circuit_open_counter = reg.counter(
            "repro_net_client_circuit_open_total",
            help="Fetches failed fast because the circuit breaker was open.",
        )
        self._ttff_hist = reg.histogram(
            "repro_net_client_ttff_seconds",
            help="Time from fetch start to the first frame record.",
        )
        self._frame_gap_hist = reg.histogram(
            "repro_net_client_frame_gap_seconds",
            help="Inter-frame arrival gaps observed by clients.",
        )
        self._deadline_miss_counter = reg.counter(
            "repro_net_client_deadline_misses_total",
            help="Frames that arrived after their playout deadline "
                 "(playback anchored at first-frame arrival, 1/fps spacing).",
        )
        self._requality_counter = reg.counter(
            "repro_net_client_requalities_total",
            help="Mid-stream requality requests sent to servers.",
        )

    # ------------------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based): exponential + jitter."""
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        return base + self.rng.uniform(0.0, self.jitter_s)

    async def _read(self, reader) -> Optional[MediaPacket]:
        return await asyncio.wait_for(
            read_packet(reader), timeout=self.read_timeout_s
        )

    async def _open_stream(self, host, port, clip_name, quality, progress,
                           attempt: int = 0):
        """Connect and negotiate; returns (reader, writer) mid-protocol.

        Presents a resume token when ``progress`` carries one, a fresh
        hello otherwise.  The opening message carries the active trace
        id plus this connect span's id, so the server's spans link
        under this attempt.  Raises :class:`ServerBusyError` on load
        shed and :class:`_ResumeRejected` when the server refuses the
        token.
        """
        resuming = self.resume and progress.resumable
        with trace("net.connect") as span:
            if span is not None:
                span.set_tag("attempt", attempt)
                if resuming:
                    span.set_tag("resuming", True)
            trace_id = None if span is None else span.trace_id
            span_id = None if span is None else span.span_id
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=self.connect_timeout_s
            )
            try:
                if resuming:
                    opening = encode_resume(progress.token, len(progress.packets),
                                            trace_id=trace_id,
                                            parent_span_id=span_id)
                else:
                    progress.reset()
                    request = self._player.request(clip_name, quality)
                    opening = encode_hello(request, trace_id=trace_id,
                                           parent_span_id=span_id)
                writer.write(encode_packet_bytes(opening))
                await writer.drain()

                first = await self._read(reader)
                if first is None:
                    raise WireFormatError("server closed before answering the hello")
                message = decode_control(first)
                if message.kind == "busy":
                    busy = message.busy
                    raise ServerBusyError(
                        f"server busy ({busy.active_sessions} active"
                        + (f" of {busy.max_sessions}" if busy.max_sessions else "")
                        + f"); retry after {busy.retry_after_s:.2f}s",
                        retry_after_s=busy.retry_after_s,
                    )
                try:
                    message = raise_for_error(message)
                except NegotiationError:
                    if resuming:
                        raise _ResumeRejected() from None
                    raise
                if message.kind != "session":
                    raise WireFormatError(
                        f"expected a session message, got {message.kind!r}"
                    )
                if resuming:
                    if message.resumed_at != len(progress.packets):
                        raise WireFormatError(
                            f"server resumed at {message.resumed_at}, client "
                            f"holds {len(progress.packets)} records"
                        )
                    progress.resumes += 1
                    self._resumes_counter.inc()
                else:
                    progress.session = message.session
                    progress.token = message.token if self.resume else None
                if span is not None and progress.session is not None:
                    span.set_tag("session_id", progress.session.session_id)
                return reader, writer
            except BaseException:
                await self._close_writer(writer)
                raise

    async def _fetch_once(
        self, host: str, port: int, clip_name: str, quality: float,
        progress: _FetchProgress, attempt: int = 0,
    ) -> FetchResult:
        """One connection's worth of fetching, continuing ``progress``."""
        reader, writer = await self._open_stream(
            host, port, clip_name, quality, progress, attempt=attempt
        )
        timings = {"decode_s": 0.0}
        try:
            packets = progress.packets
            while True:
                packet = await asyncio.wait_for(
                    read_packet(reader, timings=timings),
                    timeout=self.read_timeout_s,
                )
                if packet is None:
                    raise WireFormatError("server closed before end-of-stream")
                if packet.ptype is PacketType.CONTROL:
                    message = raise_for_error(decode_control(packet))
                    if message.kind == "requality":
                        self._handle_requality_ack(message.requality, progress)
                        continue  # control traffic: not a data record
                    if message.kind != "end":
                        raise WireFormatError(
                            f"unexpected control message {message.kind!r} "
                            f"mid-stream"
                        )
                    if len(packets) != message.end.packet_count:
                        raise WireFormatError(
                            f"stream carried {len(packets)} records, server "
                            f"emitted {message.end.packet_count}"
                        )
                    if progress.frames_seen != message.end.frame_count:
                        raise WireFormatError(
                            f"stream carried {progress.frames_seen} frames, "
                            f"server emitted {message.end.frame_count}"
                        )
                    break
                if packet.ptype is PacketType.FRAME:
                    if packet.frame_index != progress.frames_seen:
                        raise WireFormatError(
                            f"frame {packet.frame_index} arrived, expected "
                            f"{progress.frames_seen} (record dropped in transit?)"
                        )
                    progress.frames_seen += 1
                    progress.frame_arrivals.append(perf_counter())
                # An annotation record after frames is a mid-stream
                # re-bind marker (requality): the full replacement track
                # for the frames that follow.  Kept in ``packets`` —
                # playback overlays it from its arrival position.
                packets.append(packet)
                advice = self._advise(progress)
                if advice is not None:
                    quality_req, ambient_req = advice
                    writer.write(encode_packet_bytes(
                        encode_requality(
                            quality=quality_req, ambient=ambient_req
                        )
                    ))
                    await writer.drain()
                    self._requality_counter.inc()
                    record_event(
                        "client_requality_request",
                        quality=quality_req, ambient=ambient_req,
                        frame=progress.frames_seen,
                    )
            return FetchResult(
                session=progress.session,
                packets=packets,
                attempts=1,
                resumes=progress.resumes,
                requalities=tuple(progress.requalities),
            )
        finally:
            progress.decode_s += timings["decode_s"]
            await self._close_writer(writer)

    def _handle_requality_ack(
        self, info: Optional[RequalityInfo], progress: _FetchProgress
    ) -> None:
        """Fold a mid-stream ``requality`` acknowledgement into progress.

        An applied ack updates the resume token (the server re-issues
        portable tokens embedding the switch plan) and the adaptive
        state's authoritative quality/ambient; a rejected ack (no scene
        boundary left) is recorded but changes nothing.
        """
        if info is None or info.is_request:
            raise WireFormatError("malformed requality message from server")
        progress.requalities.append(info)
        if info.applied:
            if info.token is not None and self.resume:
                progress.token = info.token
            if info.quality is not None:
                progress.adapt["quality"] = info.quality
            if info.ambient is not None:
                progress.adapt["ambient"] = info.ambient
        record_event(
            "client_requality_ack", applied=bool(info.applied),
            frame=info.frame, quality=info.quality, ambient=info.ambient,
        )

    def _advise(
        self, progress: _FetchProgress
    ) -> Optional[Tuple[Optional[float], Optional[str]]]:
        """Adaptation hook, called once per received data record.

        Subclasses (see :class:`BatteryClient`) return
        ``(quality, ambient)`` — either may be ``None`` — to send a
        mid-stream ``requality`` request; the base client never adapts.
        Decisions must be driven by *modeled* playback time
        (``frames_seen / fps``), not wall clock, so adaptive fetches
        stay deterministic.
        """
        return None

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def fetch(
        self, host: str, port: int, clip_name: str, quality: float
    ) -> FetchResult:
        """Fetch one annotated stream, retrying on transient failures.

        Transport and protocol failures retry with exponential backoff;
        a mid-stream drop resumes from the last received record when the
        server issued a token; ``busy`` sheds honor the server's
        retry-after hint.  Raises
        :class:`~repro.streaming.session.NegotiationError` on
        authoritative rejection, :class:`CircuitOpenError` when the
        breaker is open, and :class:`StreamFetchError` after exhausting
        ``max_retries``.
        """
        last_error: Optional[BaseException] = None
        progress = _FetchProgress(started_s=perf_counter())
        breaker = self.circuit_breaker
        with trace("net.fetch") as fetch_span:
            if fetch_span is not None:
                fetch_span.set_tag("clip", clip_name)
                fetch_span.set_tag("quality", quality)
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self._retries_counter.inc()
                    delay = self.backoff_s(attempt - 1)
                    if isinstance(last_error, ServerBusyError):
                        delay = max(delay, last_error.retry_after_s)
                    await asyncio.sleep(delay)
                    emit_span("net.retry", delay,
                              tags={"attempt": attempt,
                                    "cause": type(last_error).__name__})
                if breaker is not None:
                    try:
                        breaker.before_attempt()
                    except CircuitOpenError:
                        self._circuit_open_counter.inc()
                        raise
                try:
                    result = await self._fetch_once(
                        host, port, clip_name, quality, progress,
                        attempt=attempt,
                    )
                    self._fetches_counter.inc()
                    if breaker is not None:
                        breaker.record_success()
                    latency = self._finish_latency(progress, result.session)
                    if fetch_span is not None:
                        fetch_span.set_tag("session_id",
                                           result.session.session_id)
                        fetch_span.set_tag("attempts", attempt + 1)
                        emit_span("net.decode", progress.decode_s,
                                  tags={"session_id":
                                        result.session.session_id})
                    return FetchResult(
                        session=result.session,
                        packets=result.packets,
                        attempts=attempt + 1,
                        resumes=result.resumes,
                        latency=latency,
                        trace_id=(None if fetch_span is None
                                  else fetch_span.trace_id),
                        requalities=result.requalities,
                    )
                except NegotiationError:
                    raise  # authoritative rejection; retrying cannot help
                except _ResumeRejected:
                    # Token expired or the server restarted: start over.
                    progress.reset()
                    last_error = StreamProtocolError(
                        "server refused the resume token; refetching"
                    )
                except ServerBusyError as exc:
                    # Load shed, not a failure of the server: back off
                    # without tripping the breaker.
                    self._busy_counter.inc()
                    last_error = exc
                except (StreamProtocolError, asyncio.IncompleteReadError) as exc:
                    self._protocol_errors_counter.inc()
                    record_event("client_protocol_error", clip=clip_name,
                                 reason=str(exc))
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
        raise StreamFetchError(
            f"fetch of {clip_name!r} failed after {self.max_retries + 1} "
            f"attempts: {last_error}"
        ) from last_error

    def _finish_latency(
        self, progress: _FetchProgress, session: SessionDescription
    ) -> Optional[LatencyStats]:
        """Fold a completed fetch's arrivals into the latency metrics."""
        stats = LatencyStats.from_arrivals(
            progress.started_s, progress.frame_arrivals, session.fps
        )
        if stats is None:
            return None
        self._ttff_hist.observe(stats.ttff_s)
        if len(progress.frame_arrivals) > 1:
            self._frame_gap_hist.observe_many(
                [b - a for a, b in zip(progress.frame_arrivals,
                                       progress.frame_arrivals[1:])]
            )
        if stats.deadline_misses:
            self._deadline_miss_counter.inc(stats.deadline_misses)
        return stats

    # ------------------------------------------------------------------
    def play(self, fetched: FetchResult, **playback_kwargs) -> PlaybackResult:
        """Play a fetched stream through the paper's client model."""
        return self._player.play_stream(
            fetched.session, fetched.packets, **playback_kwargs
        )

    async def fetch_and_play(
        self, host: str, port: int, clip_name: str, quality: float,
        **playback_kwargs,
    ) -> PlaybackResult:
        """Fetch then play in one call (playback runs off the event loop)."""
        fetched = await self.fetch(host, port, clip_name, quality)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.play(fetched, **playback_kwargs)
        )


class BatteryClient(AsyncMobileClient):
    """A fetch client that adapts mid-stream to battery and ambient state.

    The degradation loop of the adaptation control plane: during a fetch
    the client tracks a modeled battery (a :class:`~repro.power.battery.
    LoadTrace` drained against a :class:`~repro.power.battery.Battery`)
    and a simulated light sensor (an ambient trace).  Both are driven by
    *modeled* playback time — ``frames_seen / fps`` — so an adaptive
    fetch is deterministic regardless of wire speed.

    * Each time the state of charge falls through a ``soc_thresholds``
      entry, the client requests the next step down the quality ladder
      (a higher clip fraction — more aggressive backlight reduction,
      hence longer runtime; see :data:`repro.core.policy.QUALITY_LEVELS`).
    * Each time the ambient trace's condition changes, the client
      requests a re-bind under the new condition (bright surroundings
      contribute reflected luminance, so the same scenes need less
      backlight).

    Requests ride the live connection as ``requality`` control messages
    and take effect at the server's next scene boundary; the applied
    acknowledgement updates the resume token so drops keep their
    byte-identical replay guarantee.

    Parameters
    ----------
    device:
        The handheld's profile, as for :class:`AsyncMobileClient`.
    battery_trace:
        Load spec draining the battery: a :class:`LoadTrace`, a
        ``"t:watts,..."`` spec string, or a bare wattage.  ``None``
        disables battery-driven quality steps.
    ambient_trace:
        Simulated light-sensor spec (anything
        :func:`repro.display.as_ambient_trace` accepts).  ``None``
        disables ambient re-binds.
    battery:
        The pack model; default :class:`~repro.power.battery.Battery`.
    soc_thresholds:
        State-of-charge levels (fractions) that each trigger one quality
        step down, highest first.
    quality_ladder:
        The clip-fraction ladder to step along, ascending; defaults to
        the paper's five levels.
    **kwargs:
        Everything :class:`AsyncMobileClient` accepts.
    """

    def __init__(
        self,
        device: DeviceProfile,
        battery_trace: Optional[Union[str, float, LoadTrace]] = None,
        ambient_trace=None,
        battery: Optional[Battery] = None,
        soc_thresholds: Sequence[float] = (0.5, 0.3, 0.15, 0.05),
        quality_ladder: Sequence[float] = QUALITY_LEVELS,
        **kwargs,
    ):
        super().__init__(device, **kwargs)
        if battery_trace is None:
            self.load_trace: Optional[LoadTrace] = None
        elif isinstance(battery_trace, LoadTrace):
            self.load_trace = battery_trace
        elif isinstance(battery_trace, (int, float)):
            self.load_trace = LoadTrace.constant(float(battery_trace))
        else:
            self.load_trace = LoadTrace.parse(str(battery_trace))
        self.ambient_trace = (
            None if ambient_trace is None else as_ambient_trace(ambient_trace)
        )
        self.battery = battery if battery is not None else Battery()
        thresholds = tuple(sorted((float(t) for t in soc_thresholds),
                                  reverse=True))
        if any(not 0.0 < t < 1.0 for t in thresholds):
            raise ValueError("soc_thresholds must lie strictly in (0, 1)")
        self.soc_thresholds = thresholds
        ladder = tuple(sorted(float(q) for q in quality_ladder))
        if not ladder:
            raise ValueError("quality_ladder must not be empty")
        self.quality_ladder = ladder

    def state_of_charge(self, time_s: float) -> float:
        """Modeled state of charge after ``time_s`` of playback."""
        if self.load_trace is None:
            return 1.0
        used = self.load_trace.energy_wh(time_s)
        usable = self.battery.usable_energy_wh(
            self.load_trace.power_at(time_s)
        )
        return max(0.0, 1.0 - used / usable)

    def _advise(
        self, progress: _FetchProgress
    ) -> Optional[Tuple[Optional[float], Optional[str]]]:
        """Step the quality/ambient state machine for one frame tick."""
        session = progress.session
        if session is None or session.fps <= 0:
            return None
        state = progress.adapt
        if "quality" not in state:
            state["quality"] = session.quality
            # The server's opening binding assumed a dark room (unless
            # its own serve-time trace says otherwise — the client can
            # only model its local sensor).
            state["ambient"] = DARK_ROOM.name
            state["crossed"] = 0
        t = progress.frames_seen / session.fps
        quality_req: Optional[float] = None
        if self.load_trace is not None:
            soc = self.state_of_charge(t)
            crossings = sum(1 for th in self.soc_thresholds if soc <= th)
            if crossings > state["crossed"]:
                state["crossed"] = crossings
                ladder = self.quality_ladder
                start = 0
                for idx, q in enumerate(ladder):
                    if q <= session.quality + 1e-9:
                        start = idx
                target = ladder[min(start + crossings, len(ladder) - 1)]
                if target > float(state["quality"]) + 1e-9:
                    state["quality"] = target
                    quality_req = target
        ambient_req: Optional[str] = None
        if self.ambient_trace is not None:
            cond = self.ambient_trace.condition_at(t)
            if cond.name != state["ambient"]:
                state["ambient"] = cond.name
                ambient_req = (
                    cond.name if cond.name in AMBIENT_BY_NAME
                    else f"{cond.illuminance:g}"
                )
        if quality_req is None and ambient_req is None:
            return None
        return quality_req, ambient_req


async def fetch_status(
    host: str, port: int, timeout_s: float = 5.0
) -> StatusInfo:
    """Probe a server's ``/healthz``-style status over the wire.

    Opens a connection, sends a ``health`` control message and returns
    the decoded :class:`~repro.net.messages.StatusInfo` answer.  Health
    probes bypass admission control, so this works against a saturated
    or draining server.  Raises :class:`WireFormatError` on a malformed
    answer and ``OSError`` / ``asyncio.TimeoutError`` when the server is
    unreachable.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s
    )
    try:
        writer.write(encode_packet_bytes(encode_health()))
        await writer.drain()
        packet = await asyncio.wait_for(read_packet(reader), timeout=timeout_s)
        if packet is None:
            raise WireFormatError("server closed before answering the probe")
        message = raise_for_error(decode_control(packet))
        if message.kind != "status":
            raise WireFormatError(
                f"expected a status message, got {message.kind!r}"
            )
        return message.status
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def fetch_status_sync(host: str, port: int, timeout_s: float = 5.0) -> StatusInfo:
    """Blocking wrapper over :func:`fetch_status` for sync callers."""
    return asyncio.run(fetch_status(host, port, timeout_s=timeout_s))


async def fetch_stats(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    format: str = "json",
    include_events: bool = False,
    include_spans: bool = False,
    limit: Optional[int] = None,
) -> dict:
    """Probe a server's live observability snapshot over the wire.

    Sends a ``stats`` control message — admission-bypassing like the
    ``health`` probe, so it answers from a saturated or draining server
    — and returns the decoded ``statsdump`` payload dict: the server's
    ``health`` snapshot plus its full metrics registry (under
    ``metrics`` for ``format="json"``, Prometheus exposition text under
    ``prometheus`` for ``format="prometheus"``), optionally with the
    flight-recorder tail (``events``) and collected spans (``spans``).

    Parameters
    ----------
    host / port:
        The server address to probe.
    timeout_s:
        Deadline for connecting and for reading the answer.
    format:
        Metrics rendering: ``json`` or ``prometheus``.
    include_events:
        Also request the flight-recorder tail.
    include_spans:
        Also request collected span events.
    limit:
        Cap on returned events/spans (``None`` = server defaults).

    Raises :class:`WireFormatError` on a malformed answer and
    ``OSError`` / ``asyncio.TimeoutError`` when the server is
    unreachable.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s
    )
    try:
        probe = encode_stats_request(
            format=format,
            include_events=include_events,
            include_spans=include_spans,
            limit=limit,
        )
        writer.write(encode_packet_bytes(probe))
        await writer.drain()
        packet = await asyncio.wait_for(read_packet(reader), timeout=timeout_s)
        if packet is None:
            raise WireFormatError("server closed before answering the probe")
        message = raise_for_error(decode_control(packet))
        if message.kind != "statsdump":
            raise WireFormatError(
                f"expected a statsdump message, got {message.kind!r}"
            )
        return message.statsdump
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def fetch_stats_sync(
    host: str,
    port: int,
    timeout_s: float = 5.0,
    format: str = "json",
    include_events: bool = False,
    include_spans: bool = False,
    limit: Optional[int] = None,
) -> dict:
    """Blocking wrapper over :func:`fetch_stats` for sync callers.

    Parameters
    ----------
    host / port:
        The server address to probe.
    timeout_s:
        Deadline for connecting and for reading the answer.
    format:
        Metrics rendering: ``json`` or ``prometheus``.
    include_events:
        Also request the flight-recorder tail.
    include_spans:
        Also request collected span events.
    limit:
        Cap on returned events/spans (``None`` = server defaults).
    """
    return asyncio.run(fetch_stats(
        host, port, timeout_s=timeout_s, format=format,
        include_events=include_events, include_spans=include_spans,
        limit=limit,
    ))
