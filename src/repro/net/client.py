"""`AsyncMobileClient`: fetch annotated streams over the wire, robustly.

The receive side of :mod:`repro.net`.  A fetch opens a TCP connection,
sends the hello, reads the session description, then drains annotation
and frame records until the server's ``end`` control message.  Every
failure mode maps to a retry:

* connect/read **timeouts** (``connect_timeout_s`` / ``read_timeout_s``),
* **transport errors** (reset, refused, mid-record close),
* **protocol errors** (CRC mismatch, malformed records, missing frames,
  wrong counts in ``end``).

Retries re-request the stream from scratch — annotated streams are
idempotent, so a clean attempt fully supersedes a corrupted one — with
exponential backoff plus jitter (seedable for deterministic tests).
Negotiation rejections (unknown clip/device) are *not* retried: the
server answered authoritatively.

Playback is unchanged from the in-process path: the fetched packets feed
:meth:`~repro.streaming.client.MobileClient.play_stream`, so everything
the paper's client does (backlight schedule, power accounting) applies
byte-identically to wire-delivered streams.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import List, Optional

from ..display.devices import DeviceProfile
from ..player.playback import PlaybackResult
from ..streaming.client import MobileClient, StreamProtocolError
from ..streaming.packets import MediaPacket, PacketType
from ..streaming.session import NegotiationError, SessionDescription
from ..telemetry import registry as telemetry_registry, trace
from .codec import WireFormatError, encode_packet_bytes, read_packet
from .messages import decode_control, encode_hello, raise_for_error


class StreamFetchError(ConnectionError):
    """A fetch ran out of retries; carries the last underlying failure."""


@dataclass(frozen=True)
class FetchResult:
    """One successfully fetched stream.

    ``packets`` holds the data-plane sequence exactly as the in-process
    :meth:`~repro.streaming.server.MediaServer.stream` would have yielded
    it (annotation packets first, then frames in presentation order);
    control traffic is consumed by the protocol and not included.
    """

    session: SessionDescription
    packets: List[MediaPacket]
    attempts: int

    @property
    def frame_count(self) -> int:
        """Number of frame packets fetched."""
        return sum(1 for p in self.packets if p.ptype is PacketType.FRAME)


class AsyncMobileClient:
    """Asyncio client fetching annotated streams from an
    :class:`~repro.net.server.AnnotationStreamServer`.

    Parameters
    ----------
    device:
        The handheld's profile; advertised in the hello and used for
        playback.
    connect_timeout_s / read_timeout_s:
        Deadline for establishing a connection / for each record read.
    max_retries:
        How many times a failed fetch is re-attempted (0 = single shot).
    backoff_base_s / backoff_max_s / jitter_s:
        Exponential backoff: attempt ``k`` sleeps
        ``min(base * 2**k, max) + uniform(0, jitter)``.
    rng:
        Jitter source; pass a seeded :class:`random.Random` for
        deterministic schedules in tests.
    """

    def __init__(
        self,
        device: DeviceProfile,
        connect_timeout_s: float = 5.0,
        read_timeout_s: float = 30.0,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter_s: float = 0.05,
        rng: Optional[random.Random] = None,
    ):
        if connect_timeout_s <= 0 or read_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_s < 0 or backoff_max_s < 0 or jitter_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        self.device = device
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.rng = rng if rng is not None else random.Random()
        self._player = MobileClient(device)
        reg = telemetry_registry()
        self._retries_counter = reg.counter(
            "repro_net_client_retries_total",
            help="Fetch attempts retried after a transport/protocol failure.",
        )
        self._protocol_errors_counter = reg.counter(
            "repro_net_client_protocol_errors_total",
            help="Wire protocol violations observed by clients.",
        )
        self._fetches_counter = reg.counter(
            "repro_net_client_fetches_total", help="Streams fetched successfully.",
        )

    # ------------------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based): exponential + jitter."""
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        return base + self.rng.uniform(0.0, self.jitter_s)

    async def _read(self, reader) -> Optional[MediaPacket]:
        return await asyncio.wait_for(
            read_packet(reader), timeout=self.read_timeout_s
        )

    async def _fetch_once(
        self, host: str, port: int, clip_name: str, quality: float
    ) -> FetchResult:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.connect_timeout_s
        )
        try:
            request = self._player.request(clip_name, quality)
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()

            first = await self._read(reader)
            if first is None:
                raise WireFormatError("server closed before answering the hello")
            message = raise_for_error(decode_control(first))
            if message.kind != "session":
                raise WireFormatError(
                    f"expected a session message, got {message.kind!r}"
                )
            session = message.session

            packets: List[MediaPacket] = []
            frames_seen = 0
            while True:
                packet = await self._read(reader)
                if packet is None:
                    raise WireFormatError("server closed before end-of-stream")
                if packet.ptype is PacketType.CONTROL:
                    end = raise_for_error(decode_control(packet))
                    if end.kind != "end":
                        raise WireFormatError(
                            f"unexpected control message {end.kind!r} mid-stream"
                        )
                    if len(packets) != end.end.packet_count:
                        raise WireFormatError(
                            f"stream carried {len(packets)} records, server "
                            f"emitted {end.end.packet_count}"
                        )
                    if frames_seen != end.end.frame_count:
                        raise WireFormatError(
                            f"stream carried {frames_seen} frames, server "
                            f"emitted {end.end.frame_count}"
                        )
                    break
                if packet.ptype is PacketType.FRAME:
                    if packet.frame_index != frames_seen:
                        raise WireFormatError(
                            f"frame {packet.frame_index} arrived, expected "
                            f"{frames_seen} (record dropped in transit?)"
                        )
                    frames_seen += 1
                elif frames_seen:
                    raise WireFormatError("annotation record arrived after frames")
                packets.append(packet)
            return FetchResult(session=session, packets=packets, attempts=1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def fetch(
        self, host: str, port: int, clip_name: str, quality: float
    ) -> FetchResult:
        """Fetch one annotated stream, retrying on transient failures."""
        last_error: Optional[BaseException] = None
        with trace("net.fetch"):
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self._retries_counter.inc()
                    await asyncio.sleep(self.backoff_s(attempt - 1))
                try:
                    result = await self._fetch_once(host, port, clip_name, quality)
                    self._fetches_counter.inc()
                    return FetchResult(
                        session=result.session,
                        packets=result.packets,
                        attempts=attempt + 1,
                    )
                except NegotiationError:
                    raise  # authoritative rejection; retrying cannot help
                except (StreamProtocolError, asyncio.IncompleteReadError) as exc:
                    self._protocol_errors_counter.inc()
                    last_error = exc
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    last_error = exc
        raise StreamFetchError(
            f"fetch of {clip_name!r} failed after {self.max_retries + 1} "
            f"attempts: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    def play(self, fetched: FetchResult, **playback_kwargs) -> PlaybackResult:
        """Play a fetched stream through the paper's client model."""
        return self._player.play_stream(
            fetched.session, fetched.packets, **playback_kwargs
        )

    async def fetch_and_play(
        self, host: str, port: int, clip_name: str, quality: float,
        **playback_kwargs,
    ) -> PlaybackResult:
        """Fetch then play in one call (playback runs off the event loop)."""
        fetched = await self.fetch(host, port, clip_name, quality)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.play(fetched, **playback_kwargs)
        )
