"""`AsyncMobileClient`: fetch annotated streams over the wire, robustly.

The receive side of :mod:`repro.net`.  A fetch opens a TCP connection,
sends the hello, reads the session description, then drains annotation
and frame records until the server's ``end`` control message.  Every
failure mode maps to a recovery path:

* connect/read **timeouts** (``connect_timeout_s`` / ``read_timeout_s``),
* **transport errors** (reset, refused, mid-record close),
* **protocol errors** (CRC mismatch, malformed records, missing frames,
  wrong counts in ``end``),
* **load shedding** — a server ``busy`` message makes the client honor
  the carried retry-after hint before reconnecting,
* **mid-stream drops** — when the server issued a resume token, the
  retry loop becomes a *reconnect-with-resume* state machine: the next
  attempt presents the token plus the count of records already received
  and continues from that offset instead of starting over.  If the
  server rejects the token (window expired, restart), the client falls
  back to a fresh fetch.  Annotated streams are deterministic, so a
  resumed stream is byte-identical to an uninterrupted one.

Attempts back off exponentially with jitter (seedable for deterministic
tests).  An optional :class:`CircuitBreaker` trips after a configurable
run of consecutive failures, failing fast for a cooldown period instead
of hammering a dead server.  Negotiation rejections (unknown
clip/device) are *not* retried: the server answered authoritatively.

Playback is unchanged from the in-process path: the fetched packets feed
:meth:`~repro.streaming.client.MobileClient.play_stream`, so everything
the paper's client does (backlight schedule, power accounting) applies
byte-identically to wire-delivered streams.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..display.devices import DeviceProfile
from ..player.playback import PlaybackResult
from ..streaming.client import MobileClient, StreamProtocolError
from ..streaming.packets import MediaPacket, PacketType
from ..streaming.session import NegotiationError, SessionDescription
from ..telemetry import registry as telemetry_registry, trace
from .codec import WireFormatError, encode_packet_bytes, read_packet
from .messages import (
    StatusInfo,
    decode_control,
    encode_health,
    encode_hello,
    encode_resume,
    raise_for_error,
)


class StreamFetchError(ConnectionError):
    """A fetch ran out of retries; carries the last underlying failure."""


class ServerBusyError(ConnectionError):
    """The server shed the connection with a busy message.

    ``retry_after_s`` is the server's minimum-backoff hint; the retry
    loop sleeps at least that long before reconnecting.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(StreamFetchError):
    """The circuit breaker is open: failing fast instead of connecting."""


class CircuitBreaker:
    """Trip after N consecutive failures, fail fast for a cooldown.

    States follow the classic pattern: *closed* (attempts flow),
    *open* (attempts raise :class:`CircuitOpenError` until
    ``reset_after_s`` has elapsed), then *half-open* (one trial attempt
    is allowed; success closes the circuit, failure re-opens it).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker.  Must be >= 1.
    reset_after_s:
        Cooldown before a trial attempt is allowed.
    clock:
        Monotonic time source; injectable for deterministic tests.

    Raises
    ------
    ValueError
        If ``failure_threshold`` < 1 or ``reset_after_s`` < 0.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._failures = 0
        self._open_until: Optional[float] = None

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._failures

    @property
    def is_open(self) -> bool:
        """True while attempts would fail fast (cooldown not elapsed)."""
        return self._open_until is not None and self._clock() < self._open_until

    def before_attempt(self) -> None:
        """Gate an attempt: raises :class:`CircuitOpenError` while open."""
        if self.is_open:
            remaining = self._open_until - self._clock()
            raise CircuitOpenError(
                f"circuit breaker open after {self._failures} consecutive "
                f"failures; retry allowed in {remaining:.2f}s"
            )

    def record_failure(self) -> None:
        """Count a failed attempt; trips the breaker at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._open_until = self._clock() + self.reset_after_s

    def record_success(self) -> None:
        """Close the circuit and forget the failure run."""
        self._failures = 0
        self._open_until = None


@dataclass(frozen=True)
class FetchResult:
    """One successfully fetched stream.

    ``packets`` holds the data-plane sequence exactly as the in-process
    :meth:`~repro.streaming.server.MediaServer.stream` would have yielded
    it (annotation packets first, then frames in presentation order);
    control traffic is consumed by the protocol and not included.
    ``attempts`` counts connections made and ``resumes`` how many of
    them continued mid-stream via a resume token.
    """

    session: SessionDescription
    packets: List[MediaPacket]
    attempts: int
    resumes: int = 0

    @property
    def frame_count(self) -> int:
        """Number of frame packets fetched."""
        return sum(1 for p in self.packets if p.ptype is PacketType.FRAME)


@dataclass
class _FetchProgress:
    """Mutable reconnect state threaded through the retry loop."""

    session: Optional[SessionDescription] = None
    token: Optional[str] = None
    packets: List[MediaPacket] = field(default_factory=list)
    frames_seen: int = 0
    resumes: int = 0

    @property
    def resumable(self) -> bool:
        """Whether the next attempt can present a resume token."""
        return self.token is not None and self.session is not None

    def reset(self) -> None:
        """Discard partial state; the next attempt starts fresh."""
        self.session = None
        self.token = None
        self.packets = []
        self.frames_seen = 0


class _ResumeRejected(Exception):
    """The server refused our resume token; retry from scratch."""


class AsyncMobileClient:
    """Asyncio client fetching annotated streams from an
    :class:`~repro.net.server.AnnotationStreamServer`.

    Parameters
    ----------
    device:
        The handheld's profile; advertised in the hello and used for
        playback.
    connect_timeout_s / read_timeout_s:
        Deadline for establishing a connection / for each record read.
    max_retries:
        How many times a failed fetch is re-attempted (0 = single shot).
    backoff_base_s / backoff_max_s / jitter_s:
        Exponential backoff: attempt ``k`` sleeps
        ``min(base * 2**k, max) + uniform(0, jitter)``.
    rng:
        Jitter source; pass a seeded :class:`random.Random` for
        deterministic schedules in tests.
    resume:
        When True (default), a mid-stream drop reconnects with the
        server-issued resume token and continues from the last received
        record instead of refetching from scratch.
    circuit_breaker:
        Optional :class:`CircuitBreaker` shared across fetches; when
        open, :meth:`fetch` raises :class:`CircuitOpenError`
        immediately.  ``None`` disables fail-fast behavior.

    Raises
    ------
    ValueError
        If any timeout/backoff parameter is out of range.
    """

    def __init__(
        self,
        device: DeviceProfile,
        connect_timeout_s: float = 5.0,
        read_timeout_s: float = 30.0,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        jitter_s: float = 0.05,
        rng: Optional[random.Random] = None,
        resume: bool = True,
        circuit_breaker: Optional[CircuitBreaker] = None,
    ):
        if connect_timeout_s <= 0 or read_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_s < 0 or backoff_max_s < 0 or jitter_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        self.device = device
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.rng = rng if rng is not None else random.Random()
        self.resume = resume
        self.circuit_breaker = circuit_breaker
        self._player = MobileClient(device)
        reg = telemetry_registry()
        self._retries_counter = reg.counter(
            "repro_net_client_retries_total",
            help="Fetch attempts retried after a transport/protocol failure.",
        )
        self._protocol_errors_counter = reg.counter(
            "repro_net_client_protocol_errors_total",
            help="Wire protocol violations observed by clients.",
        )
        self._fetches_counter = reg.counter(
            "repro_net_client_fetches_total", help="Streams fetched successfully.",
        )
        self._resumes_counter = reg.counter(
            "repro_net_client_resumes_total",
            help="Reconnects that continued a stream via a resume token.",
        )
        self._busy_counter = reg.counter(
            "repro_net_client_busy_total",
            help="Connections shed by a busy server (client backed off).",
        )
        self._circuit_open_counter = reg.counter(
            "repro_net_client_circuit_open_total",
            help="Fetches failed fast because the circuit breaker was open.",
        )

    # ------------------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based): exponential + jitter."""
        base = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        return base + self.rng.uniform(0.0, self.jitter_s)

    async def _read(self, reader) -> Optional[MediaPacket]:
        return await asyncio.wait_for(
            read_packet(reader), timeout=self.read_timeout_s
        )

    async def _open_stream(self, host, port, clip_name, quality, progress):
        """Connect and negotiate; returns (reader, writer) mid-protocol.

        Presents a resume token when ``progress`` carries one, a fresh
        hello otherwise.  Raises :class:`ServerBusyError` on load shed
        and :class:`_ResumeRejected` when the server refuses the token.
        """
        resuming = self.resume and progress.resumable
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.connect_timeout_s
        )
        try:
            if resuming:
                opening = encode_resume(progress.token, len(progress.packets))
            else:
                progress.reset()
                request = self._player.request(clip_name, quality)
                opening = encode_hello(request)
            writer.write(encode_packet_bytes(opening))
            await writer.drain()

            first = await self._read(reader)
            if first is None:
                raise WireFormatError("server closed before answering the hello")
            message = decode_control(first)
            if message.kind == "busy":
                busy = message.busy
                raise ServerBusyError(
                    f"server busy ({busy.active_sessions} active"
                    + (f" of {busy.max_sessions}" if busy.max_sessions else "")
                    + f"); retry after {busy.retry_after_s:.2f}s",
                    retry_after_s=busy.retry_after_s,
                )
            try:
                message = raise_for_error(message)
            except NegotiationError:
                if resuming:
                    raise _ResumeRejected() from None
                raise
            if message.kind != "session":
                raise WireFormatError(
                    f"expected a session message, got {message.kind!r}"
                )
            if resuming:
                if message.resumed_at != len(progress.packets):
                    raise WireFormatError(
                        f"server resumed at {message.resumed_at}, client "
                        f"holds {len(progress.packets)} records"
                    )
                progress.resumes += 1
                self._resumes_counter.inc()
            else:
                progress.session = message.session
                progress.token = message.token if self.resume else None
            return reader, writer
        except BaseException:
            await self._close_writer(writer)
            raise

    async def _fetch_once(
        self, host: str, port: int, clip_name: str, quality: float,
        progress: _FetchProgress,
    ) -> FetchResult:
        """One connection's worth of fetching, continuing ``progress``."""
        reader, writer = await self._open_stream(
            host, port, clip_name, quality, progress
        )
        try:
            packets = progress.packets
            while True:
                packet = await self._read(reader)
                if packet is None:
                    raise WireFormatError("server closed before end-of-stream")
                if packet.ptype is PacketType.CONTROL:
                    end = raise_for_error(decode_control(packet))
                    if end.kind != "end":
                        raise WireFormatError(
                            f"unexpected control message {end.kind!r} mid-stream"
                        )
                    if len(packets) != end.end.packet_count:
                        raise WireFormatError(
                            f"stream carried {len(packets)} records, server "
                            f"emitted {end.end.packet_count}"
                        )
                    if progress.frames_seen != end.end.frame_count:
                        raise WireFormatError(
                            f"stream carried {progress.frames_seen} frames, "
                            f"server emitted {end.end.frame_count}"
                        )
                    break
                if packet.ptype is PacketType.FRAME:
                    if packet.frame_index != progress.frames_seen:
                        raise WireFormatError(
                            f"frame {packet.frame_index} arrived, expected "
                            f"{progress.frames_seen} (record dropped in transit?)"
                        )
                    progress.frames_seen += 1
                elif progress.frames_seen:
                    raise WireFormatError("annotation record arrived after frames")
                packets.append(packet)
            return FetchResult(
                session=progress.session,
                packets=packets,
                attempts=1,
                resumes=progress.resumes,
            )
        finally:
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def fetch(
        self, host: str, port: int, clip_name: str, quality: float
    ) -> FetchResult:
        """Fetch one annotated stream, retrying on transient failures.

        Transport and protocol failures retry with exponential backoff;
        a mid-stream drop resumes from the last received record when the
        server issued a token; ``busy`` sheds honor the server's
        retry-after hint.  Raises
        :class:`~repro.streaming.session.NegotiationError` on
        authoritative rejection, :class:`CircuitOpenError` when the
        breaker is open, and :class:`StreamFetchError` after exhausting
        ``max_retries``.
        """
        last_error: Optional[BaseException] = None
        progress = _FetchProgress()
        breaker = self.circuit_breaker
        with trace("net.fetch"):
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self._retries_counter.inc()
                    delay = self.backoff_s(attempt - 1)
                    if isinstance(last_error, ServerBusyError):
                        delay = max(delay, last_error.retry_after_s)
                    await asyncio.sleep(delay)
                if breaker is not None:
                    try:
                        breaker.before_attempt()
                    except CircuitOpenError:
                        self._circuit_open_counter.inc()
                        raise
                try:
                    result = await self._fetch_once(
                        host, port, clip_name, quality, progress
                    )
                    self._fetches_counter.inc()
                    if breaker is not None:
                        breaker.record_success()
                    return FetchResult(
                        session=result.session,
                        packets=result.packets,
                        attempts=attempt + 1,
                        resumes=result.resumes,
                    )
                except NegotiationError:
                    raise  # authoritative rejection; retrying cannot help
                except _ResumeRejected:
                    # Token expired or the server restarted: start over.
                    progress.reset()
                    last_error = StreamProtocolError(
                        "server refused the resume token; refetching"
                    )
                except ServerBusyError as exc:
                    # Load shed, not a failure of the server: back off
                    # without tripping the breaker.
                    self._busy_counter.inc()
                    last_error = exc
                except (StreamProtocolError, asyncio.IncompleteReadError) as exc:
                    self._protocol_errors_counter.inc()
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
        raise StreamFetchError(
            f"fetch of {clip_name!r} failed after {self.max_retries + 1} "
            f"attempts: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    def play(self, fetched: FetchResult, **playback_kwargs) -> PlaybackResult:
        """Play a fetched stream through the paper's client model."""
        return self._player.play_stream(
            fetched.session, fetched.packets, **playback_kwargs
        )

    async def fetch_and_play(
        self, host: str, port: int, clip_name: str, quality: float,
        **playback_kwargs,
    ) -> PlaybackResult:
        """Fetch then play in one call (playback runs off the event loop)."""
        fetched = await self.fetch(host, port, clip_name, quality)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.play(fetched, **playback_kwargs)
        )


async def fetch_status(
    host: str, port: int, timeout_s: float = 5.0
) -> StatusInfo:
    """Probe a server's ``/healthz``-style status over the wire.

    Opens a connection, sends a ``health`` control message and returns
    the decoded :class:`~repro.net.messages.StatusInfo` answer.  Health
    probes bypass admission control, so this works against a saturated
    or draining server.  Raises :class:`WireFormatError` on a malformed
    answer and ``OSError`` / ``asyncio.TimeoutError`` when the server is
    unreachable.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s
    )
    try:
        writer.write(encode_packet_bytes(encode_health()))
        await writer.drain()
        packet = await asyncio.wait_for(read_packet(reader), timeout=timeout_s)
        if packet is None:
            raise WireFormatError("server closed before answering the probe")
        message = raise_for_error(decode_control(packet))
        if message.kind != "status":
            raise WireFormatError(
                f"expected a status message, got {message.kind!r}"
            )
        return message.status
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def fetch_status_sync(host: str, port: int, timeout_s: float = 5.0) -> StatusInfo:
    """Blocking wrapper over :func:`fetch_status` for sync callers."""
    return asyncio.run(fetch_status(host, port, timeout_s=timeout_s))
