"""Camera-based compensation validation (Figure 2 methodology).

Phase 1 photographs the PDA showing the *original* frame at full backlight
(reference snapshot).  Phase 2 photographs the *compensated* frame at the
annotated (dimmed) backlight.  The two photographs are compared by
histogram: if compensation worked, average brightness and dynamic range are
nearly unchanged even though the backlight dropped — Figure 4 shows a
news-clip frame whose snapshots average 190 vs 170 at 50 % backlight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..display.devices import DeviceProfile
from ..display.rendering import render_frame
from ..display.transfer import MAX_BACKLIGHT_LEVEL
from ..quality.histogram import LuminanceHistogram
from ..quality.metrics import (
    average_luminance_shift,
    dynamic_range_change,
    histogram_emd,
)
from ..video.frame import Frame
from .camera import DigitalCamera


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one reference-vs-compensated snapshot comparison.

    Attributes mirror what the paper reports: the two snapshots' average
    brightness, the dynamic-range change, an EMD "how far did the histogram
    move" figure, and the backlight levels used for each snapshot.
    """

    reference_histogram: LuminanceHistogram
    compensated_histogram: LuminanceHistogram
    reference_backlight: int
    compensated_backlight: int

    @property
    def reference_average(self) -> float:
        return self.reference_histogram.average_point

    @property
    def compensated_average(self) -> float:
        return self.compensated_histogram.average_point

    @property
    def average_shift(self) -> float:
        """Signed average-brightness change (compensated - reference)."""
        return average_luminance_shift(self.reference_histogram, self.compensated_histogram)

    @property
    def dynamic_range_shift(self) -> int:
        return dynamic_range_change(self.reference_histogram, self.compensated_histogram)

    @property
    def emd(self) -> float:
        """Earth mover's distance between the snapshots, in code units."""
        return histogram_emd(self.reference_histogram, self.compensated_histogram)

    @property
    def backlight_saved_fraction(self) -> float:
        """Backlight level reduction achieved for this frame."""
        return 1.0 - self.compensated_backlight / self.reference_backlight

    def acceptable(self, max_average_shift: float = 25.0, max_emd: float = 25.0) -> bool:
        """Whether the compensated image is visually close to the original.

        Default thresholds are in 0-255 code units and correspond to the
        paper's "hardly noticeable" regime (the Figure 4 example shifts the
        average by ~20 codes and is described as barely detectable).
        """
        return abs(self.average_shift) <= max_average_shift and self.emd <= max_emd

    def __repr__(self) -> str:
        return (
            f"ValidationReport(avg {self.reference_average:.1f} -> "
            f"{self.compensated_average:.1f}, emd={self.emd:.1f}, "
            f"backlight {self.reference_backlight} -> {self.compensated_backlight})"
        )


class CompensationValidator:
    """Runs the two-phase camera validation on (frame, compensation) pairs."""

    def __init__(self, device: DeviceProfile, camera: DigitalCamera, ambient: float = 0.0):
        self.device = device
        self.camera = camera
        self.ambient = ambient

    def snapshot(self, frame: Frame, backlight_level: int) -> np.ndarray:
        """Photograph the device showing ``frame`` at ``backlight_level``."""
        perceived = render_frame(frame, backlight_level, self.device, ambient=self.ambient)
        return self.camera.snapshot(perceived)

    def validate(
        self,
        original: Frame,
        compensated: Frame,
        compensated_backlight: int,
        reference_backlight: int = MAX_BACKLIGHT_LEVEL,
    ) -> ValidationReport:
        """Compare the reference and compensated snapshots.

        Parameters
        ----------
        original:
            The unmodified frame (displayed at ``reference_backlight``).
        compensated:
            The server-compensated frame (displayed at
            ``compensated_backlight``).
        compensated_backlight:
            Annotated backlight level for the compensated frame.
        reference_backlight:
            Backlight for the reference snapshot (full, by default).
        """
        if compensated_backlight > reference_backlight:
            raise ValueError(
                "compensated backlight exceeds the reference level — "
                "compensation is supposed to dim, not boost"
            )
        ref_photo = self.snapshot(original, reference_backlight)
        comp_photo = self.snapshot(compensated, compensated_backlight)
        return ValidationReport(
            reference_histogram=LuminanceHistogram.of(ref_photo),
            compensated_histogram=LuminanceHistogram.of(comp_photo),
            reference_backlight=reference_backlight,
            compensated_backlight=compensated_backlight,
        )
