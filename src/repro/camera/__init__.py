"""Digital-camera validation substrate (Figure 2 methodology)."""

from .response import (
    GammaResponse,
    LinearResponse,
    ResponseCurve,
    SRGBLikeResponse,
    TabulatedResponse,
)
from .camera import DigitalCamera
from .validation import CompensationValidator, ValidationReport

__all__ = [
    "ResponseCurve",
    "LinearResponse",
    "GammaResponse",
    "SRGBLikeResponse",
    "TabulatedResponse",
    "DigitalCamera",
    "CompensationValidator",
    "ValidationReport",
]
