"""Camera radiometric response curves.

Section 4.2: "A digital camera has a monotonic nonlinear transfer
function [Debevec & Malik, SIGGRAPH 1997] and allows us to objectively
estimate the similarity between two images."  The validation methodology
only requires that the response be *monotone* (so ordering of luminances is
preserved) and *nonlinear* (so it must be modeled, not assumed away).

:class:`SRGBLikeResponse` is the default: a linear toe followed by a power
segment, the shape consumer cameras approximate.  :class:`GammaResponse`
and tabulated curves are provided for sensitivity studies, and every curve
is invertible so calibration can recover scene radiance from pixel values
(the Debevec-Malik program, reduced to the known-curve case).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


class ResponseCurve:
    """Monotone map from scene radiance [0, 1] to sensor output [0, 1]."""

    def apply(self, radiance: ArrayLike) -> np.ndarray:
        """Map scene radiance [0, 1] to sensor output [0, 1]."""
        raise NotImplementedError

    def invert(self, value: ArrayLike) -> np.ndarray:
        """Recover radiance from sensor output (inverse of :meth:`apply`)."""
        raise NotImplementedError

    def _check(self, x: ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return np.clip(arr, 0.0, 1.0)


class LinearResponse(ResponseCurve):
    """Idealized sensor: output equals radiance."""

    def apply(self, radiance: ArrayLike) -> np.ndarray:
        return self._check(radiance)

    def invert(self, value: ArrayLike) -> np.ndarray:
        return self._check(value)

    def __repr__(self) -> str:
        return "LinearResponse()"


class GammaResponse(ResponseCurve):
    """Pure power-law response ``v = r ** (1/gamma)`` (gamma encoding)."""

    def __init__(self, gamma: float = 2.2):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    def apply(self, radiance: ArrayLike) -> np.ndarray:
        return self._check(radiance) ** (1.0 / self.gamma)

    def invert(self, value: ArrayLike) -> np.ndarray:
        return self._check(value) ** self.gamma

    def __repr__(self) -> str:
        return f"GammaResponse(gamma={self.gamma:g})"


class SRGBLikeResponse(ResponseCurve):
    """sRGB-style response: linear toe + offset power segment.

    ``v = a*r``                      for ``r <= cutoff``
    ``v = (1+o)*r**(1/g) - o``       otherwise

    with the standard sRGB constants by default.  Continuous and strictly
    monotone on [0, 1].
    """

    def __init__(self, gamma: float = 2.4, offset: float = 0.055,
                 slope: float = 12.92, cutoff: float = 0.0031308):
        if gamma <= 0 or slope <= 0 or not 0 < cutoff < 1:
            raise ValueError("invalid sRGB-like response parameters")
        self.gamma = gamma
        self.offset = offset
        self.slope = slope
        self.cutoff = cutoff
        self._value_cutoff = slope * cutoff

    def apply(self, radiance: ArrayLike) -> np.ndarray:
        r = self._check(radiance)
        toe = self.slope * r
        knee = (1 + self.offset) * np.power(np.maximum(r, self.cutoff), 1.0 / self.gamma) - self.offset
        return np.where(r <= self.cutoff, toe, knee)

    def invert(self, value: ArrayLike) -> np.ndarray:
        v = self._check(value)
        toe = v / self.slope
        knee = np.power(np.maximum(v + self.offset, 1e-12) / (1 + self.offset), self.gamma)
        return np.where(v <= self._value_cutoff, toe, knee)

    def __repr__(self) -> str:
        return f"SRGBLikeResponse(gamma={self.gamma:g})"


class TabulatedResponse(ResponseCurve):
    """Response interpolated from measured (radiance, value) samples.

    What a Debevec-Malik calibration of a physical camera would hand us.
    """

    def __init__(self, radiances: Sequence[float], values: Sequence[float]):
        rad = np.asarray(radiances, dtype=np.float64)
        val = np.asarray(values, dtype=np.float64)
        if rad.ndim != 1 or rad.shape != val.shape or rad.size < 2:
            raise ValueError("need two 1-D arrays of equal length >= 2")
        order = np.argsort(rad)
        rad, val = rad[order], val[order]
        if np.any(np.diff(rad) <= 0):
            raise ValueError("duplicate radiance samples")
        if np.any(np.diff(val) < 0):
            raise ValueError("response samples must be monotone non-decreasing")
        self.radiances = rad
        self.values = val

    def apply(self, radiance: ArrayLike) -> np.ndarray:
        return np.interp(self._check(radiance), self.radiances, self.values)

    def invert(self, value: ArrayLike) -> np.ndarray:
        return np.interp(self._check(value), self.values, self.radiances)

    def __repr__(self) -> str:
        return f"TabulatedResponse(samples={self.radiances.size})"
